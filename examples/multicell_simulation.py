"""Multi-cell simulation walkthrough: mobility, cooperative caching, batching.

Run with::

    python examples/multicell_simulation.py

Builds a four-cell edge deployment (edge server + semantic model cache + batch
queue per cell, backhaul ring, WAN to the cloud model repository), replays a
diurnal request trace through the discrete-event engine twice — once without
batching, once with amortized batch-8 encoding — and prints what changed.
"""

from __future__ import annotations

from repro.sim import (
    BatchingConfig,
    CellConfig,
    MobilityConfig,
    MultiCellSimulator,
    SimulatorConfig,
    default_catalogue,
)
from repro.workloads import ArrivalTraceGenerator

NUM_CELLS = 4
NUM_REQUESTS = 20_000
DOMAINS = [f"domain_{index}" for index in range(12)]


def build_simulator(batching: BatchingConfig) -> MultiCellSimulator:
    cells = [CellConfig(name=f"cell_{index}") for index in range(NUM_CELLS)]
    config = SimulatorConfig(
        batching=batching,
        mobility=MobilityConfig(handover_probability=0.02, handover_delay_s=0.02),
    )
    return MultiCellSimulator(cells, default_catalogue(DOMAINS, seed=0), config=config, seed=0)


def describe(label: str, report) -> None:
    latency = report.latency
    print(f"\n{label}")
    print(f"  completed            : {report.completed} requests")
    print(f"  throughput           : {report.requests_per_sec:.0f} req/s (simulated)")
    print(
        f"  latency p50/p95/p99  : {latency['p50_s'] * 1000:.1f} / "
        f"{latency['p95_s'] * 1000:.1f} / {latency['p99_s'] * 1000:.1f} ms"
    )
    print(f"  local cache hit ratio: {report.hit_ratio:.2f}")
    print(f"  mean batch size      : {report.mean_batch_size:.2f}")
    print(f"  compute busy seconds : {report.total_compute_busy_s:.1f}")
    print(f"  backhaul model bytes : {report.backhaul_bytes / 1024**2:.0f} MiB (cooperative fetches)")
    print(f"  engine speed         : {report.events_per_wall_sec:,.0f} events/s")
    for name, stats in sorted(report.cells.items()):
        print(
            f"    {name}: hit_ratio={stats.hit_ratio:.2f} completed={stats.completed} "
            f"neighbor={stats.neighbor_fetches} cloud={stats.cloud_fetches} "
            f"handover_in={stats.handovers_in}"
        )


def main() -> None:
    print(f"Generating a diurnal trace of {NUM_REQUESTS} requests across {len(DOMAINS)} domains...")
    generator = ArrivalTraceGenerator(
        DOMAINS,
        num_users=500,
        zipf_exponent=0.9,
        profile="diurnal",
        rate=2500.0,          # trough arrivals/s; rush hour peaks at 7500/s
        period_s=10.0,        # one compressed "day"
        seed=0,
    )
    trace = generator.generate(NUM_REQUESTS)

    unbatched = build_simulator(BatchingConfig(max_batch_size=1, max_wait_s=0.0, amortization=1.0))
    describe("Unbatched (every request encoded alone):", unbatched.replay(trace))

    batched = build_simulator(BatchingConfig(max_batch_size=8, max_wait_s=0.005, amortization=0.4))
    describe("Batch-8 with 5 ms window and 0.4 amortization:", batched.replay(trace))

    print("\nBatching amortizes encoder FLOPs across co-arriving requests, which halves")
    print("compute spend and median latency once the rush hour saturates a cell.")


if __name__ == "__main__":
    main()
