"""Model selection demo: choosing the right KB for a drifting conversation.

Run with::

    python examples/model_selection_demo.py

Section III-A of the paper proposes going beyond a per-message classifier and
using conversational context (recurrent networks / reinforcement learning) to
select the domain-specialized model.  This demo trains the per-message
classifier and the GRU-based contextual selector, then walks through a single
conversation turn by turn showing where context rescues ambiguous messages
(sentences built only from cross-domain words like "bus" and "virus").
"""

from __future__ import annotations

import numpy as np

from repro.selection import (
    ClassifierProbabilityFeaturizer,
    ClassifierSelectionPolicy,
    ContextualDomainSelector,
    ContextualSelectionPolicy,
    DomainClassifier,
    EpsilonGreedyPolicy,
    build_featurizer,
    evaluate_policy,
)
from repro.workloads import default_domains, generate_all_corpora, generate_topic_drift_trace
from repro.experiments.e6_model_selection import _ambiguous_sentence, _conversation


def main() -> None:
    rng = np.random.default_rng(0)
    domains = default_domains()
    domain_names = list(domains)

    print("Building the training corpus and selectors...")
    corpora = generate_all_corpora(150, seed=0)
    train_texts, train_labels = [], []
    for domain, corpus in corpora.items():
        train_texts.extend(corpus.sentences)
        train_labels.extend([domain] * len(corpus))

    featurizer = build_featurizer(train_texts)
    classifier = DomainClassifier(featurizer, domain_names, seed=0)
    classifier.fit(train_texts, train_labels, epochs=25, seed=0)

    # Contextual selector: GRU over the classifier's per-message probabilities.
    conversations = []
    labels = []
    for index in range(10):
        trace = generate_topic_drift_trace(domain_names, 60, persistence=0.9, seed=100 + index)
        texts, turn_labels = _conversation(domains, trace, rng, noise_probability=0.25)
        conversations.append(texts)
        labels.append(turn_labels)
    contextual = ContextualDomainSelector(
        ClassifierProbabilityFeaturizer(classifier), domain_names, context_window=6, hidden_dim=24, seed=0
    )
    contextual.fit(conversations, labels, epochs=30, learning_rate=1e-2, seed=0)

    policies = {
        "classifier": ClassifierSelectionPolicy(classifier),
        "contextual-gru": ContextualSelectionPolicy(contextual),
        "epsilon-greedy": EpsilonGreedyPolicy(domain_names, epsilon=0.1, seed=0),
    }

    # Walk through one held-out conversation and show the interesting turns.
    trace = generate_topic_drift_trace(domain_names, 30, persistence=0.9, seed=999)
    texts, truth = _conversation(domains, trace, rng, noise_probability=0.3)
    contextual_policy = policies["contextual-gru"]
    classifier_policy = policies["classifier"]
    contextual_policy.reset()

    print("\nTurn-by-turn walk-through (ambiguous turns marked with *):\n")
    print(f"{'turn':>4} {'true':<14} {'classifier':<14} {'contextual':<14} message")
    for turn, (text, true_domain) in enumerate(zip(texts, truth)):
        classifier_choice = classifier_policy.select(text)
        contextual_choice = contextual_policy.select(text)
        ambiguous = "*" if all(word in text for word in ("the",)) and classifier_choice != true_domain else " "
        print(f"{turn:>4} {true_domain:<14} {classifier_choice:<14} {contextual_choice:<14} {ambiguous} {text}")

    print("\nAccuracy over 4 held-out conversations:")
    for name, policy in policies.items():
        accuracies = []
        for index in range(4):
            test_trace = generate_topic_drift_trace(domain_names, 60, persistence=0.9, seed=500 + index)
            test_texts, test_truth = _conversation(domains, test_trace, rng, noise_probability=0.25)
            outcome = evaluate_policy(policy, test_texts, test_truth)
            accuracies.append(outcome.accuracy)
        print(f"  {name:<16} {float(np.mean(accuracies)):.3f}")

    example = _ambiguous_sentence(np.random.default_rng(7))
    print(f"\nExample of an ambiguous message only context can resolve: '{example}'")


if __name__ == "__main__":
    main()
