"""Personalization lifecycle: from general KB to a synchronized individual model.

Run with::

    python examples/personalization_lifecycle.py

This walks through Sections II-B/C/D of the paper for a single user:

1. the user's messages (with a strong personal style) are served by the
   domain-specialized *general* model;
2. every transaction's mismatch is computed locally at the sender edge using
   the cached decoder copy and stored in the domain buffer ``b_m``;
3. when the buffer is full, the *individual* model is fine-tuned from it;
4. the decoder gradient is shipped to the receiver edge (federated-style) and
   the receiver's replica is verified to track the sender's decoder.
"""

from __future__ import annotations

import numpy as np

from repro.core import Message, ReceiverEdgeServer, SenderEdgeServer
from repro.edge import build_linear_topology
from repro.federated import DecoderSynchronizer, SyncConfig, parameter_drift
from repro.semantic import CodecConfig, KnowledgeBaseLibrary
from repro.workloads import UserStyle, default_domains


def main() -> None:
    rng = np.random.default_rng(0)
    domains = default_domains()
    domain = "it"
    spec = domains[domain]

    # A user with a pronounced personal style: always says "machine" for
    # "server", "chip" for "cpu", and opens messages with a pet phrase.
    user = UserStyle(
        user_id="user_7",
        substitutions={"server": "machine", "cpu": "chip", "packet": "frame"},
        pet_phrases=["honestly"],
        pet_phrase_probability=0.5,
        favourite_domain=domain,
    )

    print("Step 1 - pretraining the domain-specialized general KBs (sender + receiver copies)...")
    config = CodecConfig(architecture="mlp", embedding_dim=24, feature_dim=6, hidden_dim=48, max_length=16, seed=0)
    corpus = [spec.sample_sentence(rng) for _ in range(150)]
    library = KnowledgeBaseLibrary(config=config)
    library.build_domain(domain, corpus, train_epochs=20, seed=0)
    # Give the vocabulary the user's personal words so fine-tuning can learn them.
    library.get(domain).vocabulary.add("machine")
    library.get(domain).vocabulary.add("chip")
    library.get(domain).vocabulary.add("frame")
    library.get(domain).vocabulary.add("honestly")
    # Rebuild codec with extended vocabulary for a clean comparison.
    from repro.semantic import SemanticCodec

    general = SemanticCodec.from_corpus(
        corpus, config=config, domain=domain, train_epochs=20, seed=0,
        extra_tokens=["machine", "chip", "frame", "honestly"],
    )
    library.add(domain, general)

    sender = SenderEdgeServer(
        "edge_0", library, individual_threshold=16, fine_tune_epochs=40, fine_tune_learning_rate=1e-2
    )
    receiver = ReceiverEdgeServer("edge_1", library)
    topology = build_linear_topology(num_edge_servers=2, devices_per_server=0)
    synchronizer = DecoderSynchronizer(topology, "edge_0", "edge_1", config=SyncConfig(compress=True, topk_fraction=0.25))

    user_messages = [user.apply(spec.sample_sentence(rng), rng) for _ in range(48)]
    test_messages = user_messages[32:]

    print("\nStep 2 - streaming the user's messages through the GENERAL model and buffering transactions...")
    general_accuracy = general.evaluate(test_messages)["token_accuracy"]
    for text in user_messages[:16]:
        message = Message(user.user_id, "peer", text, domain_hint=domain)
        encoded = sender.encode(message, use_individual=False)
        sender.record_transaction(message, encoded.frame_features, domain, use_individual=False)
    buffer = sender.buffers.buffer(user.user_id, domain)
    print(f"  buffered transactions: {len(buffer)}  mean mismatch under the general model: {buffer.mean_mismatch():.3f}")
    print(f"  general-model accuracy on the user's held-out messages: {general_accuracy:.3f}")

    print("\nStep 3 - buffer full: deriving and fine-tuning the user's INDIVIDUAL model...")
    update = sender.maybe_update_individual(user.user_id, domain, seed=0)
    assert update is not None, "buffer should have been ready"
    individual = sender.individual_models[(user.user_id, domain)]
    individual_accuracy = individual.codec.evaluate(test_messages)["token_accuracy"]
    print(f"  individual-model accuracy on the same held-out messages: {individual_accuracy:.3f}")
    print(f"  improvement over the frozen general model: {individual_accuracy - general_accuracy:+.3f}")

    print("\nStep 4 - shipping the decoder gradient to the receiver edge (top-25% compressed)...")
    replica = receiver.provision_individual_decoder(user.user_id, domain)
    record = synchronizer.synchronize(update, replica, sender_decoder=individual.codec.decoder)
    full_decoder_bytes = individual.codec.decoder.num_parameters() * 4
    print(f"  sync payload: {record.payload_bytes / 1024:.1f} KiB "
          f"(full decoder would be {full_decoder_bytes / 1024:.1f} KiB)")
    print(f"  transfer time over the backhaul: {record.transfer_time_s * 1000:.2f} ms")
    print(f"  sender/receiver decoder drift after sync: {parameter_drift(individual.codec.decoder, replica):.2e}")

    print("\nCached models on the sender edge:", sorted(sender.cache.keys()))
    print("Receiver has an individual decoder for the user:", receiver.has_individual_decoder(user.user_id, domain))


if __name__ == "__main__":
    main()
