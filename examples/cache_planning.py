"""Cache planning: how much edge storage do the knowledge bases need?

Run with::

    python examples/cache_planning.py

An edge operator's view of the paper's semantic-caching proposal: given a
Zipf-skewed model-request trace, compare eviction policies and cache sizes
against the no-cache baseline, and use popularity-based prefetching to warm
the cache before a venue fills up.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import EstablishmentCostModel, NoCacheBaseline
from repro.caching import (
    CacheEntry,
    PopularityPrefetcher,
    SemanticModelCache,
    available_policies,
    general_model_key,
)
from repro.metrics import ResultTable
from repro.workloads import ZipfTraceGenerator


def model_catalogue(num_domains: int, seed: int = 0) -> dict[str, dict[str, float]]:
    """Synthetic per-domain model sizes and fetch costs."""
    rng = np.random.default_rng(seed)
    return {
        f"domain_{index}": {
            "size_bytes": float(rng.uniform(2, 12)) * 1024 * 1024,
            "fetch_seconds": float(rng.uniform(2.0, 8.0)),
        }
        for index in range(num_domains)
    }


def replay(cache: SemanticModelCache, trace, catalogue) -> dict[str, float]:
    """Replay the request trace against a cache and account establishment delay."""
    delay = 0.0
    for request in trace:
        key = general_model_key(request.domain)
        entry_info = catalogue[request.domain]

        def build() -> CacheEntry:
            return CacheEntry(
                key=key,
                kind="general",
                domain=request.domain,
                size_bytes=int(entry_info["size_bytes"]),
                build_cost_s=entry_info["fetch_seconds"],
            )

        _, hit = cache.get_or_build(key, build, now=request.timestamp)
        if not hit:
            delay += entry_info["fetch_seconds"]
    return {"hit_ratio": cache.statistics.hit_ratio, "mean_delay_s": delay / len(trace)}


def main() -> None:
    catalogue = model_catalogue(num_domains=12, seed=0)
    generator = ZipfTraceGenerator(list(catalogue), num_users=30, exponent=1.1, arrival_rate=2.0, seed=0)
    trace = generator.generate(3000)
    print(f"Replaying {len(trace)} model requests over {len(catalogue)} domains "
          f"(Zipf exponent 1.1, total catalogue {sum(c['size_bytes'] for c in catalogue.values()) / 2**20:.0f} MiB)\n")

    table = ResultTable("cache_planning", description="Hit ratio and mean KB-establishment delay per request.")
    baseline = NoCacheBaseline(EstablishmentCostModel(fetch_seconds=5.0))
    result = baseline.serve(trace)
    table.add_row(policy="no-cache", cache_mb=0, hit_ratio=1 - result.establishment_rate, mean_delay_s=result.mean_delay_seconds)

    for cache_mb in (16, 32, 64):
        for policy in available_policies():
            cache = SemanticModelCache(cache_mb * 1024 * 1024, policy=policy)
            metrics = replay(cache, trace, catalogue)
            table.add_row(policy=policy, cache_mb=cache_mb, hit_ratio=metrics["hit_ratio"], mean_delay_s=metrics["mean_delay_s"])

    print(table.to_text())

    # Prefetching: watch the request stream and keep the top-2 domains warm.
    print("\nPopularity-based prefetching (top-2 domains kept resident):")
    prefetcher = PopularityPrefetcher(window=100, top_k=2)
    cache = SemanticModelCache(32 * 1024 * 1024, policy="lru")
    prefetched_total = 0
    for request in trace:
        prefetcher.observe(request.domain)
        decision = prefetcher.prefetch(
            cache,
            lambda domain: CacheEntry(
                key=general_model_key(domain),
                kind="general",
                domain=domain,
                size_bytes=int(catalogue[domain]["size_bytes"]),
                build_cost_s=catalogue[domain]["fetch_seconds"],
            ),
            now=request.timestamp,
        )
        prefetched_total += len(decision.prefetched_domains)
    print(f"  prefetch operations issued: {prefetched_total}")
    print(f"  domains resident at the end: {cache.resident_domains()}")
    print(f"  predicted popularity: "
          f"{ {k: round(v, 2) for k, v in sorted(prefetcher.popularity().items(), key=lambda kv: -kv[1])[:3]} }")


if __name__ == "__main__":
    main()
