"""Quickstart: pretrain the knowledge bases, open a session, send messages.

Run with::

    python examples/quickstart.py

The script builds the two-edge-server semantic communication system proposed
in the paper (domain-specialized general KBs cached on both edges, individual
models derived per user, decoder-gradient synchronization), sends a short
conversation through it, and prints what crossed the wire.
"""

from __future__ import annotations

from repro import CodecConfig, SemanticEdgeSystem, SystemConfig


def main() -> None:
    # A compact configuration that pretrains in a few seconds on a laptop CPU.
    config = SystemConfig(
        codec=CodecConfig(architecture="mlp", embedding_dim=24, feature_dim=4, hidden_dim=48, max_length=16, seed=0),
        channel_snr_db=12.0,          # AWGN channel between the edge servers
        quantization_bits=4,          # bits per semantic feature value on the wire
        individual_threshold=4,       # transactions buffered before personalizing
        fine_tune_epochs=1,
    )
    print("Pretraining domain-specialized knowledge bases (IT / medical / news / entertainment)...")
    system = SemanticEdgeSystem.pretrained(sentences_per_domain=120, train_epochs=15, config=config, seed=0)

    for info in system.knowledge_bases.info():
        print(
            f"  KB[{info.domain:<13}] {info.num_parameters:>6} parameters, "
            f"{info.size_bytes / 1024:.0f} KiB cached, train accuracy {info.final_token_accuracy:.2f}"
        )

    session = system.open_session("alice", "bob", channel_seed=0)
    conversation = [
        ("the cpu loads the bus", "it"),
        ("the kernel patches a remote channel", "it"),
        ("the doctor examines the infected cell", "medical"),
        ("the surgeon monitors a critical operation", "medical"),
        ("the reporter investigates the national budget", "news"),
        ("the band premieres a viral concert", "entertainment"),
    ]

    print("\nDelivering messages through semantic encoding -> channel -> semantic decoding:\n")
    for text, domain in conversation:
        report = session.send_text("alice", "bob", text, domain_hint=domain)
        print(f"  sent     : {text}")
        print(f"  restored : {report.restored_text}")
        print(
            f"  domain={report.selected_domain:<13} payload={report.payload_bytes:6.1f} B "
            f"(text would be {len(text)} B)  accuracy={report.token_accuracy:.2f}  "
            f"latency={report.latency.total_s * 1000:.1f} ms"
        )
        print()

    summary = system.summary()
    print("Session summary:")
    print(f"  deliveries              : {summary['deliveries']:.0f}")
    print(f"  mean semantic mismatch   : {summary['mean_mismatch']:.3f}")
    print(f"  payload bytes (total)    : {summary['total_payload_bytes']:.0f}")
    print(f"  decoder-sync bytes       : {summary['total_sync_bytes']:.0f}")
    print(f"  sender cache hit ratio   : {summary['sender_cache_hit_ratio']:.2f}")
    print(f"  cached models on sender  : {sorted(system.sender.cache.keys())}")


if __name__ == "__main__":
    main()
