"""Metaverse scenario: venue-driven traffic through the semantic edge system.

Run with::

    python examples/metaverse_session.py

The paper motivates semantic communication with Metaverse applications.  This
example generates a Metaverse workload (virtual venues whose conversations
concentrate on one domain), streams it through the semantic edge system with a
trained model-selection policy (no domain hints — the edge must pick the KB
itself), and reports fidelity, payload, latency and cache behaviour per venue.
"""

from __future__ import annotations

from collections import defaultdict

from repro import CodecConfig, SemanticEdgeSystem, SystemConfig
from repro.metrics import summarize_bandwidth, summarize_fidelity, summarize_latency
from repro.selection import ClassifierSelectionPolicy, DomainClassifier, build_featurizer
from repro.workloads import MetaverseWorkload, generate_all_corpora


def train_selection_policy(seed: int = 0) -> ClassifierSelectionPolicy:
    """Train the per-message domain classifier used by the sender edge."""
    corpora = generate_all_corpora(150, seed=seed)
    texts, labels = [], []
    for domain, corpus in corpora.items():
        for sentence in corpus.sentences:
            texts.append(sentence)
            labels.append(domain)
    featurizer = build_featurizer(texts)
    classifier = DomainClassifier(featurizer, sorted(set(labels)), seed=seed)
    classifier.fit(texts, labels, epochs=25, seed=seed)
    return ClassifierSelectionPolicy(classifier)


def main() -> None:
    print("Training the model-selection policy and pretraining knowledge bases...")
    policy = train_selection_policy()
    config = SystemConfig(
        codec=CodecConfig(architecture="mlp", embedding_dim=24, feature_dim=6, hidden_dim=48, max_length=16, seed=0),
        channel_snr_db=10.0,
        quantization_bits=5,
        individual_threshold=3,
        fine_tune_epochs=1,
    )
    system = SemanticEdgeSystem.pretrained(
        sentences_per_domain=150, train_epochs=18, config=config, selection_policy=policy, seed=0
    )

    print("Generating the Metaverse workload (4 venues, 12 users)...")
    workload = MetaverseWorkload(num_users=12, arrival_rate=20.0, latency_budget_ms=80.0, seed=1)
    scenario = workload.generate(150)

    session = system.open_session("metaverse-uplink", "metaverse-downlink", channel_seed=2)
    reports_by_venue = defaultdict(list)
    ordered_reports = []
    correct_selection = 0

    for event in scenario.events:
        # No domain hint: the sender edge must select the KB from the message itself.
        report = session.send_text(event.message.user_id, "peer", event.message.text)
        reports_by_venue[event.venue].append(report)
        ordered_reports.append(report)
        correct_selection += int(report.selected_domain == event.message.domain)

    print(f"\nModel selection accuracy (no hints): {correct_selection / len(scenario.events):.2%}\n")
    print(f"{'venue':<16} {'events':>6} {'accuracy':>9} {'payload B':>10} {'latency ms':>11}")
    for venue in scenario.venues:
        reports = reports_by_venue.get(venue.name, [])
        if not reports:
            continue
        fidelity = summarize_fidelity(reports)
        bandwidth = summarize_bandwidth(reports)
        latency = summarize_latency(reports)
        print(
            f"{venue.name:<16} {len(reports):>6} {fidelity.token_accuracy:>9.3f} "
            f"{bandwidth.mean_payload_bytes:>10.1f} {latency.mean_s * 1000:>11.2f}"
        )

    all_reports = ordered_reports
    within_budget = sum(
        1
        for event, report in zip(scenario.events, all_reports)
        if report.latency.total_s * 1000 <= event.latency_budget_ms
    )
    sync_events = sum(report.sync_triggered for report in all_reports)
    sync_bytes = sum(report.sync_bytes for report in all_reports)
    print(f"\nDeliveries within their latency budget: {within_budget}/{len(scenario.events)}")
    print(f"Sender cache hit ratio: {system.sender.cache.statistics.hit_ratio:.2f}")
    print(f"Individual models created: {len(system.sender.individual_models)}")
    print(f"Decoder gradient syncs to the receiver edge: {sync_events} ({sync_bytes / 1024:.0f} KiB total)")


if __name__ == "__main__":
    main()
