"""Engine invariants: the properties every backend must preserve, as code.

The scenario fuzzer (:mod:`repro.scenarios.fuzz`) samples adversarial
workloads; this module is the judge it drives them through.  Three pieces:

* :class:`InvariantChecker` — an ``on_request_end`` hook that validates every
  terminal request as it happens (terminal status, timestamp ordering, no
  double termination) and keeps exact terminal counts for the end-of-replay
  conservation check.  It is mergeable (``clone_empty``/``merge``), so it
  rides through the sharded backend unchanged, and it can chain an inner
  hook (the scenario runner's :class:`~repro.scenarios.measure.PhaseCollector`)
  so observation and checking share one attachment point.
* :func:`audit_simulator` — a post-replay structural audit of a live engine
  (the serial backend, or one shard): cache byte accounting, no leaked pins,
  no stranded in-flight fetches or open batches, dead cells hold nothing.
* :func:`expected_fault_state` / :func:`audit_fault_state` — fold a
  :class:`~repro.scenarios.spec.ScenarioSpec` fault timeline into the
  end-of-run state it implies (failed flags, downlink factors, cache
  budgets) and compare against the engine.  Repeated ``degrade_downlink``
  events in the timeline directly exercise the never-compounds contract.

Violations raise :class:`InvariantViolation` (a
:class:`~repro.exceptions.SimulationError`), so a fuzzer or test sees one
exception type whichever layer caught the bug.

The checker keeps one set entry per terminal request to detect double
termination — attach it to bounded replays (fuzz cases, tests), not to
multi-million-request production runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional, Set

from repro.exceptions import CacheError, SimulationError
from repro.sim.request import (
    CACHE_OUTCOMES,
    COMPLETED,
    DEADLINE_EXCEEDED,
    DROPPED,
    SHED,
    UNSET,
    Request,
)


class InvariantViolation(SimulationError):
    """An engine invariant did not hold (the bug, not the workload, is wrong)."""


class InvariantChecker:
    """Terminal-event watchdog attachable via ``on_request_end``.

    Parameters
    ----------
    inner:
        Optional hook called after the checks pass, so one attachment point
        serves both measurement and verification (the scenario runner chains
        its :class:`~repro.scenarios.measure.PhaseCollector` here).  For the
        sharded backend the inner hook must itself be mergeable.
    """

    def __init__(self, inner=None) -> None:
        self.inner = inner
        self.completed = 0
        self.dropped = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self._seen: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Hook protocol
    # ------------------------------------------------------------------ #
    def __call__(self, request: Request) -> None:
        status = request.status
        if status == COMPLETED:
            if request.completion_time == UNSET:
                raise InvariantViolation(
                    f"request {request.request_id} completed without a completion time"
                )
            if request.completion_time < request.arrival_time:
                raise InvariantViolation(
                    f"request {request.request_id} completed at "
                    f"{request.completion_time} before arriving at {request.arrival_time}"
                )
            if request.cache_outcome not in CACHE_OUTCOMES:
                raise InvariantViolation(
                    f"completed request {request.request_id} has cache outcome "
                    f"{request.cache_outcome!r} (expected one of {CACHE_OUTCOMES})"
                )
            self.completed += 1
        elif status == DROPPED:
            if request.completion_time != UNSET:
                raise InvariantViolation(
                    f"dropped request {request.request_id} carries a completion time "
                    f"({request.completion_time})"
                )
            self.dropped += 1
        elif status == SHED or status == DEADLINE_EXCEEDED:
            if request.completion_time != UNSET:
                raise InvariantViolation(
                    f"{status} request {request.request_id} carries a completion "
                    f"time ({request.completion_time})"
                )
            if status == SHED:
                self.shed += 1
            else:
                self.deadline_exceeded += 1
        else:
            raise InvariantViolation(
                f"terminal hook saw request {request.request_id} in non-terminal "
                f"status {status!r}"
            )
        if request.request_id in self._seen:
            raise InvariantViolation(
                f"request {request.request_id} reached a terminal event twice"
            )
        self._seen.add(request.request_id)
        if self.inner is not None:
            self.inner(request)

    @property
    def terminal(self) -> int:
        """Terminal events observed (completions, drops, sheds, deadline expiries)."""
        return self.completed + self.dropped + self.shed + self.deadline_exceeded

    # ------------------------------------------------------------------ #
    # Mergeable-hook protocol (sharded backend)
    # ------------------------------------------------------------------ #
    def clone_empty(self) -> "InvariantChecker":
        """A fresh checker for one shard (inner hook cloned alongside)."""
        inner = None if self.inner is None else self.inner.clone_empty()
        return InvariantChecker(inner=inner)

    def merge(self, other: "InvariantChecker") -> None:
        """Fold one shard's observations in; shards must not share requests."""
        overlap = self._seen & other._seen
        if overlap:
            raise InvariantViolation(
                f"{len(overlap)} request ids reached terminal events on two shards "
                f"(e.g. {sorted(overlap)[:3]})"
            )
        self._seen |= other._seen
        self.completed += other.completed
        self.dropped += other.dropped
        self.shed += other.shed
        self.deadline_exceeded += other.deadline_exceeded
        if self.inner is not None and other.inner is not None:
            self.inner.merge(other.inner)

    # ------------------------------------------------------------------ #
    # End-of-replay conservation
    # ------------------------------------------------------------------ #
    def verify_report(self, report, issued: int) -> None:
        """Check request conservation against the merged report.

        ``completed + dropped + shed + deadline_exceeded == issued`` must
        hold **exactly** on every backend — the sharded engine terminates
        each forward chain exactly once, and hedged duplicates are de-counted
        to one terminal per logical request, so conservation is not a
        tolerance check.
        """
        if self.terminal != issued:
            raise InvariantViolation(
                f"request conservation broken: {issued} issued but "
                f"{self.completed} completed + {self.dropped} dropped + "
                f"{self.shed} shed + {self.deadline_exceeded} deadline_exceeded "
                f"= {self.terminal} terminal events"
            )
        if report.completed != self.completed:
            raise InvariantViolation(
                f"report says {report.completed} completed but the terminal hook "
                f"saw {self.completed}"
            )
        if report.dropped != self.dropped:
            raise InvariantViolation(
                f"report says {report.dropped} dropped but the terminal hook "
                f"saw {self.dropped}"
            )
        cells_completed = sum(stats.completed for stats in report.cells.values())
        if cells_completed != report.completed:
            raise InvariantViolation(
                f"per-cell completed counters sum to {cells_completed}, "
                f"report says {report.completed}"
            )
        cells_dropped = sum(stats.dropped for stats in report.cells.values())
        if cells_dropped != report.dropped:
            raise InvariantViolation(
                f"per-cell dropped counters sum to {cells_dropped}, "
                f"report says {report.dropped}"
            )
        for kind, hook_count in (
            ("shed", self.shed),
            ("deadline_exceeded", self.deadline_exceeded),
        ):
            report_count = getattr(report, kind, 0)
            if report_count != hook_count:
                raise InvariantViolation(
                    f"report says {report_count} {kind} but the terminal hook "
                    f"saw {hook_count}"
                )
            cells_count = sum(getattr(stats, kind, 0) for stats in report.cells.values())
            if cells_count != report_count:
                raise InvariantViolation(
                    f"per-cell {kind} counters sum to {cells_count}, "
                    f"report says {report_count}"
                )


def audit_simulator(sim, allow_over_budget: bool = False) -> None:
    """Structural post-replay audit of one live engine.

    ``sim`` is a :class:`~repro.sim.simulator.MultiCellSimulator` (or one
    shard of the sharded backend — shards are subclasses and call this from
    ``finalize``).  At quiescence:

    * every cache's incremental byte accounting matches a full re-sum
      (:meth:`~repro.caching.cache.SemanticModelCache.assert_consistent`);
    * no pins are leaked — every transfer that pinned a source entry has
      released it;
    * no cell holds stranded in-flight fetches or an open batch;
    * a cell that is down holds no cache entries (failure wipes, and the
      epoch guard blocks admissions while dead);
    * no cache is over its byte budget, unless the run shrank a budget below
      live pins (``allow_over_budget`` — the documented resize-under-pins
      semantics leave the cache over-full rather than break a pin);
    * per-cell counters are non-negative, their completion sum matches the
      engine total, and the latency recorder saw exactly one sample per
      completion.
    """
    for name, cell in sim.cells.items():
        cache = cell.cache
        try:
            cache.assert_consistent()
        except CacheError as error:
            raise InvariantViolation(f"cell {name}: {error}") from error
        leaked = [entry.key for entry in cache.entries() if entry.pinned]
        if leaked:
            raise InvariantViolation(
                f"cell {name} leaked pins on {leaked} after quiescence"
            )
        if cache.pinned_bytes != 0:
            raise InvariantViolation(
                f"cell {name} reports {cache.pinned_bytes} pinned bytes with no "
                "pinned entries"
            )
        if cell.inflight:
            raise InvariantViolation(
                f"cell {name} has stranded in-flight fetches for "
                f"{sorted(cell.inflight)}"
            )
        if len(cell.batcher):
            raise InvariantViolation(
                f"cell {name} still holds an open batch of {len(cell.batcher)} "
                "requests after quiescence"
            )
        if cell.failed and len(cache) > 0:
            raise InvariantViolation(
                f"dead cell {name} holds {len(cache)} cache entries "
                f"({sorted(cache.keys())[:3]}...)"
            )
        if cache.used_bytes > cache.capacity_bytes and not allow_over_budget:
            raise InvariantViolation(
                f"cell {name} cache is over budget ({cache.used_bytes} B used, "
                f"{cache.capacity_bytes} B capacity) with no shrink-under-pins "
                "in the timeline"
            )
        for field in fields(cell.stats):
            value = getattr(cell.stats, field.name)
            if isinstance(value, int) and value < 0:
                raise InvariantViolation(
                    f"cell {name} counter {field.name} went negative ({value})"
                )
    if sim.engine.pending() != 0:
        raise InvariantViolation(
            f"event heap still holds {sim.engine.pending()} events after the replay"
        )
    cells_completed = sum(cell.stats.completed for cell in sim.cells.values())
    if cells_completed != sim._completed_total:
        raise InvariantViolation(
            f"per-cell completions sum to {cells_completed}, engine counted "
            f"{sim._completed_total}"
        )
    if len(sim.latency) != sim._completed_total:
        raise InvariantViolation(
            f"latency recorder holds {len(sim.latency)} samples for "
            f"{sim._completed_total} completions"
        )
    if getattr(sim, "_resilience", None) is not None:
        stuck = {name: count for name, count in sim._outstanding.items() if count != 0}
        if stuck:
            raise InvariantViolation(
                f"outstanding-queue counters non-zero after quiescence: {stuck}"
            )
        if sim._hedge_pairs:
            raise InvariantViolation(
                f"{len(sim._hedge_pairs)} hedge pairs unresolved after quiescence "
                f"(e.g. {sorted(sim._hedge_pairs)[:3]})"
            )


@dataclass(frozen=True)
class FaultEndState:
    """The deployment state a fault timeline implies once it has all fired."""

    failed: frozenset
    #: Per-cell downlink factor relative to the healthy baseline.
    downlink_factor: Dict[str, float]
    #: Per-cell cache budget in bytes.
    capacity_bytes: Dict[str, int]
    #: Final handover probability (``None`` when the timeline never set it).
    handover_probability: Optional[float]
    #: Whether any resize lowered a cell's budget below its then-current value
    #: (the one legal source of an over-budget cache at quiescence).
    shrank_cache: bool


def expected_fault_state(spec) -> FaultEndState:
    """Fold ``spec``'s fault timeline into its implied end-of-run state.

    Events fold in time order with ties kept in spec order — exactly the
    order every backend fires them (pre-run heap events at equal timestamps
    pop in scheduling order).
    """
    # Local import: repro.scenarios imports the sim package, not vice versa.
    from repro.scenarios.spec import (
        CACHE_RESIZE,
        CELL_FAIL,
        CELL_RECOVER,
        LINK_DEGRADE,
        LINK_RESTORE,
        MOBILITY_SET,
    )

    cell_names = [f"cell_{index}" for index in range(spec.num_cells)]
    base_capacity = int(spec.cache_capacity_mb * 1024 * 1024)
    failed = set()
    factor = {name: 1.0 for name in cell_names}
    capacity = {name: base_capacity for name in cell_names}
    handover: Optional[float] = None
    shrank = False
    for event in sorted(spec.events, key=lambda event: event.time_s):
        targets = [event.cell] if event.cell is not None else cell_names
        if event.kind == CELL_FAIL:
            failed.add(event.cell)
        elif event.kind == CELL_RECOVER:
            failed.discard(event.cell)
        elif event.kind == LINK_DEGRADE:
            for name in targets:
                factor[name] = event.factor
        elif event.kind == LINK_RESTORE:
            for name in targets:
                factor[name] = 1.0
        elif event.kind == CACHE_RESIZE:
            new_capacity = int(spec.cache_capacity_mb * 1024 * 1024 * event.factor)
            for name in targets:
                if new_capacity < capacity[name]:
                    shrank = True
                capacity[name] = new_capacity
        elif event.kind == MOBILITY_SET:
            handover = event.value
    return FaultEndState(
        failed=frozenset(failed),
        downlink_factor=factor,
        capacity_bytes=capacity,
        handover_probability=handover,
        shrank_cache=shrank,
    )


def audit_fault_state(sim, spec) -> None:
    """Check a serial engine's end state against the folded timeline.

    Directly exercises the fault-application contracts: failures and
    recoveries land on the right cells, ``resize`` budgets stick, and —
    because repeated ``link_degrade`` events fold to the *last* factor, not
    the product — downlink degradation never compounds.
    """
    state = expected_fault_state(spec)
    for name, cell in sim.cells.items():
        expected_failed = name in state.failed
        if cell.failed != expected_failed:
            raise InvariantViolation(
                f"cell {name} ended {'failed' if cell.failed else 'alive'}; the "
                f"timeline implies {'failed' if expected_failed else 'alive'}"
            )
        if cell.cache.capacity_bytes != state.capacity_bytes[name]:
            raise InvariantViolation(
                f"cell {name} cache budget is {cell.cache.capacity_bytes} B; the "
                f"timeline implies {state.capacity_bytes[name]} B"
            )
    downlink = getattr(sim, "_downlink_time", None)
    baseline = getattr(sim, "_downlink_base", None)
    if downlink is not None and baseline is not None:
        for name, base in baseline.items():
            expected = base * state.downlink_factor[name]
            if not math.isclose(downlink[name], expected, rel_tol=1e-12, abs_tol=0.0):
                raise InvariantViolation(
                    f"cell {name} downlink time is {downlink[name]!r}; the timeline "
                    f"implies {expected!r} (factor {state.downlink_factor[name]}) — "
                    "degradation must replace, never compound"
                )


__all__ = [
    "InvariantViolation",
    "InvariantChecker",
    "audit_simulator",
    "expected_fault_state",
    "audit_fault_state",
    "FaultEndState",
]
