"""Sharded simulator backend: one replay partitioned across worker processes.

See :mod:`repro.sim.sharded.simulator` for the execution model (contiguous
ring segments, deterministic mobility pre-pass, conservative time windows,
barrier-exchanged directory deltas and failover forwards) and
:mod:`repro.sim.backend` for the ``SimBackend`` API it implements.
"""

from repro.sim.sharded.partition import partition_cells, plan_mobility
from repro.sim.sharded.shard import Forward, ShardResult, ShardSimulator, WindowMessage
from repro.sim.sharded.simulator import DRIVERS, ShardedConfig, ShardedSimulator

__all__ = [
    "DRIVERS",
    "Forward",
    "ShardResult",
    "ShardSimulator",
    "ShardedConfig",
    "ShardedSimulator",
    "WindowMessage",
    "partition_cells",
    "plan_mobility",
]
