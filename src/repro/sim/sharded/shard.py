"""One shard of the partitioned replay: an engine over a slice of the ring.

A :class:`ShardSimulator` is a :class:`~repro.sim.simulator.MultiCellSimulator`
built over the **full** deployment — global topology, global path costs,
global neighbour order, global fault timeline — but *serving* only the cells
its shard owns.  Non-owned cells exist as lightweight replicas: their
``failed`` flag tracks the broadcast fault timeline (every shard schedules
the identical timeline on its own engine, so the global alive/failed view
is consistent without any messaging), their caches stay empty, and their
*contents* are known through the cross-shard cache directory updated at
window barriers.

Cross-shard interaction is confined to two message kinds exchanged at each
barrier (:class:`WindowMessage`):

* **directory deltas** — the sorted key set of every owned cell whose cache
  changed during the window.  Remote shards consult the directory when a
  miss looks for a cooperative source beyond the shard boundary; the fetch
  is charged the exact global backhaul cost, without pinning the remote
  entry (the directory may be up to one window stale — that staleness bound
  is the conservative-window contract).
* **failover forwards** — a request whose failover target lives on another
  shard travels there as data and re-enters the lifecycle at the barrier,
  hop-capped so pathological outage chains terminate.

Within a window the shard is just the serial engine: same event heap, same
lifecycle, same fault methods.  Everything the serial engine pins down
(batching, coalescing, epoch-guarded fetches) is inherited, not rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import Simulation
from repro.sim.metrics import CellStats, LatencyRecorder
from repro.sim.multicell import CLOUD, CellConfig, ModelSpec
from repro.sim.request import CLOUD_FETCH, DROPPED, FORWARDED, NEIGHBOR_FETCH, Request
from repro.sim.sharded.partition import FAILOVER_HANDOVER
from repro.sim.simulator import MultiCellSimulator, SimulatorConfig

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Forward:
    """A request re-homed across the shard boundary, travelling as data."""

    cell: str
    user_id: str
    domain: str
    arrival_time: float
    hops: int


@dataclass
class WindowMessage:
    """Everything one shard tells the others at a window barrier."""

    shard: int
    window: int
    #: Stream exhausted and event heap empty (forwards may still revive it).
    done: bool
    #: ``(cell_name, sorted key tuple)`` for owned cells whose cache changed.
    directory_updates: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    forwards: List[Forward] = field(default_factory=list)


@dataclass
class ShardResult:
    """A finished shard's contribution to the merged report."""

    shard: int
    owned: List[str]
    cell_stats: Dict[str, CellStats]
    completed: int
    last_completion: float
    events_processed: int
    latency: LatencyRecorder
    backhaul_bytes: float
    cloud_bytes: float
    compute_busy_s: float
    hook: object = None


class ShardSimulator(MultiCellSimulator):
    """The per-worker simulator: full deployment, owned-slice replay."""

    backend_name = "sharded"

    def __init__(
        self,
        cell_configs: Sequence[CellConfig],
        catalogue: Dict[str, ModelSpec],
        config: Optional[SimulatorConfig],
        shard_index: int,
        owned: Sequence[str],
        times: np.ndarray,
        user_codes: np.ndarray,
        user_labels: Sequence[str],
        domain_codes: np.ndarray,
        domain_names: Sequence[str],
        plan_cells: np.ndarray,
        plan_flags: np.ndarray,
        request_ids: np.ndarray,
        forward_id_base: int,
        timeline: Sequence[Tuple[float, Sequence[Tuple[str, tuple]], str]],
        max_forward_hops: int,
        on_request_end=None,
        audit_over_budget: bool = False,
        resilience=None,
        resilience_seed: int = 0,
    ) -> None:
        config = config or SimulatorConfig()
        # Requests cannot be meaningfully retained per shard (the facade owns
        # no merged request list), and the shard's mobility model is never
        # consulted — the plan already resolved every serving cell.
        super().__init__(
            cell_configs, catalogue, config=replace(config, retain_requests=False), seed=0
        )
        self.index = shard_index
        self._owned_order = list(owned)
        self._owned = frozenset(owned)
        self._times = times
        self._user_codes = user_codes
        self._user_labels = list(user_labels)
        self._domain_codes = domain_codes
        self._plan_cell_names = list(self.cells)
        self._plan_cells = plan_cells
        self._plan_flags = plan_flags
        self._request_ids = request_ids
        self._forward_counter = forward_id_base
        self._max_forward_hops = max_forward_hops
        self._domain_keys = [self._domain_info[name][0] for name in domain_names]
        self._domain_name_list = list(domain_names)
        self.on_request_end = on_request_end
        self._next_index = 0
        self._window = 0
        self._forwards: List[Forward] = []
        self._forward_hops: Dict[int, int] = {}
        self._directory: Dict[str, FrozenSet[str]] = {}
        self._last_sent: Dict[str, Tuple[str, ...]] = {name: () for name in self._owned_order}
        self._audit_over_budget = audit_over_budget
        # The policy travels as pure data in the shard payload; every shard
        # seeds the identical jitter hash, so retry timing matches the serial
        # engine's exactly for the same (user, arrival, attempt).
        self.configure_resilience(resilience, seed=resilience_seed)
        for time_s, calls, label in timeline:
            self.schedule_calls(time_s, calls, label=label)
        # Captured once, after the timeline is on the heap: fault events keep
        # their pre-replay sequence numbers across every window, so a fault at
        # time t always fires before an arrival stamped exactly t — the same
        # tie-break the serial engine applies for its whole (single) run.
        self._boundary = self.engine._sequence

    # ------------------------------------------------------------------ #
    # Window loop
    # ------------------------------------------------------------------ #
    def advance_to(self, until: float) -> WindowMessage:
        """Run owned events up to ``until`` and emit this window's message."""
        _, self._next_index = self.engine.run_stream_window(
            self._times,
            self._stream_item,
            start_index=self._next_index,
            until=until,
            boundary=self._boundary,
        )
        updates: List[Tuple[str, Tuple[str, ...]]] = []
        for name in self._owned_order:
            keys = tuple(sorted(self.cells[name].cache.keys()))
            if keys != self._last_sent[name]:
                self._last_sent[name] = keys
                updates.append((name, keys))
        forwards = self._forwards
        self._forwards = []
        self._window += 1
        done = self._next_index >= len(self._times) and self.engine.pending() == 0
        return WindowMessage(
            shard=self.index,
            window=self._window,
            done=done,
            directory_updates=updates,
            forwards=forwards,
        )

    def deliver(self, messages: Sequence[WindowMessage]) -> None:
        """Apply the other shards' barrier messages (in shard-index order).

        Directory updates replace the remote cell's known key set; forwards
        addressed to owned cells re-enter the request lifecycle at the
        barrier time.  The caller fixes the message order, which fixes the
        forward-processing order, which keeps the replay deterministic.
        """
        owned = self._owned
        for message in messages:
            for name, keys in message.directory_updates:
                if name not in owned:
                    self._directory[name] = frozenset(keys)
            for forward in message.forwards:
                if forward.cell in owned:
                    self._accept_forward(forward)

    def _stream_item(self, sim: Simulation, index: int) -> None:
        cell = self.cells[self._plan_cell_names[self._plan_cells[index]]]
        domain_code = self._domain_codes[index]
        request = Request(
            int(self._request_ids[index]),
            self._user_labels[self._user_codes[index]],
            self._domain_name_list[domain_code],
            self._domain_keys[domain_code],
            sim.now,
            self.config.num_tokens,
        )
        request.cell = cell.name
        if self._resilience is not None:
            self._stream_item_resilient(request, cell, self._plan_flags[index])
            return
        if cell.failed:
            # Planned onto a cell that is down anyway (no alive candidate
            # existed at planning time, or it died within a handover window).
            self._failover(request, cell)
            return
        flag = self._plan_flags[index]
        if flag:
            request.handover = True
            cell.stats.handovers_in += 1
            if flag == FAILOVER_HANDOVER:
                cell.stats.failovers += 1
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=cell: self._lookup(r, c))
                return
        self._lookup(request, cell)

    def _stream_item_resilient(self, request: Request, cell, flag) -> None:
        """Planned arrival under a policy: hedge timer, breaker-aware routing."""
        policy = self._resilience
        if policy.hedge_delay_s is not None:
            self.engine.post(
                policy.hedge_delay_s, lambda sim, r=request: self._maybe_hedge(r)
            )
        if cell.failed or self._breaker_open(cell):
            self._failover(request, cell)
            return
        if flag:
            request.handover = True
            cell.stats.handovers_in += 1
            if flag == FAILOVER_HANDOVER:
                cell.stats.failovers += 1
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=cell: self._lookup(r, c))
                return
        self._lookup(request, cell)

    def _accept_forward(self, forward: Forward) -> None:
        """Re-enter a cross-shard failover at the barrier (now = window end)."""
        cell = self.cells[forward.cell]
        self._forward_counter += 1
        info = self._domain_info[forward.domain]
        request = Request(
            self._forward_counter,
            forward.user_id,
            forward.domain,
            info[0],
            forward.arrival_time,
            self.config.num_tokens,
        )
        request.handover = True
        request.cell = cell.name
        self._forward_hops[request.request_id] = forward.hops
        policy = self._resilience
        if policy is not None and policy.hedge_delay_s is not None:
            # The continuation gets its own hedge window, like a fresh arrival.
            self.engine.post(
                policy.hedge_delay_s, lambda sim, r=request: self._maybe_hedge(r)
            )
        if cell.failed or (policy is not None and self._breaker_open(cell)):
            self._failover(request, cell)
            return
        cell.stats.handovers_in += 1
        cell.stats.failovers += 1
        delay = self.config.mobility.handover_delay_s
        if delay > 0:
            self.engine.post(delay, lambda sim, r=request, c=cell: self._lookup(r, c))
        else:
            self._lookup(request, cell)

    # ------------------------------------------------------------------ #
    # Lifecycle overrides
    # ------------------------------------------------------------------ #
    def _failover(self, request: Request, from_cell) -> None:
        """Serial failover, extended across the shard boundary.

        The first alive candidate in the (global) neighbour order wins, as in
        the serial engine — every shard applies the same fault timeline, so
        remote ``failed`` flags are exact, not stale.  An owned winner is
        handled locally; a remote winner turns the request into a
        :class:`Forward` delivered at the next barrier, unless its hop budget
        is spent.
        """
        if self._resilience is not None:
            self._failover_resilient(request, from_cell)
            return
        fallback = None
        for neighbor in from_cell.neighbor_order:
            if not neighbor.failed:
                fallback = neighbor
                break
        hops = self._forward_hops.pop(request.request_id, 0)
        if fallback is None or hops >= self._max_forward_hops:
            request.status = DROPPED
            from_cell.stats.dropped += 1
            hook = self.on_request_end
            if hook is not None:
                hook(request)
            return
        if fallback.name in self._owned:
            self._forward_hops[request.request_id] = hops
            request.handover = True
            request.cell = fallback.name
            fallback.stats.handovers_in += 1
            fallback.stats.failovers += 1
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=fallback: self._lookup(r, c))
            else:
                self._lookup(request, fallback)
            return
        self._forwards.append(
            Forward(
                cell=fallback.name,
                user_id=request.user_id,
                domain=request.domain,
                arrival_time=request.arrival_time,
                hops=hops + 1,
            )
        )

    def _failover_resilient(self, request: Request, from_cell) -> None:
        """Shard failover under a policy: breaker-aware, retry-aware, hedge-safe.

        Hedge twins are pinned to their shard — a twin may only re-home to an
        *owned* cell, never forward, because its primary is still live here
        and a cross-shard continuation could terminate the logical request
        twice.  When a primary with a live twin forwards, the local pair is
        resolved by fiat (the remote continuation owns the terminal) so the
        twin's eventual outcome is suppressed.  The forward-hop budget is
        per-attempt: a retry after backoff starts a fresh chain, bounded by
        ``max_retries`` overall.
        """
        owned = self._owned
        is_hedge = request.is_hedge
        fallback = None
        for neighbor in from_cell.neighbor_order:
            if is_hedge and neighbor.name not in owned:
                continue
            if not neighbor.failed and not self._breaker_open(neighbor):
                fallback = neighbor
                break
        hops = self._forward_hops.pop(request.request_id, 0)
        if fallback is None or hops >= self._max_forward_hops:
            self._drop_or_retry(request, from_cell)
            return
        if fallback.name in owned:
            self._forward_hops[request.request_id] = hops
            request.handover = True
            request.cell = fallback.name
            fallback.stats.handovers_in += 1
            fallback.stats.failovers += 1
            # No mobility.place here: the shard's mobility model is never
            # consulted — the pre-pass plan already fixed every serving cell.
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=fallback: self._lookup(r, c))
            else:
                self._lookup(request, fallback)
            return
        self._unadmit(request)
        request.status = FORWARDED
        pair = self._hedge_pairs.get(request.request_id)
        if pair is not None:
            pair[0] = True
            pair[1] -= 1
            if pair[1] <= 0:
                del self._hedge_pairs[request.request_id]
        self._forwards.append(
            Forward(
                cell=fallback.name,
                user_id=request.user_id,
                domain=request.domain,
                arrival_time=request.arrival_time,
                hops=hops + 1,
            )
        )

    def _hedge_candidates(self, cell) -> Sequence:
        """Hedge targets must be owned: the twin's pair state lives here."""
        owned = self._owned
        return [neighbor for neighbor in cell.neighbor_order if neighbor.name in owned]

    def _begin_fetch(self, request: Request, cell, key: str, spec: ModelSpec) -> None:
        """Cooperative-source search across owned caches *and* the directory.

        Walks the global neighbour order exactly like the serial engine;
        owned neighbours are checked live, remote neighbours through the
        directory.  A remote hit is charged the exact global backhaul cost
        but holds no pin — the remote entry may be evicted (or the directory
        may be one window stale) while the copy is in flight, in which case
        the model still arrives: the source held it within the last window,
        which is the conservative-window guarantee.
        """
        owned = self._owned
        directory = self._directory
        source = None
        remote_name = None
        for neighbor in cell.neighbor_order:
            if neighbor.failed:
                continue
            name = neighbor.name
            if name in owned:
                if neighbor.cache.peek(key) is not None:
                    source = neighbor
                    break
            elif key in directory.get(name, _EMPTY):
                remote_name = name
                break
        epoch = cell.failure_epoch
        if source is not None:
            cell.stats.neighbor_fetches += 1
            request.cache_outcome = NEIGHBOR_FETCH
            source.cache.pin(key)
            delay = self.costs.transfer_time(source.name, cell.name, spec.size_bytes)
            self.backhaul_bytes += spec.size_bytes
            self.engine.post(
                delay,
                lambda sim, c=cell, k=key, s=source, m=spec, e=epoch: self._fetch_done(
                    c, k, m, source=s, epoch=e
                ),
            )
        elif remote_name is not None:
            cell.stats.neighbor_fetches += 1
            request.cache_outcome = NEIGHBOR_FETCH
            delay = self.costs.transfer_time(remote_name, cell.name, spec.size_bytes)
            self.backhaul_bytes += spec.size_bytes
            self.engine.post(
                delay,
                lambda sim, c=cell, k=key, m=spec, e=epoch: self._fetch_done(
                    c, k, m, source=None, epoch=e
                ),
            )
        else:
            cell.stats.cloud_fetches += 1
            request.cache_outcome = CLOUD_FETCH
            delay = spec.build_cost_s + self.costs.transfer_time(
                CLOUD, cell.name, spec.size_bytes
            )
            self.cloud_bytes += spec.size_bytes
            self.engine.post(
                delay,
                lambda sim, c=cell, k=key, m=spec, e=epoch: self._fetch_done(
                    c, k, m, source=None, epoch=e
                ),
            )

    def fail_cell(self, name: str) -> None:
        super().fail_cell(name)
        if name not in self._owned:
            # The owner's barrier delta will confirm the wipe; clear eagerly
            # so no fetch targets a cache known to be gone.
            self._directory[name] = _EMPTY

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def finalize(self) -> ShardResult:
        """Collect this shard's owned-cell results for the merged report.

        Finalization runs the structural engine audit first (cache byte
        accounting, no leaked pins, nothing stranded, dead cells hold
        nothing): every shard proves its slice healthy before the facade
        merges anything, and a violation surfaces as this shard's error
        rather than a corrupted merged report.
        """
        self.audit_invariants(allow_over_budget=self._audit_over_budget)
        owned_cells = [self.cells[name] for name in self._owned_order]
        return ShardResult(
            shard=self.index,
            owned=list(self._owned_order),
            cell_stats={cell.name: cell.stats for cell in owned_cells},
            completed=self._completed_total,
            last_completion=self._last_completion,
            events_processed=self.engine.events_processed,
            latency=self.latency,
            backhaul_bytes=self.backhaul_bytes,
            cloud_bytes=self.cloud_bytes,
            compute_busy_s=sum(cell.server.compute.busy_time for cell in owned_cells),
            hook=self.on_request_end,
        )
