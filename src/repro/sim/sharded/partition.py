"""Cell partitioning and the deterministic mobility pre-pass.

The sharded backend's core trick: the serial simulator resolves each user's
serving cell *during* the replay from one global RNG stream, which is
inherently sequential.  The sharded backend instead gives every user an
independent, path-addressed RNG stream (:class:`~repro.runtime.SeedTree`)
and resolves the whole mobility walk **before** the replay, vectorized per
user.  Every request's serving cell — and therefore its shard — is known up
front, so requests never migrate between shards mid-window.

This makes the sharded backend deterministic under *its own* semantics: the
same seed always produces the same plan, but the per-user streams differ
from the serial engine's single interleaved stream, so sharded results are
statistically equivalent to serial, not byte-identical (the serial engine
remains the bit-identity reference; the sharded path is pinned by its own
golden tables).

The pre-pass is failure-aware: cell outages are static, known-in-advance
intervals (the fault timeline is fixed before the replay starts), so a
request planned onto a failed cell is re-homed to the nearest alive
neighbour here, exactly where the serial engine would have re-homed it at
arrival time.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime.seedtree import SeedTree

#: Per-request handover flags produced by the plan.
NO_HANDOVER = 0
MOBILITY_HANDOVER = 1
FAILOVER_HANDOVER = 2


def partition_cells(cell_names: Sequence[str], num_shards: int) -> List[List[str]]:
    """Split the ring into ``num_shards`` contiguous segments.

    Contiguity matters: mobility handovers move users to ring-adjacent
    cells, so contiguous segments keep most handovers (and therefore most
    cooperative fetches between a user's recent cells) shard-local.  Shard
    sizes differ by at most one cell.  ``num_shards`` is clamped to the cell
    count by the caller.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(cell_names):
        raise ConfigurationError(
            f"cannot split {len(cell_names)} cells into {num_shards} shards"
        )
    count = len(cell_names)
    bounds = [(index * count) // num_shards for index in range(num_shards + 1)]
    return [list(cell_names[bounds[i] : bounds[i + 1]]) for i in range(num_shards)]


class FaultTimelineView:
    """Static per-cell outage intervals and the piecewise handover probability.

    Derived once from the recorded fault timeline (a list of
    ``(time_s, ((method, args), ...))`` entries); the pre-pass queries it per
    arrival.  Interval semantics match the engine's tie-break: a fault event
    scheduled at ``t`` fires before an arrival stamped exactly ``t``, so a
    cell is *failed at* ``t`` when ``fail_t <= t < recover_t``.
    """

    def __init__(
        self,
        timeline: Sequence[Tuple[float, Sequence[Tuple[str, tuple]]]],
        base_handover_probability: float,
    ) -> None:
        fail_starts: Dict[str, List[float]] = {}
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        open_fail: Dict[str, float] = {}
        probability_points: List[Tuple[float, float]] = []
        for time_s, calls in sorted(timeline, key=lambda entry: entry[0]):
            for method, args in calls:
                if method == "fail_cell":
                    open_fail.setdefault(args[0], time_s)
                elif method == "recover_cell":
                    started = open_fail.pop(args[0], None)
                    if started is not None:
                        intervals.setdefault(args[0], []).append((started, time_s))
                elif method == "set_handover_probability":
                    probability_points.append((time_s, float(args[0])))
        for name, started in open_fail.items():
            intervals.setdefault(name, []).append((started, float("inf")))
        self._intervals = intervals
        self._fail_starts = {
            name: [start for start, _ in pairs] for name, pairs in intervals.items()
        }
        self.has_failures = bool(intervals)
        self._probability_times = np.asarray([t for t, _ in probability_points])
        self._probability_values = np.asarray(
            [base_handover_probability] + [p for _, p in probability_points]
        )

    def failed_at(self, cell_name: str, time_s: float) -> bool:
        """Whether ``cell_name`` is down when an arrival stamped ``time_s`` lands."""
        starts = self._fail_starts.get(cell_name)
        if not starts:
            return False
        index = bisect_right(starts, time_s) - 1
        if index < 0:
            return False
        start, end = self._intervals[cell_name][index]
        return start <= time_s < end

    def handover_probability(self, times: np.ndarray) -> np.ndarray:
        """The live handover probability at each arrival time (vectorized)."""
        if len(self._probability_times) == 0:
            return np.full(len(times), self._probability_values[0])
        indices = np.searchsorted(self._probability_times, times, side="right")
        return self._probability_values[indices]


def plan_mobility(
    sorted_times: np.ndarray,
    user_labels: Sequence[str],
    user_codes: np.ndarray,
    cell_names: Sequence[str],
    seed_root: int,
    faults: FaultTimelineView,
    neighbor_names: Dict[str, List[str]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve every request's serving cell before the replay.

    Parameters
    ----------
    sorted_times:
        Arrival timestamps, sorted non-decreasingly (the replay order).
    user_labels / user_codes:
        ``user_labels[user_codes[i]]`` is request ``i``'s user.  Labels are
        the RNG path components, so the same user always walks the same way
        regardless of which other users appear in the trace.
    cell_names:
        Deployment cells in ring order.
    seed_root:
        The backend's seed; each user's stream lives at
        ``("sharded-mobility", "user", label)`` below it.
    faults:
        Static outage intervals + piecewise handover probability.
    neighbor_names:
        Each cell's failover candidates in increasing backhaul-cost order
        (the serial engine's ``neighbor_order``, as names).

    Returns ``(cell_index, flag)`` arrays aligned with ``sorted_times``:
    the serving cell of each request and whether it arrived via a mobility
    handover or a failure re-home (:data:`MOBILITY_HANDOVER` /
    :data:`FAILOVER_HANDOVER`).

    Per user the stream consumes exactly ``1 + 2m`` draws for ``m`` arrivals
    (initial placement, one handover draw and one direction draw per
    arrival), independent of cell count or outages — so adding a fault
    timeline never shifts any user's walk.
    """
    num_cells = len(cell_names)
    num_requests = len(sorted_times)
    plan_cells = np.zeros(num_requests, dtype=np.int64)
    plan_flags = np.zeros(num_requests, dtype=np.int8)
    if num_requests == 0:
        return plan_cells, plan_flags
    tree = SeedTree(seed_root).child("sharded-mobility")
    ring_index = {name: index for index, name in enumerate(cell_names)}
    probabilities = faults.handover_probability(sorted_times)
    # Group request positions by user; the stable sort keeps each user's
    # arrivals in time order within its group.
    order = np.argsort(user_codes, kind="stable")
    grouped_codes = user_codes[order]
    boundaries = np.flatnonzero(np.diff(grouped_codes)) + 1
    groups = np.split(order, boundaries)
    for group in groups:
        label = user_labels[int(user_codes[group[0]])]
        rng = tree.rng("user", label)
        m = len(group)
        init = int(rng.integers(num_cells))
        handover_draws = rng.random(m)
        direction_draws = rng.random(m)
        moved = handover_draws < probabilities[group]
        if num_cells < 2:
            moved[:] = False
        if num_cells == 2:
            steps = np.where(moved, 1, 0)
        else:
            steps = np.where(moved, np.where(direction_draws < 0.5, 1, -1), 0)
        if not faults.has_failures:
            plan_cells[group] = (init + np.cumsum(steps)) % num_cells
            plan_flags[group] = np.where(moved, MOBILITY_HANDOVER, NO_HANDOVER)
            continue
        # Outages re-home users, which changes the base of every later ring
        # step — walk this user's arrivals sequentially (fault scenarios are
        # the small minority of the catalog).
        position = init
        times = sorted_times[group]
        for j in range(m):
            flag = NO_HANDOVER
            if moved[j]:
                position = (position + int(steps[j])) % num_cells
                flag = MOBILITY_HANDOVER
            time_s = float(times[j])
            name = cell_names[position]
            if faults.failed_at(name, time_s):
                fallback = None
                for candidate in neighbor_names[name]:
                    if not faults.failed_at(candidate, time_s):
                        fallback = candidate
                        break
                if fallback is not None:
                    position = ring_index[fallback]
                    flag = FAILOVER_HANDOVER
                # No alive candidate: keep the failed cell — the shard drops
                # the request at arrival, exactly as the serial engine would.
            index = group[j]
            plan_cells[index] = position
            plan_flags[index] = flag
    return plan_cells, plan_flags
