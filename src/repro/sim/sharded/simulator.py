"""The sharded backend facade: partition, plan, drive, merge.

:class:`ShardedSimulator` implements the :class:`~repro.sim.backend.SimBackend`
surface by splitting the ring into contiguous cell segments
(:func:`~repro.sim.sharded.partition.partition_cells`), resolving every
request's serving cell in the deterministic mobility pre-pass
(:func:`~repro.sim.sharded.partition.plan_mobility`), and advancing one
:class:`~repro.sim.sharded.shard.ShardSimulator` per segment in lockstep
**conservative time windows**.  The default window is the minimum backhaul
fetch latency — the fastest any cross-shard effect (a cooperative fetch from
a remote cell) can propagate — so deferring cross-shard state to window
barriers never reorders anything that could have interacted sooner.

Two drivers execute the identical window loop:

``inline``
    Every shard lives in this process; windows advance round-robin.  Used
    for ``driver="auto"`` on single-core hosts, and by tests asserting
    driver-independence.

``process``
    One forked worker per shard, strict-lockstep message exchange through
    pipes each window.  The coordinator routes exactly the messages the
    inline driver routes, in the same order, so both drivers produce
    identical results — parallelism is purely a wall-clock knob, as
    everywhere else in this repo.

``num_shards=1`` delegates to the serial engine outright, making the
single-shard sharded backend **byte-identical** to ``backend="serial"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.runtime.parallel import available_cpus, _preferred_context
from repro.sim.invariants import InvariantViolation
from repro.sim.metrics import LatencyRecorder, SimulationReport
from repro.sim.multicell import (
    Cell,
    CellConfig,
    ModelSpec,
    PathCostCache,
    build_multicell_topology,
    order_neighbors,
)
from repro.sim.sharded.partition import (
    FaultTimelineView,
    partition_cells,
    plan_mobility,
)
from repro.sim.placement import PlacementSpec
from repro.sim.resilience import ResiliencePolicy
from repro.sim.sharded.shard import ShardSimulator, WindowMessage
from repro.sim.simulator import MultiCellSimulator, SimulatorConfig
from repro.utils.rng import SeedLike
from repro.workloads.traces import RequestTrace

#: Driver choices for :class:`ShardedConfig`.
DRIVERS = ("auto", "inline", "process")


@dataclass(frozen=True)
class ShardedConfig:
    """Execution knobs of the sharded backend.

    Attributes
    ----------
    num_shards:
        Worker count; clamped to the cell count.  ``1`` delegates to the
        serial engine (byte-identical results).
    window_s:
        Conservative window length; ``None`` derives the minimum backhaul
        fetch latency from the catalogue (smallest model over one backhaul
        hop).  The window is part of the sharded backend's semantics: golden
        tables pin results at the derived default.
    max_forward_hops:
        Cross-shard failover forwards a request carries before it is
        dropped; bounds pathological outage chains.
    driver:
        ``auto`` picks ``process`` on multi-core hosts, ``inline``
        otherwise; both produce identical results.
    worker_timeout_s:
        Liveness guard of the process driver: the longest the coordinator
        waits for any shard's reply to one window step (or finalize) before
        raising :class:`~repro.exceptions.SimulationError` naming the shard
        and window.  A worker that dies outright is detected immediately,
        without waiting out the timeout.  ``None`` disables the guard
        (blocking receives, the pre-guard behaviour).
    """

    num_shards: int = 2
    window_s: Optional[float] = None
    max_forward_hops: int = 4
    driver: str = "auto"
    worker_timeout_s: Optional[float] = 120.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {self.window_s}")
        if self.max_forward_hops < 1:
            raise ConfigurationError(
                f"max_forward_hops must be >= 1, got {self.max_forward_hops}"
            )
        if self.driver not in DRIVERS:
            raise ConfigurationError(f"driver must be one of {DRIVERS}, got {self.driver!r}")
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ConfigurationError(
                f"worker_timeout_s must be positive or None, got {self.worker_timeout_s}"
            )


class _ProcessDriverUnavailable(Exception):
    """Pool creation failed (sandboxed host); fall back to the inline driver.

    Deliberately narrow: only raised for *setup* failures, never for a worker
    that died or hung mid-replay — those are real errors the liveness guard
    must surface, not silently re-run inline.
    """


def _build_shard(payload: Dict[str, object]) -> ShardSimulator:
    """Construct one shard from its (picklable) payload dict."""
    return ShardSimulator(**payload)


def _shard_worker(pipe, payload: Dict[str, object]) -> None:
    """Process-driver worker: one shard, strict-lockstep window protocol."""
    try:
        shard = _build_shard(payload)
        while True:
            command = pipe.recv()
            if command[0] == "step":
                _, until, incoming = command
                shard.deliver(incoming)
                pipe.send(("ok", shard.advance_to(until)))
            elif command[0] == "finalize":
                pipe.send(("ok", shard.finalize()))
                break
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown shard command {command[0]!r}")
    except BaseException as error:  # pragma: no cover - forwarded to coordinator
        try:
            pipe.send(("error", repr(error)))
        except Exception:
            pass
        raise
    finally:
        pipe.close()


class ShardedSimulator:
    """Multi-core replay of the multi-cell deployment (SimBackend)."""

    backend_name = "sharded"

    def __init__(
        self,
        cells: Sequence[CellConfig],
        catalogue: Dict[str, ModelSpec],
        config: Optional[SimulatorConfig] = None,
        seed: SeedLike = None,
        sharded: Optional[ShardedConfig] = None,
    ) -> None:
        if not cells:
            raise ConfigurationError("at least one cell is required")
        if not catalogue:
            raise ConfigurationError("the model catalogue must not be empty")
        self.config = config or SimulatorConfig()
        self.sharded = sharded or ShardedConfig()
        self.catalogue = dict(catalogue)
        self._cell_configs = list(cells)
        self._seed = seed
        #: Inert per-cell state for pre-replay introspection; after a replay
        #: each cell's ``stats`` holds the merged per-cell counters.
        self.cells: Dict[str, Cell] = {
            cell_config.name: Cell(cell_config, self.config.batching) for cell_config in cells
        }
        if len(self.cells) != len(cells):
            raise ConfigurationError("cell names must be unique")
        self.topology = build_multicell_topology(
            list(self.cells), backhaul=self.config.backhaul, wan=self.config.wan
        )
        self.costs = PathCostCache(self.topology)
        order_neighbors(list(self.cells.values()), self.costs)
        self.on_request_end = None
        self._timeline: List[Tuple[float, Tuple[Tuple[str, tuple], ...], str]] = []
        self._report: Optional[SimulationReport] = None
        self._serial_delegate: Optional[MultiCellSimulator] = None
        self._replayed = False
        self._issued: Optional[int] = None
        self._resilience: Optional[ResiliencePolicy] = None
        self._resilience_seed = 0
        self._placement: Optional[PlacementSpec] = None
        #: Why the last replay left the sharded fast path (None = it didn't).
        self.fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Resilience
    # ------------------------------------------------------------------ #
    def configure_resilience(self, policy, seed: int = 0) -> None:
        """Install a :class:`~repro.sim.resilience.ResiliencePolicy` (or None).

        The policy is pure data: it is recorded here and shipped verbatim to
        every shard at replay time, so each shard applies the exact decision
        rules the serial engine would — the deterministic jitter hash keys on
        (seed, user, arrival, attempt), none of which depend on sharding.
        """
        if self._replayed:
            raise SimulationError(
                "the sharded backend needs its resilience policy before replay()"
            )
        if policy is not None and not isinstance(policy, ResiliencePolicy):
            policy = ResiliencePolicy.from_dict(dict(policy))
        if policy is not None and not policy.active:
            policy = None
        self._resilience = policy
        self._resilience_seed = int(seed)

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def configure_placement(self, spec) -> None:
        """Install a :class:`~repro.sim.placement.PlacementSpec` (or None).

        Placement policies route *globally* — every dispatch decision can
        consult every cell's queue and cache — which contradicts the window
        lockstep's shard-local views, so a placed replay falls back to the
        serial engine with a recorded :attr:`fallback_reason` (the same
        contract as the vectorized backend's blockers).
        """
        if self._replayed:
            raise SimulationError(
                "the sharded backend needs its placement policy before replay()"
            )
        if spec is not None and not isinstance(spec, PlacementSpec):
            spec = PlacementSpec.from_dict(dict(spec))
        self._placement = spec

    def placement_summary(self):
        """Placement counters of the last replay (from the serial delegate)."""
        if self._serial_delegate is None:
            return None
        return self._serial_delegate.placement_summary()

    # ------------------------------------------------------------------ #
    # Fault API (recorded, broadcast to every shard at replay time)
    # ------------------------------------------------------------------ #
    def schedule_calls(self, time_s: float, calls: Sequence[tuple], label: str = "") -> None:
        """Record ordered fault calls to fire at ``time_s`` in every shard.

        The sharded backend needs the complete fault timeline *before* the
        replay: the mobility pre-pass resolves outage re-homes from it, and
        every shard schedules it on its own engine so the global
        alive/failed view stays consistent without messaging.
        """
        if self._replayed:
            raise SimulationError(
                "the sharded backend needs its fault timeline before replay()"
            )
        self._timeline.append((float(time_s), tuple((m, tuple(a)) for m, a in calls), label))

    def _record(self, method: str, *args: object) -> None:
        self.schedule_calls(0.0, [(method, args)], label=f"direct:{method}")

    # Direct fault calls are recorded at t=0 (the sharded replay is one-shot;
    # mid-run mutation goes through schedule_calls timelines).
    def fail_cell(self, name: str) -> None:
        self._record("fail_cell", name)

    def recover_cell(self, name: str) -> None:
        self._record("recover_cell", name)

    def wipe_cell_cache(self, name: str) -> int:
        self._record("wipe_cell_cache", name)
        return 0

    def resize_cell_cache(self, name: str, capacity_bytes: int) -> None:
        self._record("resize_cell_cache", name, capacity_bytes)

    def degrade_downlink(self, name: str, factor: float) -> None:
        self._record("degrade_downlink", name, factor)

    def restore_downlink(self, name: str) -> None:
        self._record("restore_downlink", name)

    def set_handover_probability(self, probability: float) -> None:
        self._record("set_handover_probability", probability)

    def alive_cells(self) -> List[str]:
        """Cell names not failed at t=0 by the recorded timeline."""
        faults = FaultTimelineView(
            [(t, calls) for t, calls, _ in self._timeline],
            self.config.mobility.handover_probability,
        )
        return [name for name in self.cells if not faults.failed_at(name, 0.0)]

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def window_s(self) -> float:
        """The conservative window actually used (configured or derived)."""
        if self.sharded.window_s is not None:
            return self.sharded.window_s
        min_size = min(spec.size_bytes for spec in self.catalogue.values())
        derived = self.config.backhaul.transfer_time(min_size)
        return derived if derived > 0 else 0.01

    def replay(self, trace, run: bool = True) -> SimulationReport:
        """Partition, plan, and replay ``trace`` across the shards."""
        if not run:
            raise ConfigurationError("the sharded backend only supports replay(run=True)")
        if self._replayed:
            raise SimulationError("the sharded backend is one-shot; build a fresh instance")
        started = time.perf_counter()
        num_shards = min(self.sharded.num_shards, len(self.cells))
        if self._placement is not None:
            self.fallback_reason = (
                "placement policies route globally across cells; "
                "delegating to the serial engine"
            )
            return self._replay_serial(trace, started)
        if num_shards == 1:
            return self._replay_serial(trace, started)
        self._replayed = True
        hook = self.on_request_end
        if hook is not None and not (hasattr(hook, "clone_empty") and hasattr(hook, "merge")):
            raise ConfigurationError(
                "the sharded backend needs an on_request_end hook with "
                "clone_empty()/merge(other) (per-shard observation, deterministic merge)"
            )
        columns = self._extract_columns(trace)
        sorted_times, user_codes, user_labels, domain_codes, domain_names = columns
        self._issued = len(sorted_times)
        over_budget_ok = self._timeline_shrinks_cache()
        cell_names = list(self.cells)
        faults = FaultTimelineView(
            [(t, calls) for t, calls, _ in self._timeline],
            self.config.mobility.handover_probability,
        )
        neighbor_names = {
            name: [other.name for other in cell.neighbor_order]
            for name, cell in self.cells.items()
        }
        seed_root = int(self._seed) if self._seed is not None else 0
        plan_cells, plan_flags = plan_mobility(
            sorted_times,
            user_labels,
            user_codes,
            cell_names,
            seed_root,
            faults,
            neighbor_names,
        )
        segments = partition_cells(cell_names, num_shards)
        shard_of_cell = np.empty(len(cell_names), dtype=np.int64)
        for shard_index, segment in enumerate(segments):
            for name in segment:
                shard_of_cell[cell_names.index(name)] = shard_index
        request_shards = shard_of_cell[plan_cells]
        request_ids = np.arange(1, len(sorted_times) + 1, dtype=np.int64)
        payloads: List[Dict[str, object]] = []
        for shard_index, segment in enumerate(segments):
            mask = request_shards == shard_index
            payloads.append(
                dict(
                    cell_configs=self._cell_configs,
                    catalogue=self.catalogue,
                    config=self.config,
                    shard_index=shard_index,
                    owned=segment,
                    times=sorted_times[mask],
                    user_codes=user_codes[mask],
                    user_labels=user_labels,
                    domain_codes=domain_codes[mask],
                    domain_names=domain_names,
                    plan_cells=plan_cells[mask],
                    plan_flags=plan_flags[mask],
                    request_ids=request_ids[mask],
                    forward_id_base=(shard_index + 1) * 10**12,
                    timeline=self._timeline,
                    max_forward_hops=self.sharded.max_forward_hops,
                    on_request_end=None if hook is None else hook.clone_empty(),
                    audit_over_budget=over_budget_ok,
                    resilience=self._resilience,
                    resilience_seed=self._resilience_seed,
                )
            )
        window = self.window_s()
        driver = self.sharded.driver
        if driver == "auto":
            driver = "process" if available_cpus() > 1 else "inline"
        if driver == "process":
            try:
                results = self._drive_process(payloads, window)
            except _ProcessDriverUnavailable:
                # No usable multiprocessing primitives (sandboxes); the
                # inline driver produces identical results by construction.
                results = self._drive_inline(payloads, window)
        else:
            results = self._drive_inline(payloads, window)
        return self._merge(results, time.perf_counter() - started)

    def _timeline_shrinks_cache(self) -> bool:
        """Whether any scheduled resize lowers a cell's budget (fold order).

        A shrink below live pins legally leaves that cache over-full at
        quiescence, so the per-shard audit must tolerate it; without a shrink
        an over-budget cache is an invariant violation.
        """
        capacity = {name: cell.cache.capacity_bytes for name, cell in self.cells.items()}
        for _, calls, _ in sorted(self._timeline, key=lambda item: item[0]):
            for method, args in calls:
                if method == "resize_cell_cache":
                    name, new_capacity = args[0], int(args[1])
                    if new_capacity < capacity.get(name, 0):
                        return True
                    capacity[name] = new_capacity
        return False

    def _replay_serial(self, trace, started: float) -> SimulationReport:
        """``num_shards=1``: delegate to the serial engine, byte-identically."""
        self._replayed = True
        delegate = MultiCellSimulator(
            self._cell_configs, self.catalogue, config=self.config, seed=self._seed
        )
        delegate.on_request_end = self.on_request_end
        if self._resilience is not None:
            delegate.configure_resilience(self._resilience, seed=self._resilience_seed)
        if self._placement is not None:
            delegate.configure_placement(self._placement)
        for time_s, calls, label in self._timeline:
            delegate.schedule_calls(time_s, calls, label=label)
        report = delegate.replay(trace)
        self._serial_delegate = delegate
        self.cells = delegate.cells
        self._report = replace(report, wall_clock_s=time.perf_counter() - started)
        return self._report

    def _extract_columns(self, trace):
        """Sorted columnar view of any trace (arrays or objects)."""
        if isinstance(trace, RequestTrace) and trace.is_columnar:
            timestamps = np.asarray(trace.timestamps, dtype=np.float64)
            user_codes = np.asarray(trace.user_indices, dtype=np.int64)
            domain_codes = np.asarray(trace.domain_indices, dtype=np.int64)
            domain_names = list(trace.domain_names)
            max_user = int(user_codes.max()) + 1 if len(user_codes) else 0
            user_labels = [f"user_{index}" for index in range(max_user)]
        else:
            times_list: List[float] = []
            user_labels = []
            user_index: Dict[str, int] = {}
            domain_names = []
            domain_index: Dict[str, int] = {}
            user_code_list: List[int] = []
            domain_code_list: List[int] = []
            for item in trace:
                times_list.append(float(item.timestamp))
                code = user_index.setdefault(item.user_id, len(user_labels))
                if code == len(user_labels):
                    user_labels.append(item.user_id)
                user_code_list.append(code)
                dcode = domain_index.setdefault(item.domain, len(domain_names))
                if dcode == len(domain_names):
                    domain_names.append(item.domain)
                domain_code_list.append(dcode)
            timestamps = np.asarray(times_list, dtype=np.float64)
            user_codes = np.asarray(user_code_list, dtype=np.int64)
            domain_codes = np.asarray(domain_code_list, dtype=np.int64)
        for name in domain_names:
            if name not in self.catalogue:
                raise SimulationError(f"domain {name!r} is not in the model catalogue")
        if len(timestamps) > 1 and bool(np.any(timestamps[1:] < timestamps[:-1])):
            order = np.argsort(timestamps, kind="stable")
            timestamps = timestamps[order]
            user_codes = user_codes[order]
            domain_codes = domain_codes[order]
        return timestamps, user_codes, user_labels, domain_codes, domain_names

    # ------------------------------------------------------------------ #
    # Drivers (identical window loop, different execution substrate)
    # ------------------------------------------------------------------ #
    def _drive_inline(self, payloads: List[Dict[str, object]], window: float):
        shards = [_build_shard(payload) for payload in payloads]
        incoming: List[List[WindowMessage]] = [[] for _ in shards]
        until = window
        while True:
            outgoing: List[WindowMessage] = []
            for index, shard in enumerate(shards):
                shard.deliver(incoming[index])
                outgoing.append(shard.advance_to(until))
            if all(m.done for m in outgoing) and not any(m.forwards for m in outgoing):
                break
            incoming = self._route(outgoing, len(shards))
            until += window
        return [shard.finalize() for shard in shards]

    def _drive_process(self, payloads: List[Dict[str, object]], window: float):
        parents = []
        processes = []
        try:
            context = _preferred_context()
            for payload in payloads:
                parent, child = context.Pipe()
                process = context.Process(
                    target=_shard_worker, args=(child, payload), daemon=True
                )
                process.start()
                child.close()
                parents.append(parent)
                processes.append(process)
        except (ImportError, OSError, PermissionError) as error:
            for parent in parents:
                parent.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
            raise _ProcessDriverUnavailable(str(error)) from error
        try:
            incoming: List[List[WindowMessage]] = [[] for _ in payloads]
            until = window
            window_index = 1
            while True:
                for index, parent in enumerate(parents):
                    self._send(
                        parent, processes[index], index, window_index,
                        ("step", until, incoming[index]),
                    )
                outgoing = [
                    self._receive(parents[index], processes[index], index, window_index)
                    for index in range(len(parents))
                ]
                if all(m.done for m in outgoing) and not any(m.forwards for m in outgoing):
                    break
                incoming = self._route(outgoing, len(parents))
                until += window
                window_index += 1
            for index, parent in enumerate(parents):
                self._send(parent, processes[index], index, window_index, ("finalize",))
            return [
                self._receive(parents[index], processes[index], index, window_index)
                for index in range(len(parents))
            ]
        finally:
            for parent in parents:
                parent.close()
            for process in processes:
                # Short grace: healthy workers exit as soon as their pipe
                # closes; a hung one is terminated rather than waited out.
                process.join(timeout=2)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)

    @staticmethod
    def _send(parent, process, shard_index: int, window_index: int, message) -> None:
        try:
            parent.send(message)
        except (BrokenPipeError, OSError) as error:
            raise SimulationError(
                f"shard {shard_index} worker died before window {window_index} "
                f"(exit code {process.exitcode})"
            ) from error

    def _receive(self, parent, process, shard_index: int, window_index: int):
        """One guarded reply: bounded wait, dead-worker detection, error unwrap."""
        timeout = self.sharded.worker_timeout_s
        if timeout is not None:
            deadline = time.monotonic() + timeout
            while not parent.poll(0.05):
                if not process.is_alive() and not parent.poll(0):
                    raise SimulationError(
                        f"shard {shard_index} worker died mid-replay at window "
                        f"{window_index} (exit code {process.exitcode})"
                    )
                if time.monotonic() >= deadline:
                    raise SimulationError(
                        f"shard {shard_index} worker unresponsive for {timeout:g}s at "
                        f"window {window_index}; raise ShardedConfig.worker_timeout_s "
                        "if one window genuinely takes this long"
                    )
        try:
            status, value = parent.recv()
        except (EOFError, OSError) as error:
            raise SimulationError(
                f"shard {shard_index} worker died mid-replay at window {window_index} "
                f"(exit code {process.exitcode})"
            ) from error
        if status != "ok":
            raise SimulationError(
                f"shard {shard_index} worker failed at window {window_index}: {value}"
            )
        return value

    @staticmethod
    def _route(outgoing: List[WindowMessage], num_shards: int) -> List[List[WindowMessage]]:
        """Every shard receives every other shard's message, in shard order."""
        return [
            [message for message in outgoing if message.shard != index]
            for index in range(num_shards)
        ]

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def _merge(self, results, wall_clock_s: float) -> SimulationReport:
        results = sorted(results, key=lambda result: result.shard)
        latency = LatencyRecorder(reservoir_size=self.config.latency_reservoir)
        for result in results:
            latency.absorb(result.latency)
        stats_by_cell: Dict[str, object] = {}
        for result in results:
            stats_by_cell.update(result.cell_stats)
        cells = {name: stats_by_cell[name] for name in self.cells}
        for name, stats in cells.items():
            self.cells[name].stats = stats
        hook = self.on_request_end
        if hook is not None:
            for result in results:
                hook.merge(result.hook)
        completed = sum(result.completed for result in results)
        dropped = sum(stats.dropped for stats in cells.values())
        shed = sum(getattr(stats, "shed", 0) for stats in cells.values())
        deadline_exceeded = sum(
            getattr(stats, "deadline_exceeded", 0) for stats in cells.values()
        )
        terminal = completed + dropped + shed + deadline_exceeded
        if self._issued is not None and terminal != self._issued:
            # Merge-time conservation audit: every issued request terminates
            # exactly once globally (forward chains are hop-capped into a
            # drop; hedged twins share one logical terminal), so this holds
            # exactly — a miss means lost or duplicated work somewhere in the
            # window/barrier machinery.
            raise InvariantViolation(
                f"sharded merge broke request conservation: {self._issued} issued "
                f"but {completed} completed + {dropped} dropped + {shed} shed + "
                f"{deadline_exceeded} deadline_exceeded across {len(results)} shards"
            )
        self._report = SimulationReport(
            completed=completed,
            duration_s=max(result.last_completion for result in results),
            wall_clock_s=wall_clock_s,
            events_processed=sum(result.events_processed for result in results),
            latency=latency.summary(),
            cells=cells,
            total_compute_busy_s=sum(result.compute_busy_s for result in results),
            backhaul_bytes=sum(result.backhaul_bytes for result in results),
            cloud_bytes=sum(result.cloud_bytes for result in results),
            dropped=dropped,
            shed=shed,
            deadline_exceeded=deadline_exceeded,
        )
        return self._report

    def report(self, wall_clock_s: float) -> SimulationReport:
        """The last replay's report (a zeroed report before any replay)."""
        if self._report is not None:
            return self._report
        return SimulationReport(
            completed=0,
            duration_s=0.0,
            wall_clock_s=wall_clock_s,
            events_processed=0,
            latency=LatencyRecorder().summary(),
            cells={name: cell.stats for name, cell in self.cells.items()},
        )
