"""Discrete-event multi-cell edge simulation.

``repro.sim`` is the scaling substrate: a global event queue
(:mod:`repro.sim.engine`), a request lifecycle (:mod:`repro.sim.request`),
per-cell request batching (:mod:`repro.sim.batching`), and a multi-cell
deployment with user mobility and cooperative caching
(:mod:`repro.sim.multicell`) — orchestrated through the
:class:`~repro.sim.backend.SimBackend` API, whose reference implementation is
:class:`~repro.sim.simulator.MultiCellSimulator` (``serial``) and whose
multi-core implementation is
:class:`~repro.sim.sharded.ShardedSimulator` (``sharded``).
"""

from repro.sim.backend import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    SimBackend,
    available_backends,
    create_backend,
    register_backend,
    resolve_backend_name,
)
from repro.sim.engine import EventAction, EventRecord, Simulation
from repro.sim.batching import Batch, BatchAccumulator, BatchingConfig, batch_flops
from repro.sim.metrics import CellStats, LatencyRecorder, SimulationReport
from repro.sim.multicell import (
    CLOUD,
    Cell,
    CellConfig,
    MobilityConfig,
    MobilityModel,
    ModelSpec,
    PathCostCache,
    build_multicell_topology,
    default_catalogue,
    order_neighbors,
)
from repro.sim.invariants import (
    FaultEndState,
    InvariantChecker,
    InvariantViolation,
    audit_fault_state,
    audit_simulator,
    expected_fault_state,
)
from repro.sim.request import (
    CACHE_OUTCOMES,
    CLOUD_FETCH,
    COALESCED,
    DEADLINE_EXCEEDED,
    LOCAL_HIT,
    NEIGHBOR_FETCH,
    SHED,
    TERMINAL_STATUSES,
    Request,
)
from repro.sim.resilience import CircuitBreaker, ResiliencePolicy, jitter_fraction
from repro.sim.sharded import ShardedConfig, ShardedSimulator
from repro.sim.simulator import MultiCellSimulator, SimulatorConfig

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "SimBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "resolve_backend_name",
    "Simulation",
    "EventAction",
    "EventRecord",
    "Batch",
    "BatchAccumulator",
    "BatchingConfig",
    "batch_flops",
    "LatencyRecorder",
    "CellStats",
    "SimulationReport",
    "CLOUD",
    "Cell",
    "CellConfig",
    "MobilityConfig",
    "MobilityModel",
    "ModelSpec",
    "PathCostCache",
    "build_multicell_topology",
    "default_catalogue",
    "order_neighbors",
    "Request",
    "CACHE_OUTCOMES",
    "LOCAL_HIT",
    "NEIGHBOR_FETCH",
    "CLOUD_FETCH",
    "COALESCED",
    "SHED",
    "DEADLINE_EXCEEDED",
    "TERMINAL_STATUSES",
    "CircuitBreaker",
    "ResiliencePolicy",
    "jitter_fraction",
    "MultiCellSimulator",
    "SimulatorConfig",
    "ShardedConfig",
    "ShardedSimulator",
    "FaultEndState",
    "InvariantChecker",
    "InvariantViolation",
    "audit_simulator",
    "audit_fault_state",
    "expected_fault_state",
]
