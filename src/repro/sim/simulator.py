"""The multi-cell discrete-event request simulator.

Drives the existing edge substrate — :class:`~repro.edge.server.EdgeServer`
compute accounting, :class:`~repro.caching.cache.SemanticModelCache` model
caching, :class:`~repro.edge.network.LinkSpec` transfer costs — as pluggable
service stages behind a single global event queue, instead of the synchronous
per-call execution the small E7/E8 sweeps use.  One process replays hundreds
of thousands of requests.

Request lifecycle (see :mod:`repro.sim.request`):

1. **Arrival** — the mobility model resolves the serving cell; a handover
   charges a control-plane delay before the request is processed.
2. **Cache lookup** — hit: straight to the batch queue.  Miss: if a fetch for
   the same model is already in flight at this cell the request *coalesces*
   onto it; otherwise the cell fetches the model from the nearest neighbour
   cell holding it (backhaul transfer, source entry pinned against eviction
   for the duration) or, failing that, from the cloud (WAN transfer plus the
   model's rebuild cost).
3. **Batching** — requests accumulate per cell until the batch-size or
   batch-timeout boundary closes the batch (:mod:`repro.sim.batching`).
4. **Encode + transmit** — the batch runs on the cell's edge server with
   amortized FLOPs, then each request's semantic features cross the downlink.
5. **Completion** — latency is recorded, per-cell counters updated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.caching.entry import CacheEntry, GENERAL_MODEL, general_model_key
from repro.edge.network import LinkSpec
from repro.edge.resources import encode_flops
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.batching import Batch, BatchingConfig
from repro.sim.engine import Simulation
from repro.sim.metrics import LatencyRecorder, SimulationReport
from repro.sim.multicell import (
    CLOUD,
    DEFAULT_BACKHAUL,
    DEFAULT_WAN,
    Cell,
    CellConfig,
    MobilityConfig,
    MobilityModel,
    ModelSpec,
    PathCostCache,
    build_multicell_topology,
    default_catalogue,
    order_neighbors,
)
from repro.sim.request import (
    CLOUD_FETCH,
    COALESCED,
    COMPLETED,
    DEADLINE_EXCEEDED,
    DROPPED,
    FETCHING,
    FORWARDED,
    LOCAL_HIT,
    NEIGHBOR_FETCH,
    QUEUED,
    SHED,
    TERMINAL_STATUSES,
    Request,
)
from repro.sim.placement import PlacementRuntime, PlacementSpec
from repro.sim.resilience import CircuitBreaker, ResiliencePolicy
from repro.utils.rng import SeedLike
from repro.workloads.traces import RequestTrace


@dataclass(frozen=True)
class SimulatorConfig:
    """Cross-cell knobs of the simulator."""

    batching: BatchingConfig = field(default_factory=BatchingConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    backhaul: LinkSpec = DEFAULT_BACKHAUL
    wan: LinkSpec = DEFAULT_WAN
    #: Semantic feature payload sent back over the downlink per request.
    feature_bytes: float = 48.0
    #: Message length assumed for the encode FLOP cost.
    num_tokens: int = 12
    #: Keep per-event records (slow; only useful for debugging small runs).
    trace_events: bool = False
    #: Latency samples kept in memory; percentiles are exact up to this count
    #: and reservoir-sampled beyond it (see :class:`~repro.sim.metrics.LatencyRecorder`).
    latency_reservoir: int = 100_000
    #: Keep every :class:`~repro.sim.request.Request` on ``simulator.requests``
    #: after completion.  Required for post-run per-request analysis; turn off
    #: for multi-million-request replays so memory stays flat (reports are
    #: unaffected — they are built from incremental counters).
    retain_requests: bool = True

    def __post_init__(self) -> None:
        if self.feature_bytes < 0:
            raise ConfigurationError(f"feature_bytes must be non-negative, got {self.feature_bytes}")
        if self.num_tokens < 1:
            raise ConfigurationError(f"num_tokens must be >= 1, got {self.num_tokens}")
        if self.latency_reservoir < 1:
            raise ConfigurationError(f"latency_reservoir must be >= 1, got {self.latency_reservoir}")


class MultiCellSimulator:
    """Replays request traces through a multi-cell edge deployment.

    This is the **serial reference backend** of the :class:`~repro.sim.backend.
    SimBackend` API: one process, one event heap, bit-identity pinned by every
    committed result table.  Other backends (``repro.sim.sharded``) implement
    the same surface — replay, fault injection, the ``on_request_end`` hook,
    report assembly — with their own execution strategy.
    """

    #: Registry name of this backend (see :mod:`repro.sim.backend`).
    backend_name = "serial"

    def __init__(
        self,
        cells: Sequence[CellConfig],
        catalogue: Dict[str, ModelSpec],
        config: Optional[SimulatorConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        if not cells:
            raise ConfigurationError("at least one cell is required")
        if not catalogue:
            raise ConfigurationError("the model catalogue must not be empty")
        self.config = config or SimulatorConfig()
        self.catalogue = dict(catalogue)
        self.cells: Dict[str, Cell] = {
            cell_config.name: Cell(cell_config, self.config.batching) for cell_config in cells
        }
        if len(self.cells) != len(cells):
            raise ConfigurationError("cell names must be unique")
        self.topology = build_multicell_topology(
            list(self.cells), backhaul=self.config.backhaul, wan=self.config.wan
        )
        self.costs = PathCostCache(self.topology)
        order_neighbors(list(self.cells.values()), self.costs)
        self.mobility = MobilityModel(list(self.cells), self.config.mobility, seed=seed)
        self.engine = Simulation(trace=self.config.trace_events)
        self.latency = LatencyRecorder(reservoir_size=self.config.latency_reservoir)
        self.requests: List[Request] = []
        self.backhaul_bytes = 0.0
        self.cloud_bytes = 0.0
        self._request_counter = 0
        #: Requests replayed lazily by run() via the engine's stream merge.
        self._arrival_stream: List[Request] = []
        # Completion counters maintained incrementally so report() does not
        # rescan every request (events complete in time order, so the last
        # completion timestamp is the run duration).
        self._completed_total = 0
        self._last_completion = 0.0
        # Per-domain constants resolved once instead of per request: the cache
        # key, the encode FLOP cost at the configured token count, and the spec.
        self._domain_info: Dict[str, tuple[str, float, ModelSpec]] = {
            domain: (
                general_model_key(domain),
                encode_flops(spec.parameters, self.config.num_tokens),
                spec,
            )
            for domain, spec in self.catalogue.items()
        }
        # Downlink transmit time of one feature payload is constant per cell
        # (until a link-degradation fault scales it; the baseline is kept so
        # restore_downlink is exact, not a division).
        self._downlink_time: Dict[str, float] = {
            name: cell.downlink.transfer_time(self.config.feature_bytes)
            for name, cell in self.cells.items()
        }
        self._downlink_base: Dict[str, float] = dict(self._downlink_time)
        #: Optional observer called once per request at its terminal event
        #: (completion or drop).  Scenario measurement windows hang off this;
        #: ``None`` (the default) costs one predicate per completion.
        self.on_request_end: Optional[Callable[[Request], None]] = None
        # Resilience state (see configure_resilience).  ``None`` policy means
        # every resilience hook below is a single dead predicate — the
        # no-policy replay stays byte-identical to the pre-resilience engine.
        self._resilience: Optional[ResiliencePolicy] = None
        self._resilience_seed = 0
        #: Outstanding admitted requests per cell (load-shedding accounting).
        self._outstanding: Dict[str, int] = {}
        #: Per-cell circuit breakers, created lazily when the policy uses them.
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: Hedge pair state per logical request id: ``[resolved, pending]``.
        self._hedge_pairs: Dict[int, List] = {}
        # Placement state (see configure_placement).  ``None`` means every
        # placement hook below is a single dead predicate — the no-placement
        # replay stays byte-identical to the pre-placement engine.
        self._placement: Optional[PlacementRuntime] = None

    # ------------------------------------------------------------------ #
    # Resilience
    # ------------------------------------------------------------------ #
    def configure_resilience(
        self, policy: Optional[ResiliencePolicy | dict], seed: int = 0
    ) -> None:
        """Install (or clear) the request-level resilience policy.

        ``policy`` may be a :class:`~repro.sim.resilience.ResiliencePolicy`,
        an equivalent dict, or ``None``; a policy with every mechanism off is
        normalized to ``None`` so the hot path keeps its single dead
        predicate.  ``seed`` keys the deterministic backoff jitter — both
        backends must pass the same value (the scenario runner derives it
        from the spec's SeedTree) for identical retry timing.  Call before
        :meth:`replay`; the policy applies to every subsequently processed
        request.
        """
        if policy is not None and not isinstance(policy, ResiliencePolicy):
            policy = ResiliencePolicy.from_dict(policy)
        if policy is not None and not policy.active:
            policy = None
        if policy is not None and self._placement is not None:
            raise ConfigurationError(
                "resilience and placement policies are mutually exclusive; "
                "clear one before configuring the other"
            )
        self._resilience = policy
        self._resilience_seed = int(seed)
        self._outstanding = {name: 0 for name in self.cells}
        self._breakers = {}
        self._hedge_pairs = {}

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def configure_placement(
        self, spec: Optional[PlacementSpec | dict]
    ) -> None:
        """Install (or clear) the global request-placement policy.

        ``spec`` may be a :class:`~repro.sim.placement.PlacementSpec`, an
        equivalent dict, or ``None``.  Placement and resilience are mutually
        exclusive in this engine (global routing and per-request hedging/
        retry re-homing would fight over the same requests); configuring one
        while the other is active raises.  Call before :meth:`replay` — the
        runtime estimates demand (and applies the offline prewarm plan) from
        the replayed trace.
        """
        if spec is not None and not isinstance(spec, PlacementSpec):
            spec = PlacementSpec.from_dict(spec)
        if spec is not None and self._resilience is not None:
            raise ConfigurationError(
                "resilience and placement policies are mutually exclusive; "
                "clear one before configuring the other"
            )
        self._placement = PlacementRuntime(spec) if spec is not None else None

    def placement_summary(self) -> Optional[Dict[str, int]]:
        """Placement counters of the last replay, or ``None`` when unplaced."""
        if self._placement is None:
            return None
        return self._placement.summary()

    def _breaker(self, cell: Cell) -> CircuitBreaker:
        breaker = self._breakers.get(cell.name)
        if breaker is None:
            breaker = CircuitBreaker(self._resilience)
            self._breakers[cell.name] = breaker
        return breaker

    def _breaker_open(self, cell: Cell) -> bool:
        """Whether routing to ``cell`` is currently rejected by its breaker.

        A half-open breaker admits a bounded number of probes; the probe slot
        is consumed here, so callers must only ask about cells they will
        actually route to when admitted.
        """
        if self._resilience.breaker_window <= 0:
            return False
        breaker = self._breaker(cell)
        allowed = breaker.allows(self.engine.now)
        cell.stats.breaker_transitions = breaker.transitions
        return not allowed

    def _breaker_record(self, cell: Cell, ok: bool) -> None:
        policy = self._resilience
        if policy is None or policy.breaker_window <= 0:
            return
        breaker = self._breaker(cell)
        breaker.record(ok, self.engine.now)
        cell.stats.breaker_transitions = breaker.transitions

    def _admit(self, request: Request, cell: Cell) -> bool:
        """Move ``request`` onto ``cell``'s outstanding queue, shedding at the cap.

        Re-homed requests (failover, retry) release their previous cell's
        slot first, so the counters track where work actually sits.
        """
        outstanding = self._outstanding
        prev = request.admitted_cell
        if prev == cell.name:
            return True
        if prev:
            outstanding[prev] -= 1
            request.admitted_cell = ""
        depth = self._resilience.shed_queue_depth
        if depth is not None and outstanding[cell.name] >= depth:
            self._finish_failure(request, cell, SHED)
            return False
        outstanding[cell.name] += 1
        request.admitted_cell = cell.name
        return True

    def _unadmit(self, request: Request) -> None:
        prev = request.admitted_cell
        if prev:
            self._outstanding[prev] -= 1
            request.admitted_cell = ""

    def _finish_failure(self, request: Request, cell: Cell, status: str) -> None:
        """Terminate one physical request attempt with a failure status.

        Hedge-aware: while the request's twin is still in flight the logical
        request may yet succeed, so this half is suppressed (no terminal
        event, no counters) — only the last unresolved half emits the
        failure.  Exactly one terminal per logical request id, always.

        Shedding does **not** feed the circuit breaker: a full admission
        queue is back-pressure the policy itself created, not evidence the
        cell is unhealthy — counting it would let overload trip breakers,
        re-home the whole load onto the next cell, and cascade every
        breaker open in turn.
        """
        if status != SHED:
            self._breaker_record(cell, False)
        pair = self._hedge_pairs.get(request.request_id)
        if pair is not None:
            pair[1] -= 1
            if pair[0] or pair[1] > 0:
                self._unadmit(request)
                if pair[1] <= 0:
                    del self._hedge_pairs[request.request_id]
                return
            pair[0] = True
            del self._hedge_pairs[request.request_id]
        self._unadmit(request)
        request.status = status
        if status == DROPPED:
            cell.stats.dropped += 1
        elif status == SHED:
            cell.stats.shed += 1
        else:
            cell.stats.deadline_exceeded += 1
        hook = self.on_request_end
        if hook is not None:
            hook(request)

    def _drop_or_retry(self, request: Request, from_cell: Cell) -> None:
        """No route was found for ``request``: drop it, or schedule a retry.

        Retries re-fire after exponential backoff with hash-derived jitter
        (zero RNG consumption; see :func:`repro.sim.resilience.jitter_fraction`)
        and re-home via the normal failover scan.  Hedge twins never retry —
        their primary carries the retry budget.
        """
        policy = self._resilience
        if request.is_hedge or request.attempts >= policy.max_retries:
            self._finish_failure(request, from_cell, DROPPED)
            return
        attempt = request.attempts
        request.attempts = attempt + 1
        from_cell.stats.retries += 1
        self._unadmit(request)
        delay = policy.backoff_s(
            attempt, self._resilience_seed, request.user_id, request.arrival_time
        )
        self.engine.post(delay, lambda sim, r=request: self._retry(r))

    def _retry(self, request: Request) -> None:
        policy = self._resilience
        cell = self.cells[request.cell]
        if (
            policy.deadline_s is not None
            and self.engine.now - request.arrival_time >= policy.deadline_s
        ):
            self._finish_failure(request, cell, DEADLINE_EXCEEDED)
            return
        # The cell that refused us may have recovered during the backoff;
        # otherwise scan for the next-nearest alive, breaker-closed cell.
        if not cell.failed and not self._breaker_open(cell):
            self._lookup(request, cell)
            return
        self._failover(request, cell)

    def _hedge_candidates(self, cell: Cell) -> Sequence[Cell]:
        """Cells eligible as hedge targets, nearest first (overridable)."""
        return cell.neighbor_order

    def _maybe_hedge(self, request: Request) -> None:
        """Hedge timer: launch a duplicate if the request is still unfinished."""
        status = request.status
        if status in TERMINAL_STATUSES or status == FORWARDED:
            return
        if request.request_id in self._hedge_pairs:
            return
        cell = self.cells.get(request.cell)
        if cell is None:
            return
        target: Optional[Cell] = None
        for neighbor in self._hedge_candidates(cell):
            if (
                neighbor.name != request.cell
                and not neighbor.failed
                and not self._breaker_open(neighbor)
            ):
                target = neighbor
                break
        if target is None:
            return
        twin = Request(
            request.request_id,
            request.user_id,
            request.domain,
            request.model_key,
            request.arrival_time,
            request.num_tokens,
        )
        twin.is_hedge = True
        twin.cell = target.name
        self._hedge_pairs[request.request_id] = [False, 2]
        target.stats.hedges += 1
        self._lookup(twin, target)

    def _complete_resilient(self, cell: Cell, requests: List[Request]) -> None:
        """Completion under a policy: first hedge half wins, losers de-count."""
        now = self.engine.now
        record = self.latency.record
        hook = self.on_request_end
        pairs = self._hedge_pairs
        completed_count = 0
        for request in requests:
            self._breaker_record(cell, True)
            pair = pairs.get(request.request_id)
            if pair is not None:
                pair[1] -= 1
                if pair[0]:
                    # The twin already won: this physical finish is the
                    # cancelled loser — de-count it entirely.
                    self._unadmit(request)
                    if pair[1] <= 0:
                        del pairs[request.request_id]
                    continue
                pair[0] = True
                if pair[1] <= 0:
                    del pairs[request.request_id]
                if request.is_hedge:
                    cell.stats.hedge_wins += 1
            self._unadmit(request)
            request.completion_time = now
            request.status = COMPLETED
            record(now - request.arrival_time)
            if hook is not None:
                hook(request)
            completed_count += 1
        if completed_count:
            cell.stats.completed += completed_count
            self._completed_total += completed_count
            self._last_completion = now

    # ------------------------------------------------------------------ #
    # Trace replay
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        num_cells: int,
        domain_names: Sequence[str],
        config: Optional[SimulatorConfig] = None,
        seed: SeedLike = None,
        **cell_kwargs: object,
    ) -> "MultiCellSimulator":
        """Convenience constructor: ``num_cells`` identical cells, default catalogue."""
        if num_cells < 1:
            raise ConfigurationError(f"num_cells must be >= 1, got {num_cells}")
        cell_configs = [CellConfig(name=f"cell_{index}", **cell_kwargs) for index in range(num_cells)]
        catalogue = default_catalogue(domain_names, seed=seed)
        return cls(cell_configs, catalogue, config=config, seed=seed)

    def _make_request(self, timestamp: float, user_id: str, domain: str) -> Request:
        info = self._domain_info.get(domain)
        if info is None:
            raise SimulationError(f"domain {domain!r} is not in the model catalogue")
        self._request_counter += 1
        request = Request(
            request_id=self._request_counter,
            user_id=user_id,
            domain=domain,
            model_key=info[0],
            arrival_time=timestamp,
            num_tokens=self.config.num_tokens,
        )
        if self.config.retain_requests:
            self.requests.append(request)
        return request

    def submit(self, timestamp: float, user_id: str, domain: str) -> Request:
        """Schedule one request's arrival (before or during :meth:`run`)."""
        request = self._make_request(timestamp, user_id, domain)
        self.engine.schedule_at(timestamp, lambda sim, r=request: self._on_arrival(r))
        return request

    def replay(self, trace: RequestTrace | Iterable, run: bool = True) -> SimulationReport:
        """Schedule every trace request and (by default) run to completion.

        Arrivals are *not* pre-scheduled on the event heap: ``run()`` merges
        the time-sorted request stream into the engine's pop loop
        (:meth:`~repro.sim.engine.Simulation.run_stream`), so the heap only
        ever holds the genuinely concurrent work (in-flight fetches, batch
        timers, completions) instead of 50k pending arrivals.  Processing
        order is identical to eager scheduling.  With ``run=False`` the
        arrivals are eagerly scheduled on the event queue instead so a later
        plain ``engine.run()`` still sees them.

        A columnar :class:`~repro.workloads.traces.RequestTrace` takes the
        array fast path: :class:`~repro.sim.request.Request` objects are
        materialized lazily inside the stream merge, one per arrival, instead
        of all up front — replaying millions of requests never holds more
        request objects than are concurrently in flight (unless
        ``retain_requests`` keeps them).  Results are bit-identical to the
        object path.
        """
        if self._placement is not None:
            # Demand estimation + offline prewarm happen before the first
            # arrival; the runtime is idempotent so chained replays keep the
            # first trace's plan.
            self._placement.prepare(self, trace if isinstance(trace, RequestTrace) else None)
        if (
            run
            and not self._arrival_stream
            and isinstance(trace, RequestTrace)
            and trace.is_columnar
        ):
            return self._replay_columnar(trace)
        domain_info = self._domain_info
        num_tokens = self.config.num_tokens
        counter = self._request_counter
        pending: List[Request] = []
        for trace_request in trace:
            domain = trace_request.domain
            info = domain_info.get(domain)
            if info is None:
                raise SimulationError(f"domain {domain!r} is not in the model catalogue")
            counter += 1
            # Positional construction: measurably cheaper than keyword calls
            # at 50k+ requests (field order is part of Request's contract).
            pending.append(
                Request(
                    counter,
                    trace_request.user_id,
                    domain,
                    info[0],
                    trace_request.timestamp,
                    num_tokens,
                )
            )
        self._request_counter = counter
        if self.config.retain_requests:
            self.requests.extend(pending)
        if pending:
            if run:
                self._arrival_stream.extend(pending)
                # Stable sort: equal-time arrivals keep trace order.
                self._arrival_stream.sort(key=lambda request: request.arrival_time)
            else:
                # Without an immediate run the arrivals must live on the event
                # queue so a later engine.run() still sees them.  Schedule
                # them eagerly in trace order — this cold path trades the
                # small-heap optimization for exactly the original eager
                # sequence-number semantics (tied timestamps included).
                for request in pending:
                    self.engine.schedule_at(
                        request.arrival_time, lambda sim, r=request: self._on_arrival(r)
                    )
        if run:
            return self.run()
        return self.report(wall_clock_s=0.0)

    def _replay_columnar(self, trace: RequestTrace) -> SimulationReport:
        """Array fast path of :meth:`replay`: lazy per-arrival materialization.

        Request ids are assigned by *trace position* (as the object path does
        before sorting), and the stable sort keeps tied timestamps in trace
        order, so every value any event handler observes is identical to the
        object-based replay.
        """
        timestamps = trace.timestamps
        user_indices = trace.user_indices
        domain_indices = trace.domain_indices
        domain_names = trace.domain_names
        keys: List[str] = []
        for name in domain_names:
            info = self._domain_info.get(name)
            if info is None:
                raise SimulationError(f"domain {name!r} is not in the model catalogue")
            keys.append(info[0])
        num_requests = len(timestamps)
        started = time.perf_counter()
        if num_requests == 0:
            self.engine.run()
            return self.report(wall_clock_s=time.perf_counter() - started)
        if np.any(timestamps[1:] < timestamps[:-1]):
            order = np.argsort(timestamps, kind="stable")
            sorted_times = timestamps[order]
        else:
            order = None
            sorted_times = timestamps
        base = self._request_counter
        self._request_counter = base + num_requests
        num_tokens = self.config.num_tokens
        retain = self.config.retain_requests
        requests_list = self.requests
        arrive = self._on_arrival
        # Per-request string formatting hoisted out of the event loop: the
        # label tables are num_users/num_domains entries, not num_requests.
        user_labels = [f"user_{index}" for index in range(int(user_indices.max()) + 1)]
        delivered = 0

        def on_stream_item(sim: Simulation, index: int) -> None:
            nonlocal delivered
            # Delivered before processing, matching the object stream path.
            delivered = index + 1
            position = index if order is None else int(order[index])
            domain_index = domain_indices[position]
            # sim.now is exactly float(sorted_times[index]) — the engine set
            # the clock to this arrival before invoking the callback.
            request = Request(
                base + position + 1,
                user_labels[user_indices[position]],
                domain_names[domain_index],
                keys[domain_index],
                sim.now,
                num_tokens,
            )
            if retain:
                requests_list.append(request)
            arrive(request)

        try:
            self.engine.run_stream(sorted_times, on_stream_item, presorted=True)
        except BaseException:
            # Materialize the undelivered tail so a retry after a mid-replay
            # exception continues where the run stopped (same contract as the
            # object path).
            tail: List[Request] = []
            for index in range(delivered, num_requests):
                position = index if order is None else int(order[index])
                domain_index = domain_indices[position]
                tail.append(
                    Request(
                        base + position + 1,
                        user_labels[user_indices[position]],
                        domain_names[domain_index],
                        keys[domain_index],
                        float(timestamps[position]),
                        num_tokens,
                    )
                )
            self._arrival_stream = tail
            raise
        return self.report(wall_clock_s=time.perf_counter() - started)

    def run(self) -> SimulationReport:
        """Process all scheduled events and return the run's report."""
        started = time.perf_counter()
        stream = self._arrival_stream
        if stream:
            self._arrival_stream = []
            arrive = self._on_arrival
            delivered = 0

            def on_stream_item(sim: Simulation, index: int) -> None:
                nonlocal delivered
                # Marked delivered before processing: an arrival whose own
                # handling raises is consumed either way (matching the heap
                # path, where the popped event is gone after an exception).
                delivered = index + 1
                arrive(stream[index])

            try:
                self.engine.run_stream([request.arrival_time for request in stream], on_stream_item)
            except BaseException:
                # Keep the undelivered tail so a retry after a mid-replay
                # exception continues where the run stopped instead of
                # silently simulating only the delivered prefix.
                self._arrival_stream = stream[delivered:]
                raise
        else:
            self.engine.run()
        return self.report(wall_clock_s=time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Lifecycle stages
    # ------------------------------------------------------------------ #
    def _on_arrival(self, request: Request) -> None:
        cell_name, moved = self.mobility.resolve(request.user_id)
        cell = self.cells[cell_name]
        request.cell = cell_name
        if self._resilience is not None:
            self._on_arrival_resilient(request, cell, moved)
            return
        if self._placement is not None:
            self._on_arrival_placed(request, cell, moved)
            return
        if cell.failed:
            # The serving cell is down: hand the user over to the nearest
            # alive neighbour (this also re-homes the user for later arrivals).
            self._failover(request, cell)
            return
        if moved is not None:
            request.handover = True
            cell.stats.handovers_in += 1
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=cell: self._lookup(r, c))
                return
        self._lookup(request, cell)

    def _on_arrival_placed(self, request: Request, cell: Cell, moved) -> None:
        """Arrival under a placement policy: route, forward, then look up.

        Routing happens *after* ``mobility.resolve`` and consumes no RNG, so
        a ``naive`` placement replay is metric-identical to no placement at
        all.  Serving a request away from its serving cell charges the
        backhaul for the request payload (``forward_bytes``) on top of any
        mobility handover delay; the response downlink is billed at the
        executing cell as usual.
        """
        placement = self._placement
        if not placement.prepared:
            # submit()/run() path without a replay(): no trace to estimate
            # demand from, prepare with live state only.
            placement.prepare(self, None)
        if cell.failed:
            self._failover(request, cell)
            return
        target = placement.route(self, request, cell)
        delay = 0.0
        if moved is not None:
            request.handover = True
            cell.stats.handovers_in += 1
            delay = self.config.mobility.handover_delay_s
        if target is not cell:
            request.cell = target.name
            placement.forwards += 1
            forward_bytes = placement.spec.forward_bytes
            if forward_bytes > 0:
                delay += self.costs.transfer_time(cell.name, target.name, forward_bytes)
                self.backhaul_bytes += forward_bytes
        placement.admit(request, target.name)
        if delay > 0:
            self.engine.post(delay, lambda sim, r=request, c=target: self._lookup(r, c))
            return
        self._lookup(request, target)

    def _on_arrival_resilient(self, request: Request, cell: Cell, moved) -> None:
        """Arrival under a policy: hedge timer, breaker-aware routing."""
        policy = self._resilience
        if policy.hedge_delay_s is not None:
            self.engine.post(
                policy.hedge_delay_s, lambda sim, r=request: self._maybe_hedge(r)
            )
        if cell.failed or self._breaker_open(cell):
            self._failover(request, cell)
            return
        if moved is not None:
            request.handover = True
            cell.stats.handovers_in += 1
            delay = self.config.mobility.handover_delay_s
            if delay > 0:
                self.engine.post(delay, lambda sim, r=request, c=cell: self._lookup(r, c))
                return
        self._lookup(request, cell)

    def _failover(self, request: Request, from_cell: Cell) -> None:
        """Re-home ``request`` from a failed cell to its nearest alive neighbour.

        Fallback candidates are the failed cell's backhaul-reachable neighbours
        in increasing transfer-cost order (the cooperative-fetch ordering).  If
        every one of them is down too the request is dropped — the only way a
        request ever terminates unserved.  A failure handover charges the same
        control-plane delay as a mobility handover.

        Under a resilience policy the scan additionally skips breaker-open
        cells, a dead end becomes a retry decision instead of an immediate
        drop, and hedge twins never re-home the user's mobility placement
        (the primary owns it).
        """
        if self._resilience is not None:
            self._failover_resilient(request, from_cell)
            return
        fallback: Optional[Cell] = None
        for neighbor in from_cell.neighbor_order:
            if not neighbor.failed:
                fallback = neighbor
                break
        if fallback is None:
            request.status = DROPPED
            from_cell.stats.dropped += 1
            if self._placement is not None:
                self._placement.release(request)
            hook = self.on_request_end
            if hook is not None:
                hook(request)
            return
        request.handover = True
        request.cell = fallback.name
        fallback.stats.handovers_in += 1
        fallback.stats.failovers += 1
        if self._placement is not None:
            self._placement.rehome(request, fallback.name)
        self.mobility.place(request.user_id, fallback.name)
        delay = self.config.mobility.handover_delay_s
        if delay > 0:
            self.engine.post(delay, lambda sim, r=request, c=fallback: self._lookup(r, c))
        else:
            self._lookup(request, fallback)

    def _failover_resilient(self, request: Request, from_cell: Cell) -> None:
        fallback: Optional[Cell] = None
        for neighbor in from_cell.neighbor_order:
            if not neighbor.failed and not self._breaker_open(neighbor):
                fallback = neighbor
                break
        if fallback is None:
            self._drop_or_retry(request, from_cell)
            return
        request.handover = True
        request.cell = fallback.name
        fallback.stats.handovers_in += 1
        fallback.stats.failovers += 1
        if not request.is_hedge:
            self.mobility.place(request.user_id, fallback.name)
        delay = self.config.mobility.handover_delay_s
        if delay > 0:
            self.engine.post(delay, lambda sim, r=request, c=fallback: self._lookup(r, c))
        else:
            self._lookup(request, fallback)

    def _lookup(self, request: Request, cell: Cell) -> None:
        if cell.failed:
            # The cell went down while this request was in a handover delay
            # (or mid-failover chain); keep falling over until an alive cell
            # answers or every candidate is gone.
            self._failover(request, cell)
            return
        if self._resilience is not None and not self._admit(request, cell):
            return  # shed at admission; _admit emitted the terminal
        now = self.engine.now
        request.lookup_time = now
        key = request.model_key
        entry = cell.cache.get(key, now=now)
        if entry is not None:
            cell.stats.hits += 1
            request.cache_outcome = LOCAL_HIT
            self._enqueue(request, cell)
            return
        waiters = cell.inflight.get(key)
        if waiters is not None:
            # A fetch for this model is already in flight; ride along.
            cell.stats.coalesced += 1
            request.cache_outcome = COALESCED
            request.status = FETCHING
            waiters.append(request)
            return
        request.status = FETCHING
        cell.inflight[key] = [request]
        spec = self._domain_info[request.domain][2]
        self._begin_fetch(request, cell, key, spec)

    def _begin_fetch(self, request: Request, cell: Cell, key: str, spec: ModelSpec) -> None:
        """Start the model fetch for a fresh miss (waiters already registered).

        Extracted from :meth:`_lookup` so backends with a wider notion of
        "source" (the sharded backend consults a cross-shard cache directory)
        can override fetch routing without touching the hit/coalesce path.
        """
        source = self._find_source_cell(cell, key)
        epoch = cell.failure_epoch
        if source is not None:
            cell.stats.neighbor_fetches += 1
            request.cache_outcome = NEIGHBOR_FETCH
            source.cache.pin(key)
            delay = self.costs.transfer_time(source.name, cell.name, spec.size_bytes)
            self.backhaul_bytes += spec.size_bytes
            self.engine.post(
                delay,
                lambda sim, c=cell, k=key, s=source, m=spec, e=epoch: self._fetch_done(
                    c, k, m, source=s, epoch=e
                ),
            )
        else:
            cell.stats.cloud_fetches += 1
            request.cache_outcome = CLOUD_FETCH
            delay = spec.build_cost_s + self.costs.transfer_time(CLOUD, cell.name, spec.size_bytes)
            self.cloud_bytes += spec.size_bytes
            self.engine.post(
                delay,
                lambda sim, c=cell, k=key, m=spec, e=epoch: self._fetch_done(
                    c, k, m, source=None, epoch=e
                ),
            )

    def _find_source_cell(self, cell: Cell, key: str) -> Optional[Cell]:
        for neighbor in cell.neighbor_order:
            if not neighbor.failed and neighbor.cache.peek(key) is not None:
                return neighbor
        return None

    def _fetch_done(
        self, cell: Cell, key: str, spec: ModelSpec, source: Optional[Cell], epoch: int = 0
    ) -> None:
        now = self.engine.now
        if source is not None:
            source_entry = source.cache.unpin(key)
            if source.failed and not source_entry.pinned:
                # The source died mid-transfer: the pin kept the payload alive
                # for this copy, and its release completes the failure wipe —
                # otherwise the entry would outlive the outage and recover warm.
                source.cache.remove(key)
                source.cache.statistics.wipes += 1
        if cell.failed or epoch != cell.failure_epoch:
            # The destination died while the model was in flight (and possibly
            # recovered since).  The bytes were already spent and the source
            # pin is released above; this fetch's waiters were failed over at
            # failure time, so nothing is admitted and nobody is served —
            # in particular not the waiters of any *newer* fetch for the same
            # key started after recovery, whose own completion is still due.
            return
        if spec.size_bytes <= cell.cache.capacity_bytes:
            entry = CacheEntry(
                key=key,
                kind=GENERAL_MODEL,
                domain=spec.domain,
                size_bytes=spec.size_bytes,
                build_cost_s=spec.build_cost_s,
            )
            # May still be rejected (everything pinned); the waiting requests
            # proceed with the freshly fetched model either way.
            cell.cache.put(entry, now=now)
        else:
            # Model too large for this cell's cache: use it transiently.
            cell.cache.statistics.rejections += 1
        for request in cell.inflight.pop(key, []):
            request.fetch_done_time = now
            self._enqueue(request, cell)

    def _enqueue(self, request: Request, cell: Cell) -> None:
        now = self.engine.now
        policy = self._resilience
        if (
            policy is not None
            and policy.deadline_s is not None
            and now - request.arrival_time >= policy.deadline_s
        ):
            # Budget spent before batching: finish now instead of occupying
            # a batch slot with work nobody is waiting for.
            self._finish_failure(request, cell, DEADLINE_EXCEEDED)
            return
        request.status = QUEUED
        request.enqueue_time = now
        flops = self._domain_info[request.domain][1]
        batch = cell.batcher.add(request, flops, now)
        if batch is not None:
            self._execute_batch(cell, batch)
        elif len(cell.batcher) == 1:
            generation = cell.batcher.generation
            self.engine.post(
                self.config.batching.max_wait_s,
                lambda sim, c=cell, g=generation: self._batch_timeout(c, g),
            )

    def _batch_timeout(self, cell: Cell, generation: int) -> None:
        if cell.batcher.generation != generation:
            return  # The batch already closed on the size boundary.
        batch = cell.batcher.flush()
        if batch is not None:
            self._execute_batch(cell, batch)

    def _execute_batch(self, cell: Cell, batch: Batch) -> None:
        now = self.engine.now
        # Enqueue on the compute resource directly rather than via
        # EdgeServer.execute: the latter retains a TaskResult per call, which
        # a 100k+-request replay has no use for (memory stays flat instead).
        start, finish = cell.server.compute.enqueue(now, batch.flops)
        cell.stats.batches += 1
        cell.stats.batched_requests += len(batch)
        for request in batch.items:
            request.compute_start_time = start
            request.compute_done_time = finish
        self.engine.post(
            finish + self._downlink_time[cell.name] - now,
            lambda sim, c=cell, items=batch.items: self._complete(c, items),
        )

    def _complete(self, cell: Cell, requests: List[Request]) -> None:
        if self._resilience is not None:
            self._complete_resilient(cell, requests)
            return
        now = self.engine.now
        record = self.latency.record
        hook = self.on_request_end
        placement = self._placement
        for request in requests:
            request.completion_time = now
            request.status = COMPLETED
            record(now - request.arrival_time)
            if placement is not None:
                placement.release(request)
            if hook is not None:
                hook(request)
        cell.stats.completed += len(requests)
        self._completed_total += len(requests)
        self._last_completion = now

    # ------------------------------------------------------------------ #
    # Fault injection (timed mid-run mutations)
    # ------------------------------------------------------------------ #
    # Scenario timelines (:mod:`repro.scenarios`) schedule these through
    # ``engine.schedule_at``; they are also directly callable between runs.
    # None of them consumes randomness, so a fault-free run's RNG streams are
    # untouched and a faulted run is exactly as deterministic as the spec.
    def fail_cell(self, name: str) -> None:
        """Take a cell down: wipe its cache, hand over everything it holds.

        Requests waiting in the cell's batch queue and requests parked on its
        in-flight fetches are failed over to the nearest alive neighbour (or
        dropped if none exists).  The cache loses every unpinned entry — a
        later :meth:`recover_cell` is a cold restart.  Requests already past
        the encode stage (completion events in flight) complete normally:
        their features were already transmitted.
        """
        cell = self.cells[name]
        if cell.failed:
            return
        cell.failed = True
        cell.failure_epoch += 1
        now = self.engine.now
        cell.cache.wipe(now=now)
        # Flush (rather than drop) the open batch so its requests are re-homed;
        # the generation bump turns any pending batch-timeout into a no-op.
        batch = cell.batcher.flush()
        displaced: List[Request] = list(batch.items) if batch is not None else []
        for waiters in cell.inflight.values():
            displaced.extend(waiters)
        cell.inflight.clear()
        for request in displaced:
            self._failover(request, cell)

    def recover_cell(self, name: str) -> None:
        """Bring a failed cell back (cache cold — it was wiped at failure).

        Entries that survived the failure wipe only because a neighbour's copy
        was in flight are dropped when that pin releases (see ``_fetch_done``);
        the wipe here catches any such survivor whose pin released after a
        second failure window, keeping the cold-restart invariant.  The one
        deliberate exception: an entry still pinned *right now* (its transfer
        outlived the whole outage) stays, because pins are never broken.
        """
        cell = self.cells[name]
        if cell.failed:
            cell.cache.wipe(now=self.engine.now)
            cell.failed = False

    def alive_cells(self) -> List[str]:
        """Names of the cells currently up."""
        return [name for name, cell in self.cells.items() if not cell.failed]

    def wipe_cell_cache(self, name: str) -> int:
        """Cold-restart one cell's cache without downtime; returns entries dropped.

        Pinned entries (transfer sources with a copy in flight) survive — see
        :meth:`~repro.caching.cache.SemanticModelCache.wipe`.
        """
        return len(self.cells[name].cache.wipe(now=self.engine.now))

    def degrade_downlink(self, name: str, factor: float) -> None:
        """Scale one cell's per-request downlink time by ``factor`` (>= 1 slows).

        The factor applies to the healthy baseline, so repeated degradations
        replace each other instead of compounding.
        """
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        self._downlink_time[name] = self._downlink_base[name] * factor

    def restore_downlink(self, name: str) -> None:
        """Reset one cell's downlink to its healthy baseline."""
        self._downlink_time[name] = self._downlink_base[name]

    def resize_cell_cache(self, name: str, capacity_bytes: int) -> None:
        """Change one cell's cache budget mid-run, evicting down to it if shrunk."""
        self.cells[name].cache.resize(capacity_bytes, now=self.engine.now)

    def set_handover_probability(self, probability: float) -> None:
        """Change the mobility model's handover probability mid-run."""
        self.mobility.set_handover_probability(probability)

    def schedule_calls(
        self,
        time_s: float,
        calls: Sequence[tuple],
        label: str = "",
    ) -> None:
        """Schedule a batch of named method calls at simulation time ``time_s``.

        ``calls`` is an ordered sequence of ``(method_name, args)`` pairs
        applied back-to-back inside **one** engine event.  This is the
        backend-agnostic fault API: scenario timelines describe faults as
        data, and each backend decides how to execute them — the serial
        engine as a single heap event (identical to the historical closure
        scheduling, so committed tables stay byte-identical), the sharded
        backend by recording the timeline and broadcasting it to every shard
        before replay.
        """

        def apply(sim: Simulation, batch=tuple(calls)) -> None:
            for method_name, args in batch:
                getattr(self, method_name)(*args)

        self.engine.schedule_at(time_s, apply, label=label)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def audit_invariants(self, allow_over_budget: bool = False) -> None:
        """Post-replay structural audit (see :func:`repro.sim.invariants.audit_simulator`).

        Raises :class:`~repro.sim.invariants.InvariantViolation` if the run
        left the engine in an impossible state: drifted cache accounting,
        leaked pins, stranded fetches or batches, entries on dead cells.
        ``allow_over_budget`` permits the one legal over-full end state — a
        cache whose budget shrank below its live pins mid-run.
        """
        from repro.sim.invariants import audit_simulator

        audit_simulator(self, allow_over_budget=allow_over_budget)

    def report(self, wall_clock_s: float) -> SimulationReport:
        """Build the :class:`SimulationReport` for everything run so far."""
        return SimulationReport(
            completed=self._completed_total,
            duration_s=self._last_completion,
            wall_clock_s=wall_clock_s,
            events_processed=self.engine.events_processed,
            latency=self.latency.summary(),
            cells={name: cell.stats for name, cell in self.cells.items()},
            total_compute_busy_s=sum(cell.server.compute.busy_time for cell in self.cells.values()),
            backhaul_bytes=self.backhaul_bytes,
            cloud_bytes=self.cloud_bytes,
            dropped=sum(cell.stats.dropped for cell in self.cells.values()),
            shed=sum(cell.stats.shed for cell in self.cells.values()),
            deadline_exceeded=sum(
                cell.stats.deadline_exceeded for cell in self.cells.values()
            ),
        )
