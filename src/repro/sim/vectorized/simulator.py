"""Vectorized event-kernel backend: numpy cohort replay of the sim hot path.

:class:`VectorizedSimulator` implements the :class:`~repro.sim.backend.
SimBackend` surface by wrapping a real serial
:class:`~repro.sim.simulator.MultiCellSimulator` and replacing only its
*event loop*.  The wrapped simulator's live objects — the per-cell
:class:`~repro.caching.cache.SemanticModelCache` (and its eviction policy),
the :class:`~repro.edge.resources.ComputeResource`, the mobility RNG, the
latency reservoir — are driven directly, so every policy decision, counter
and floating-point operation happens in the exact same order as the serial
reference.  What the kernel removes is the per-event Python overhead: closure
allocation, ``Request`` materialization on the no-observer path, scalar
latency recording, and the engine's generic heap dispatch.

The cohort structure:

* **Arrival admission** runs straight off the columnar
  :class:`~repro.workloads.traces.RequestTrace` arrays.  Mobility is resolved
  for *all* arrivals in a deterministic pre-pass that replicates the serial
  RNG draw order exactly (same generator, same stream positions), leaving the
  per-arrival loop free of RNG calls.
* **Completion fan-out** accumulates (completion time, cohort) pairs and
  feeds the latency reservoir with one vectorized append per replay
  (:meth:`~repro.sim.metrics.LatencyRecorder.record_many`), bit-identical to
  the serial per-request ``record`` calls.
* **Timeline events** (``schedule_calls`` fault batches) are lowered as
  cohort barriers: the kernel pauses at the exact heap position the serial
  engine would, then invokes the *real* fault methods on the wrapped
  simulator.

Determinism contract: the serial engine remains the bit-identity reference.
On every freshly-seen (deployment, config, trace, timeline) signature the
backend replays **both** engines — serial on the wrapped simulator (that
report is returned), the kernel on a shadow deployment built from the same
constructor arguments — and compares the full reports field by field.  Any
divergence marks the signature bad and silently pins it to the serial path.
Ineligible shapes (resilience policies, cell fail/recover timelines, object
traces, unseeded runs, warm simulators) fall back to the serial path
entirely, so results are *always* exactly the serial engine's.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.caching.cache import CacheStatistics
from repro.caching.entry import CacheEntry, GENERAL_MODEL
from repro.sim.metrics import CellStats, SimulationReport
from repro.sim.multicell import CLOUD, CellConfig, ModelSpec
from repro.sim.request import (
    CLOUD_FETCH,
    COALESCED,
    COMPLETED,
    FETCHING,
    LOCAL_HIT,
    NEIGHBOR_FETCH,
    QUEUED,
    Request,
)
from repro.sim.simulator import MultiCellSimulator, SimulatorConfig
from repro.exceptions import SimulationError
from repro.utils.rng import SeedLike
from repro.workloads.traces import RequestTrace

#: Timeline methods the kernel can lower as cohort barriers.  ``fail_cell`` /
#: ``recover_cell`` re-route in-flight work through the failover chain, which
#: is inherently scalar — those timelines take the serial path.
SUPPORTED_TIMELINE_CALLS = frozenset(
    {
        "wipe_cell_cache",
        "resize_cell_cache",
        "degrade_downlink",
        "restore_downlink",
        "set_handover_probability",
    }
)

# Heap event kinds (payload tuples are (time, seq, kind, ...)); seq values are
# unique, so heap comparisons never reach the payload.
_EV_TIMELINE = 0
_EV_LOOKUP = 1
_EV_TIMEOUT = 2
_EV_FETCH = 3
_EV_COMPLETE = 4

#: Mobility pre-pass fixpoint chunk: bounds worst-case fixpoint iterations
#: (successes per chunk) while keeping each iteration a small-array op.
_MOBILITY_CHUNK = 8192


class VectorizedSimulator:
    """Numpy cohort replay of the multi-cell simulator (third backend).

    Wraps a real :class:`MultiCellSimulator`; every attribute not overridden
    here (``cells``, ``engine``, ``latency``, fault methods, ``report`` …)
    delegates to it, so the wrapper satisfies the full backend protocol and
    post-run audits inspect genuine state.
    """

    backend_name = "vectorized"

    #: Class-level verdict cache: signature -> True (kernel bit-identical to
    #: serial on this shape) / False (diverged; pinned to serial).
    _validated: Dict[str, bool] = {}

    def __init__(
        self,
        cells: Sequence[CellConfig],
        catalogue: Dict[str, ModelSpec],
        config: Optional[SimulatorConfig] = None,
        seed: SeedLike = None,
        cross_check: bool = True,
    ) -> None:
        self._inner = MultiCellSimulator(cells, catalogue, config=config, seed=seed)
        self._cell_configs = list(cells)
        self._catalogue_arg = dict(catalogue)
        self._config_arg = config
        self._seed = seed
        self._cross_check = bool(cross_check)
        #: Recorded ``schedule_calls`` batches, in scheduling order (their
        #: engine sequence numbers are 1..K on a fresh simulator).
        self._timeline: List[Tuple[float, Tuple[Tuple[str, tuple], ...], str]] = []
        #: Why the most recent replay took the serial path (``None`` when the
        #: kernel ran).  Diagnostic only; results are identical either way.
        self.fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Delegation
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def on_request_end(self) -> Optional[Callable[[Request], None]]:
        return self._inner.on_request_end

    @on_request_end.setter
    def on_request_end(self, hook: Optional[Callable[[Request], None]]) -> None:
        self._inner.on_request_end = hook

    def schedule_calls(self, time_s: float, calls: Sequence[tuple], label: str = "") -> None:
        """Record the fault batch for the kernel and forward it to the engine."""
        recorded = tuple((method_name, tuple(args)) for method_name, args in calls)
        self._timeline.append((float(time_s), recorded, label))
        self._inner.schedule_calls(time_s, calls, label=label)

    def run(self) -> SimulationReport:
        report = self._inner.run()
        self._timeline.clear()
        return report

    # ------------------------------------------------------------------ #
    # Replay entry point
    # ------------------------------------------------------------------ #
    def replay(self, trace, run: bool = True) -> SimulationReport:
        blocker = self._fast_path_blocker(trace, run)
        if blocker is not None:
            self.fallback_reason = blocker
            report = self._inner.replay(trace, run=run)
            if run:
                self._timeline.clear()
            return report
        self.fallback_reason = None
        if self._cross_check:
            signature = self._signature(trace)
            verdict = VectorizedSimulator._validated.get(signature)
            if verdict is None:
                return self._validate(trace, signature)
            if verdict is False:
                self.fallback_reason = "cross-check divergence recorded for this signature"
                report = self._inner.replay(trace, run=True)
                self._timeline.clear()
                return report
        timeline = list(self._timeline)
        self._timeline.clear()
        return self._replay_fast(
            self._inner, trace, hook=self._inner.on_request_end, timeline=timeline
        )

    # ------------------------------------------------------------------ #
    # Eligibility
    # ------------------------------------------------------------------ #
    def _fast_path_blocker(self, trace, run: bool) -> Optional[str]:
        """Why this replay cannot take the kernel (``None`` when it can)."""
        if not run:
            return "run=False replays schedule eagerly on the engine heap"
        if not isinstance(trace, RequestTrace) or not trace.is_columnar:
            return "object traces take the serial per-request path"
        if len(trace.timestamps) == 0:
            return "empty trace"
        if float(np.min(trace.timestamps)) < self._inner.engine.now:
            return "trace starts before the engine clock"
        if self._seed is None:
            return "unseeded simulators are not shadow-reproducible"
        inner = self._inner
        if inner._resilience is not None:
            return "resilience policies take the serial per-request path"
        if inner._placement is not None:
            return "placement policies take the serial per-request path"
        if inner.config.trace_events:
            return "per-event tracing is a serial-engine feature"
        if inner._arrival_stream:
            return "a previous replay left a pending arrival stream"
        for _, calls, _ in self._timeline:
            for method_name, _args in calls:
                if method_name not in SUPPORTED_TIMELINE_CALLS:
                    return f"timeline call {method_name!r} is not vectorizable"
        engine = inner.engine
        if engine._sequence != len(self._timeline) or engine.pending() != len(self._timeline):
            return "engine holds events not scheduled through schedule_calls"
        if not self._is_fresh():
            return "simulator state is not fresh"
        return None

    def _is_fresh(self) -> bool:
        """Whether the wrapped simulator is in its just-constructed state.

        The kernel itself only needs *consistent* state, but the cross-check
        shadow is built from constructor arguments, so validation is only
        meaningful from a fresh start; warm or hand-mutated simulators take
        the serial path.
        """
        inner = self._inner
        if (
            inner.engine.now != 0.0
            or inner.engine.events_processed != 0
            or inner._request_counter != 0
            or inner._completed_total != 0
            or len(inner.latency) != 0
            or inner.requests
            or inner.backhaul_bytes != 0.0
            or inner.cloud_bytes != 0.0
            or inner.mobility._user_cell
            or inner.mobility._probability != inner.config.mobility.handover_probability
            or inner._downlink_time != inner._downlink_base
        ):
            return False
        for cell in inner.cells.values():
            if (
                cell.failed
                or cell.inflight
                or len(cell.batcher)
                or cell.batcher.generation != 0
                or len(cell.cache) != 0
                or cell.cache.statistics != CacheStatistics()
                or cell.stats != CellStats(name=cell.name)
                or cell.server.compute.busy_time != 0.0
            ):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Cross-check
    # ------------------------------------------------------------------ #
    def _signature(self, trace: RequestTrace) -> str:
        """Digest of everything that determines a replay's result."""
        digest = hashlib.blake2b(digest_size=16)

        def feed(text: str) -> None:
            digest.update(text.encode())
            digest.update(b"\x00")

        feed("vectorized-kernel-v1")
        feed(repr(self._seed))
        feed(repr(self._inner.config))
        for cell_config in self._cell_configs:
            feed(repr(cell_config))
        for domain in self._catalogue_arg:
            feed(repr((domain, self._catalogue_arg[domain])))
        for entry in self._timeline:
            feed(repr(entry))
        for array in (trace.timestamps, trace.user_indices, trace.domain_indices):
            digest.update(np.ascontiguousarray(array).tobytes())
            digest.update(b"\x00")
        feed(repr(tuple(trace.domain_names)))
        return digest.hexdigest()

    def _validate(self, trace: RequestTrace, signature: str) -> SimulationReport:
        """First sight of this signature: run both engines, compare, record.

        The serial replay runs on the wrapped simulator — with the caller's
        observer hook, and its report is what the caller receives — so a
        validation replay is externally indistinguishable from a plain serial
        one.  The kernel runs hook-less on a shadow deployment built from the
        same constructor arguments.
        """
        timeline = list(self._timeline)
        fast_report: Optional[SimulationReport] = None
        try:
            shadow = MultiCellSimulator(
                self._cell_configs,
                self._catalogue_arg,
                config=self._config_arg,
                seed=self._seed,
            )
            fast_report = self._replay_fast(shadow, trace, hook=None, timeline=timeline)
        except Exception:
            fast_report = None
        serial_report = self._inner.replay(trace, run=True)
        self._timeline.clear()
        verdict = fast_report is not None and self._reports_equal(serial_report, fast_report)
        VectorizedSimulator._validated[signature] = verdict
        if not verdict:
            self.fallback_reason = "cross-check divergence; serial result returned"
        return serial_report

    @staticmethod
    def _reports_equal(a: SimulationReport, b: SimulationReport) -> bool:
        """Exact field-by-field equality, wall-clock excluded."""
        if (
            a.completed != b.completed
            or a.duration_s != b.duration_s
            or a.events_processed != b.events_processed
            or a.backhaul_bytes != b.backhaul_bytes
            or a.cloud_bytes != b.cloud_bytes
            or a.dropped != b.dropped
            or a.shed != b.shed
            or a.deadline_exceeded != b.deadline_exceeded
            or a.total_compute_busy_s != b.total_compute_busy_s
            or a.latency != b.latency
        ):
            return False
        if set(a.cells) != set(b.cells):
            return False
        return all(a.cells[name] == b.cells[name] for name in a.cells)

    # ------------------------------------------------------------------ #
    # Mobility pre-pass
    # ------------------------------------------------------------------ #
    @staticmethod
    def _mobility_prepass(
        sim: MultiCellSimulator,
        sorted_times: np.ndarray,
        users: np.ndarray,
        probability_schedule: Sequence[Tuple[float, float]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve mobility for every arrival, replicating serial draw order.

        Returns ``(cell_index, moved)`` per arrival (in sorted order).  The
        serial engine consumes, per arrival: one ``integers(num_cells)`` draw
        on first sight of a user, then — with two or more cells — exactly one
        ``random()`` draw, plus one more for the step direction when the
        handover fires on three or more cells.  This pre-pass issues the same
        draws from the same generator in the same order: first-sight draws
        are scalar at their exact stream positions, and the ``random()`` runs
        between them are drawn as blocks.  Variable-length consumption (the
        direction draws) is resolved by a per-chunk fixpoint; the generator
        state is then rewound and advanced by the exact count consumed, so
        every later draw sits at the serial stream position.
        """
        mobility = sim.mobility
        rng = mobility.rng
        num_cells = mobility._num_cells
        n = len(users)
        moved = np.zeros(n, dtype=bool)
        steps = np.zeros(n, dtype=np.int64)

        # Per-arrival handover probability: piecewise-constant from the
        # timeline barriers.  A barrier scheduled at time t fires before any
        # arrival at t (its sequence number is below the run boundary), so
        # the left split side is exact.
        p_arr = np.full(n, mobility._probability, dtype=np.float64)
        for barrier_time, probability in probability_schedule:
            first = int(np.searchsorted(sorted_times, barrier_time, side="left"))
            p_arr[first:] = probability

        # Initial ring index per user: -1 marks "not yet placed".
        max_user = int(users.max())
        initial_ring = np.full(max_user + 1, -1, dtype=np.int64)
        if mobility._user_cell:
            ring_of = mobility._ring_index
            for label, cell_name in mobility._user_cell.items():
                if label.startswith("user_"):
                    try:
                        user = int(label[5:])
                    except ValueError:
                        continue
                    if 0 <= user <= max_user:
                        initial_ring[user] = ring_of[cell_name]

        # First occurrence of each not-yet-placed user (cheaper than
        # np.unique: one scatter-min instead of a full sort).
        first_occurrence = np.full(max_user + 1, n, dtype=np.int64)
        np.minimum.at(first_occurrence, users, np.arange(n, dtype=np.int64))
        sighted = (first_occurrence < n) & (initial_ring < 0)
        sight_positions = np.sort(first_occurrence[sighted])
        sight_users = np.flatnonzero(sighted)[np.argsort(first_occurrence[sighted])]

        if num_cells == 1:
            # First sight still consumes one integers() draw (always 0);
            # resolve() then returns before any random() draw.
            for _ in range(len(sight_positions)):
                int(rng.integers(num_cells))
            cell_index = np.zeros(n, dtype=np.int64)
            VectorizedSimulator._write_final_cells(mobility, users, cell_index)
            return cell_index, moved

        # Segments of the random() stream between first-sight draws.
        segments: List[Tuple[int, int, int]] = []
        bounds = sight_positions.tolist() + [n]
        if bounds[0] > 0:
            segments.append((0, bounds[0], -1))
        for index, user in enumerate(sight_users.tolist()):
            segments.append((int(bounds[index]), int(bounds[index + 1]), user))

        for start, end, sight_user in segments:
            if sight_user >= 0:
                initial_ring[sight_user] = int(rng.integers(num_cells))
            if end == start:
                continue
            if num_cells == 2:
                # Exactly one draw per arrival; the step is always +1 and
                # consumes nothing.
                block = rng.random(end - start)
                fired = block < p_arr[start:end]
                moved[start:end] = fired
                steps[start:end][fired] = 1
                continue
            position = start
            while position < end:
                chunk_end = min(position + _MOBILITY_CHUNK, end)
                count = chunk_end - position
                thresholds = p_arr[position:chunk_end]
                state = rng.bit_generator.state
                buffer = rng.random(count)
                base_index = np.arange(count, dtype=np.int64)
                shifts = np.zeros(count, dtype=np.int64)
                while True:
                    stream_index = base_index + shifts
                    needed = int(stream_index[-1]) + 2
                    if len(buffer) < needed:
                        buffer = np.concatenate([buffer, rng.random(needed - len(buffer))])
                    fired = buffer[stream_index] < thresholds
                    new_shifts = np.zeros(count, dtype=np.int64)
                    new_shifts[1:] = np.cumsum(fired[:-1])
                    if np.array_equal(new_shifts, shifts):
                        break
                    shifts = new_shifts
                directions = buffer[stream_index + 1]
                chunk_steps = np.where(directions < 0.5, 1, -1)
                moved[position:chunk_end] = fired
                applied = np.zeros(count, dtype=np.int64)
                applied[fired] = chunk_steps[fired]
                steps[position:chunk_end] = applied
                # Rewind and advance by the exact serial consumption so every
                # later draw (next chunk, next first-sight) lines up.
                consumed = count + int(fired.sum())
                rng.bit_generator.state = state
                rng.random(consumed)
                position = chunk_end

        # Serving cell per arrival: within each user's arrival run, the ring
        # index walks by the (signed) step of every fired handover including
        # the arrival's own — resolve() returns the *new* cell on a move.
        user_order = np.argsort(users, kind="stable")
        users_grouped = users[user_order]
        steps_grouped = steps[user_order]
        cumulative = np.cumsum(steps_grouped)
        group_start = np.ones(n, dtype=bool)
        group_start[1:] = users_grouped[1:] != users_grouped[:-1]
        starts = np.flatnonzero(group_start)
        prior = np.where(starts > 0, cumulative[starts - 1], 0)
        group_lengths = np.diff(np.append(starts, n))
        local_walk = cumulative - np.repeat(prior, group_lengths)
        ring_grouped = (initial_ring[users_grouped] + local_walk) % num_cells
        cell_index = np.empty(n, dtype=np.int64)
        cell_index[user_order] = ring_grouped
        VectorizedSimulator._write_final_cells(mobility, users, cell_index)
        return cell_index, moved

    @staticmethod
    def _write_final_cells(mobility, users, cell_index) -> None:
        """Leave ``mobility`` holding each trace user's final serving cell."""
        cell_names = mobility.cell_names
        user_cell = mobility._user_cell
        last_position = np.full(int(users.max()) + 1, -1, dtype=np.int64)
        np.maximum.at(last_position, users, np.arange(len(users), dtype=np.int64))
        for user in np.flatnonzero(last_position >= 0).tolist():
            user_cell[f"user_{user}"] = cell_names[cell_index[last_position[user]]]

    # ------------------------------------------------------------------ #
    # The kernel
    # ------------------------------------------------------------------ #
    def _replay_fast(
        self,
        sim: MultiCellSimulator,
        trace: RequestTrace,
        hook: Optional[Callable[[Request], None]],
        timeline: Sequence[Tuple[float, Tuple[Tuple[str, tuple], ...], str]],
    ) -> SimulationReport:
        """Replay ``trace`` on ``sim`` through the cohort kernel.

        Mirrors the serial engine exactly: every event the serial engine
        would post gets the same (time, sequence) heap key here, the stream
        merge uses the same boundary tie-break, and all stateful objects
        (caches, policies, compute resources, the mobility RNG) are the
        wrapped simulator's own, called in the serial order.
        """
        started = time.perf_counter()
        timestamps = trace.timestamps
        domain_names = trace.domain_names

        # Per-domain constant tables (indexed by trace domain index).
        keys: List[str] = []
        flops_of: List[float] = []
        size_of: List[int] = []
        build_of: List[float] = []
        spec_domain: List[str] = []
        for name in domain_names:
            info = sim._domain_info.get(name)
            if info is None:
                raise SimulationError(f"domain {name!r} is not in the model catalogue")
            keys.append(info[0])
            flops_of.append(info[1])
            size_of.append(info[2].size_bytes)
            build_of.append(info[2].build_cost_s)
            spec_domain.append(info[2].domain)

        n = len(timestamps)
        if np.any(timestamps[1:] < timestamps[:-1]):
            order = np.argsort(timestamps, kind="stable")
            sorted_times = timestamps[order]
            users = trace.user_indices[order]
            domains = trace.domain_indices[order]
        else:
            order = None
            sorted_times = timestamps
            users = trace.user_indices
            domains = trace.domain_indices

        if float(sorted_times[0]) < sim.engine.now:
            raise SimulationError(
                f"stream starts at {sorted_times[0]} before current time {sim.engine.now}"
            )

        # Probability barriers apply in heap order — (time, sequence), not
        # scheduling order — matching how the serial engine fires them.
        keyed_schedule: List[Tuple[float, int, float]] = []
        for seq_index, (barrier_time, calls, _label) in enumerate(timeline):
            for method_name, args in calls:
                if method_name == "set_handover_probability":
                    keyed_schedule.append((barrier_time, seq_index, args[0]))
        keyed_schedule.sort(key=lambda item: (item[0], item[1]))
        probability_schedule = [(item[0], item[2]) for item in keyed_schedule]

        cell_of_arrival, moved_flags = self._mobility_prepass(
            sim, sorted_times, users, probability_schedule
        )

        # ---------------- scalar tables for the event loop ---------------- #
        cells = list(sim.cells.values())
        cell_names = [cell.name for cell in cells]
        cell_count = len(cells)
        index_of_cell = {name: index for index, name in enumerate(cell_names)}
        caches = [cell.cache for cell in cells]
        entry_maps = [cell.cache._entries for cell in cells]
        on_access = [cell.cache.policy.on_access for cell in cells]
        inflight_maps = [cell.inflight for cell in cells]
        neighbor_indices = [
            [index_of_cell[neighbor.name] for neighbor in cell.neighbor_order]
            for cell in cells
        ]
        compute_enqueue = [cell.server.compute.enqueue for cell in cells]
        costs = sim.costs
        pair_cost = [
            [
                (0.0, 0.0) if src == dst else costs.cost(cell_names[src], cell_names[dst])
                for dst in range(cell_count)
            ]
            for src in range(cell_count)
        ]
        cloud_cost = [costs.cost(CLOUD, name) for name in cell_names]
        downlink = [sim._downlink_time[name] for name in cell_names]

        config = sim.config
        amortization = config.batching.amortization
        max_batch = config.batching.max_batch_size
        max_wait = config.batching.max_wait_s
        handover_delay = config.mobility.handover_delay_s
        num_tokens = config.num_tokens
        retain = config.retain_requests
        track = retain or hook is not None

        times_list = sorted_times.tolist()
        domain_list = domains.tolist()
        cell_list = cell_of_arrival.tolist()
        moved_list = moved_flags.tolist()
        # Per-arrival constant tables (one numpy gather each) so the event
        # loop never chases domain indirections.
        key_list = np.asarray(keys, dtype=object)[domains].tolist()
        flops_list = np.asarray(flops_of, dtype=np.float64)[domains].tolist()
        entry_get = [mapping.get for mapping in entry_maps]

        base = sim._request_counter
        sim._request_counter = base + n
        request_objects: List[Optional[Request]] = [None] * n if track else []
        if track:
            users_list = users.tolist()
            positions = order.tolist() if order is not None else None
            user_labels = [f"user_{index}" for index in range(int(users.max()) + 1)]
            retained_requests = sim.requests
        record_latency = sim.latency.record

        # Per-cell counters, merged into the real stats objects at the end
        # (all are plain integer adds, so deferral is order-insensitive).
        hits_count = [0] * cell_count
        coalesced_count = [0] * cell_count
        neighbor_count = [0] * cell_count
        cloud_count = [0] * cell_count
        handover_count = [0] * cell_count
        completed_count = [0] * cell_count
        batches_count = [0] * cell_count
        batched_requests_count = [0] * cell_count
        rejection_count = [0] * cell_count
        last_touch = [cell.cache.clock for cell in cells]

        # Open-batch mirror (the real BatchAccumulator stays empty; its
        # generation counter is synced at the end).
        batch_items: List[List[int]] = [[] for _ in range(cell_count)]
        batch_flops: List[List[float]] = [[] for _ in range(cell_count)]
        batch_generation = [cell.batcher.generation for cell in cells]

        # Completion fan-out accumulators (fast mode): cohorts are flattened
        # once into the reservoir after the loop.
        flat_completions: List[int] = []
        completion_times: List[float] = []
        completion_sizes: List[int] = []

        backhaul_bytes = sim.backhaul_bytes
        cloud_bytes = sim.cloud_bytes
        completed_total = 0
        last_completion = sim._last_completion

        heap: List[tuple] = [
            (barrier_time, index + 1, _EV_TIMELINE, calls)
            for index, (barrier_time, calls, _label) in enumerate(timeline)
        ]
        heapq.heapify(heap)
        heap_push = heapq.heappush
        heap_pop = heapq.heappop
        boundary = len(timeline)
        sequence = boundary
        events_processed = 0
        now = sim.engine.now

        def do_enqueue(arrival: int, cell_index: int, now: float) -> None:
            nonlocal sequence
            if track:
                request = request_objects[arrival]
                request.status = QUEUED
                request.enqueue_time = now
            items = batch_items[cell_index]
            items.append(arrival)
            batch_flops[cell_index].append(flops_list[arrival])
            if len(items) >= max_batch or max_wait == 0.0:
                do_execute(cell_index, now)
            elif len(items) == 1:
                sequence += 1
                heap_push(
                    heap,
                    (now + max_wait, sequence, _EV_TIMEOUT, cell_index, batch_generation[cell_index]),
                )

        def do_execute(cell_index: int, now: float) -> None:
            nonlocal sequence
            items = batch_items[cell_index]
            flop_values = batch_flops[cell_index]
            # batch_flops(flop_values, amortization), inlined — sum() folds
            # left-to-right exactly like the accumulator's Python sum.
            total = sum(flop_values)
            largest = max(flop_values)
            flops = largest + amortization * (total - largest)
            batch_items[cell_index] = []
            batch_flops[cell_index] = []
            batch_generation[cell_index] += 1
            start, finish = compute_enqueue[cell_index](now, flops)
            batches_count[cell_index] += 1
            batched_requests_count[cell_index] += len(items)
            if track:
                for arrival in items:
                    request = request_objects[arrival]
                    request.compute_start_time = start
                    request.compute_done_time = finish
            sequence += 1
            heap_push(
                heap,
                (now + (finish + downlink[cell_index] - now), sequence, _EV_COMPLETE, cell_index, items),
            )

        def do_lookup(arrival: int, cell_index: int, now: float) -> None:
            key = key_list[arrival]
            if track:
                request_objects[arrival].lookup_time = now
            entry = entry_get[cell_index](key)
            if entry is not None:
                # cache.get(key, now), inlined: the clock is globally
                # monotone, so the stamp is exactly `now`.
                entry.last_access_time = now
                entry.access_count += 1
                on_access[cell_index](entry, now)
                hits_count[cell_index] += 1
                last_touch[cell_index] = now
                if track:
                    request_objects[arrival].cache_outcome = LOCAL_HIT
                do_enqueue(arrival, cell_index, now)
                return
            do_miss(arrival, cell_index, now, key)

        def do_miss(arrival: int, cell_index: int, now: float, key: str) -> None:
            nonlocal sequence, backhaul_bytes, cloud_bytes
            domain = domain_list[arrival]
            last_touch[cell_index] = now
            inflight = inflight_maps[cell_index]
            waiters = inflight.get(key)
            if waiters is not None:
                coalesced_count[cell_index] += 1
                if track:
                    request = request_objects[arrival]
                    request.cache_outcome = COALESCED
                    request.status = FETCHING
                waiters.append(arrival)
                return
            if track:
                request_objects[arrival].status = FETCHING
            inflight[key] = [arrival]
            source = -1
            for neighbor in neighbor_indices[cell_index]:
                if key in entry_maps[neighbor]:
                    source = neighbor
                    break
            size = size_of[domain]
            sequence += 1
            if source >= 0:
                neighbor_count[cell_index] += 1
                if track:
                    request_objects[arrival].cache_outcome = NEIGHBOR_FETCH
                caches[source].pin(key)
                propagation, per_byte = pair_cost[source][cell_index]
                delay = propagation + size * per_byte
                backhaul_bytes += size
            else:
                cloud_count[cell_index] += 1
                if track:
                    request_objects[arrival].cache_outcome = CLOUD_FETCH
                propagation, per_byte = cloud_cost[cell_index]
                delay = build_of[domain] + (propagation + size * per_byte)
                cloud_bytes += size
            heap_push(heap, (now + delay, sequence, _EV_FETCH, cell_index, domain, source))

        arrival = 0
        while True:
            if arrival < n:
                arrival_time = times_list[arrival]
                if heap:
                    head = heap[0]
                    head_time = head[0]
                    if head_time < arrival_time or (
                        head_time == arrival_time and head[1] <= boundary
                    ):
                        event = heap_pop(heap)
                    else:
                        event = None
                else:
                    event = None
                if event is None:
                    now = arrival_time
                    events_processed += 1
                    cell_index = cell_list[arrival]
                    if track:
                        position = arrival if positions is None else positions[arrival]
                        domain = domain_list[arrival]
                        request = Request(
                            base + position + 1,
                            user_labels[users_list[arrival]],
                            domain_names[domain],
                            keys[domain],
                            now,
                            num_tokens,
                        )
                        request_objects[arrival] = request
                        if retain:
                            retained_requests.append(request)
                        request.cell = cell_names[cell_index]
                        if moved_list[arrival]:
                            request.handover = True
                            handover_count[cell_index] += 1
                            if handover_delay > 0:
                                sequence += 1
                                heap_push(
                                    heap,
                                    (now + handover_delay, sequence, _EV_LOOKUP, arrival, cell_index),
                                )
                                arrival += 1
                                continue
                        do_lookup(arrival, cell_index, now)
                        arrival += 1
                        continue
                    # -------- hot no-observer arrival path, fully inlined ----
                    if moved_list[arrival]:
                        handover_count[cell_index] += 1
                        if handover_delay > 0:
                            sequence += 1
                            heap_push(
                                heap,
                                (now + handover_delay, sequence, _EV_LOOKUP, arrival, cell_index),
                            )
                            arrival += 1
                            continue
                    key = key_list[arrival]
                    entry = entry_get[cell_index](key)
                    if entry is not None:
                        entry.last_access_time = now
                        entry.access_count += 1
                        on_access[cell_index](entry, now)
                        hits_count[cell_index] += 1
                        last_touch[cell_index] = now
                        items = batch_items[cell_index]
                        items.append(arrival)
                        batch_flops[cell_index].append(flops_list[arrival])
                        size = len(items)
                        if size >= max_batch or max_wait == 0.0:
                            do_execute(cell_index, now)
                        elif size == 1:
                            sequence += 1
                            heap_push(
                                heap,
                                (
                                    now + max_wait,
                                    sequence,
                                    _EV_TIMEOUT,
                                    cell_index,
                                    batch_generation[cell_index],
                                ),
                            )
                    else:
                        do_miss(arrival, cell_index, now, key)
                    arrival += 1
                    continue
            elif heap:
                event = heap_pop(heap)
            else:
                break
            now = event[0]
            events_processed += 1
            kind = event[2]
            if kind == _EV_COMPLETE:
                cell_index = event[3]
                items = event[4]
                if track:
                    for index in items:
                        request = request_objects[index]
                        request.completion_time = now
                        request.status = COMPLETED
                        record_latency(now - request.arrival_time)
                        if hook is not None:
                            hook(request)
                else:
                    flat_completions.extend(items)
                    completion_times.append(now)
                    completion_sizes.append(len(items))
                completed_count[cell_index] += len(items)
                completed_total += len(items)
                last_completion = now
            elif kind == _EV_TIMEOUT:
                cell_index = event[3]
                if event[4] == batch_generation[cell_index] and batch_items[cell_index]:
                    do_execute(cell_index, now)
            elif kind == _EV_FETCH:
                cell_index = event[3]
                domain = event[4]
                source = event[5]
                key = keys[domain]
                if source >= 0:
                    caches[source].unpin(key)
                cache = caches[cell_index]
                if size_of[domain] <= cache.capacity_bytes:
                    cache.put(
                        CacheEntry(
                            key=key,
                            kind=GENERAL_MODEL,
                            domain=spec_domain[domain],
                            size_bytes=size_of[domain],
                            build_cost_s=build_of[domain],
                        ),
                        now=now,
                    )
                else:
                    rejection_count[cell_index] += 1
                for waiter in inflight_maps[cell_index].pop(key, ()):
                    if track:
                        request_objects[waiter].fetch_done_time = now
                    do_enqueue(waiter, cell_index, now)
            elif kind == _EV_LOOKUP:
                do_lookup(event[3], event[4], now)
            else:  # _EV_TIMELINE barrier
                sim.engine.now = now
                for method_name, args in event[3]:
                    getattr(sim, method_name)(*args)
                downlink = [sim._downlink_time[name] for name in cell_names]

        # ---------------- completion fan-out (fast mode) ---------------- #
        if not track and completion_times:
            latencies = np.repeat(
                np.asarray(completion_times, dtype=np.float64),
                completion_sizes,
            ) - sorted_times[np.asarray(flat_completions, dtype=np.intp)]
            sim.latency.record_many(latencies)

        # ---------------- state sync onto the wrapped simulator ---------- #
        engine = sim.engine
        engine.now = now
        engine._sequence = sequence
        engine.events_processed += events_processed
        engine._queue.clear()
        engine._live = 0
        for cell_index, cell in enumerate(cells):
            stats = cell.stats
            stats.hits += hits_count[cell_index]
            stats.coalesced += coalesced_count[cell_index]
            stats.neighbor_fetches += neighbor_count[cell_index]
            stats.cloud_fetches += cloud_count[cell_index]
            stats.handovers_in += handover_count[cell_index]
            stats.completed += completed_count[cell_index]
            stats.batches += batches_count[cell_index]
            stats.batched_requests += batched_requests_count[cell_index]
            cache_stats = cell.cache.statistics
            cache_stats.hits += hits_count[cell_index]
            cache_stats.misses += (
                coalesced_count[cell_index]
                + neighbor_count[cell_index]
                + cloud_count[cell_index]
            )
            cache_stats.rejections += rejection_count[cell_index]
            cell.batcher.generation = batch_generation[cell_index]
            cell.cache.advance_clock(last_touch[cell_index])
        sim.backhaul_bytes = backhaul_bytes
        sim.cloud_bytes = cloud_bytes
        sim._completed_total += completed_total
        sim._last_completion = last_completion
        return sim.report(wall_clock_s=time.perf_counter() - started)
