"""Vectorized event-kernel backend: numpy cohort replay of the sim hot path.

See :mod:`repro.sim.vectorized.simulator` for the engine and its determinism
contract.  Registered in :mod:`repro.sim.backend` as ``"vectorized"``.
"""

from repro.sim.vectorized.simulator import VectorizedSimulator

__all__ = ["VectorizedSimulator"]
