"""Request batching at edge servers.

Batching the encode step amortizes per-invocation overhead (weight loads,
kernel launches) across requests: the first request of a batch pays the full
FLOP cost and every additional request pays only an ``amortization`` fraction
of its own cost.  A batch closes when it reaches ``max_batch_size`` or when
``max_wait_s`` elapses after the batch opened, whichever comes first — the
classic throughput/latency knob.

The accumulator itself is engine-agnostic (it never touches the event queue):
the simulator asks it what to do and schedules the timeout flush itself, which
keeps the boundary conditions unit-testable without a running simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the per-cell batch accumulator.

    ``max_batch_size=1`` (or ``max_wait_s=0``) degrades to unbatched
    per-request execution, which is the baseline the experiments compare
    against.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.005
    amortization: float = 0.4

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0:
            raise ConfigurationError(f"max_wait_s must be non-negative, got {self.max_wait_s}")
        if not 0.0 < self.amortization <= 1.0:
            raise ConfigurationError(f"amortization must be in (0, 1], got {self.amortization}")


def batch_flops(per_item_flops: List[float], amortization: float) -> float:
    """Amortized FLOP cost of executing the given items as one batch.

    The most expensive item pays full price; every other item pays an
    ``amortization`` fraction of its own cost.  A singleton batch therefore
    costs exactly its item, and amortization 1.0 reproduces unbatched totals.
    """
    if not per_item_flops:
        return 0.0
    total = sum(per_item_flops)
    largest = max(per_item_flops)
    return largest + amortization * (total - largest)


@dataclass
class Batch:
    """A closed batch ready to execute: the items and their amortized cost."""

    items: List[Any]
    flops: float
    opened_at: float

    def __len__(self) -> int:
        return len(self.items)


class BatchAccumulator:
    """Collects items until a size or deadline boundary closes the batch."""

    def __init__(self, config: Optional[BatchingConfig] = None) -> None:
        self.config = config or BatchingConfig()
        self._items: List[Any] = []
        self._flops: List[float] = []
        self._opened_at: float = 0.0
        # Boundary knobs hoisted to plain attributes: add() runs once per
        # request in the replay hot loop.
        self._max_size = self.config.max_batch_size
        self._max_wait = self.config.max_wait_s
        #: Absolute deadline of the currently open batch (None when empty).
        self.deadline: Optional[float] = None
        #: Bumped on every flush; timeout events compare generations so a
        #: stale timer never flushes a newer batch.
        self.generation: int = 0

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: Any, flops: float, now: float) -> Optional[Batch]:
        """Add ``item``; returns the closed batch if this addition filled it.

        When the returned value is ``None`` and ``len(self) == 1``, the
        caller should arrange a flush at :attr:`deadline`.
        """
        items = self._items
        if not items:
            self._opened_at = now
            self.deadline = now + self._max_wait
        items.append(item)
        self._flops.append(flops)
        if len(items) >= self._max_size or self._max_wait == 0.0:
            return self.flush()
        return None

    def flush(self) -> Optional[Batch]:
        """Close and return the open batch (``None`` when nothing is pending)."""
        if not self._items:
            return None
        batch = Batch(
            items=self._items,
            flops=batch_flops(self._flops, self.config.amortization),
            opened_at=self._opened_at,
        )
        self._items = []
        self._flops = []
        self.deadline = None
        self.generation += 1
        return batch
