"""Global request-placement policies.

These sit beside the per-batch :mod:`repro.edge.scheduler` policies — the
``ClusterScheduler`` family decides *how work drains once queued at a node*;
a placement policy decides *which cell each arriving request queues at* in
the first place.  They share the same :class:`~repro.utils.registry.Registry`
idiom so both families are configured by name.

All three policies are RNG-free and are invoked **after**
``MobilityModel.resolve`` has established the serving cell, so enabling any
of them leaves every random stream of the replay untouched (see
``docs/scheduling.md`` for the full determinism contract).

``naive``
    Serve at the serving cell.  Byte-identical metrics to running with no
    placement at all; kept as an explicit arm so e12 can price the machinery.
``shortest-queue``
    Serve at the reachable cell with the fewest outstanding placed requests,
    preferring the serving cell on ties, then its neighbours in backhaul
    order.  Greedy and demand-blind: balances queues but scatters each
    domain's requests across cells, diluting cache locality.
``max-flow``
    Every :attr:`~repro.sim.placement.spec.PlacementSpec.refresh_s` seconds,
    solve a min-cost flow of the previous window's observed ``(origin,
    domain)`` demand over the cell flow network (serve capacities from FLOPs
    minus queue depth, arc costs from backhaul forwarding plus expected miss
    penalties against the planned/observed cache contents).  Dispatch
    realizes the fractional plan with a deterministic largest-remainder
    rotation.  Consolidating each domain onto few cells is what buys the
    hit-ratio (and hence latency) edge over ``shortest-queue`` under
    pressure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caching.entry import general_model_key
from repro.edge.resources import encode_flops
from repro.sim.multicell import CLOUD, Cell
from repro.sim.placement.network import (
    RoutingPlan,
    concentrate_demand,
    solve_cache_placement,
    solve_routing,
)
from repro.sim.placement.optimizer import trace_domain_counts
from repro.utils.registry import Registry
from repro.workloads.traces import RequestTrace

placement_registry: Registry["PlacementPolicy"] = Registry("placement-policy")

_MICROSECONDS = 1_000_000.0


class PlacementPolicy:
    """Interface: pick the cell an arriving request should be served at."""

    name = "base"

    def prepare(self, runtime, simulator, trace: Optional[RequestTrace]) -> None:
        """One-time hook before the first arrival of a replay."""

    def route(self, runtime, simulator, request, serving: Cell) -> Cell:
        """Return the target cell for ``request`` (``serving`` is alive)."""
        raise NotImplementedError


@placement_registry.register("naive")
class NaivePlacement(PlacementPolicy):
    """Always serve at the serving cell (the engine's historical behaviour)."""

    name = "naive"

    def route(self, runtime, simulator, request, serving: Cell) -> Cell:
        return serving


@placement_registry.register("shortest-queue")
class ShortestQueuePlacement(PlacementPolicy):
    """Serve at the least-loaded reachable cell, serving cell first on ties."""

    name = "shortest-queue"

    def route(self, runtime, simulator, request, serving: Cell) -> Cell:
        outstanding = runtime.outstanding
        best = serving
        best_depth = outstanding.get(serving.name, 0)
        for neighbor in serving.neighbor_order:
            if neighbor.failed:
                continue
            depth = outstanding.get(neighbor.name, 0)
            if depth < best_depth:
                best = neighbor
                best_depth = depth
        return best


@placement_registry.register("max-flow")
class MaxFlowPlacement(PlacementPolicy):
    """Windowed min-cost-flow routing of demand over the cell flow network."""

    name = "max-flow"

    def __init__(self) -> None:
        self._plan: RoutingPlan = {}
        #: Dispatch state realizing fractional shares: totals per (origin,
        #: domain) and per-target sent counts, reset at every solve.
        self._dispatched: Dict[Tuple[str, str], int] = {}
        self._sent: Dict[Tuple[str, str, str], int] = {}
        #: Demand observed since the last solve, keyed by (origin, domain).
        self._window: Dict[Tuple[str, str], int] = {}
        self._trace_counts: Dict[str, int] = {}
        self._trace_span_s = 0.0
        self._next_solve: Optional[float] = None
        #: Per-cell domain sets the cache plan wants resident (steering targets).
        self._cache_targets: Dict[str, frozenset] = {}

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def prepare(self, runtime, simulator, trace: Optional[RequestTrace]) -> None:
        self._trace_counts = trace_domain_counts(trace)
        self._trace_span_s = _trace_span(trace)
        refresh = runtime.spec.refresh_s
        # The first window has no observations yet: seed it with the trace's
        # aggregate demand scaled down to one window and split uniformly
        # across cells (the expectation of uniform user placement — no RNG
        # stream is consumed or peeked).
        scale = refresh / self._trace_span_s if self._trace_span_s > 0 else 1.0
        seed_counts = {
            domain: max(1, int(round(count * scale)))
            for domain, count in self._trace_counts.items()
            if count > 0
        }
        cells = sorted(simulator.cells)
        seed_demand = {
            (origin, domain): max(1, int(round(count / len(cells))))
            for domain, count in seed_counts.items()
            for origin in cells
        }
        self._solve(runtime, simulator, seed_demand)
        self._next_solve = refresh

    def _solve(
        self, runtime, simulator, demand: Dict[Tuple[str, str], int]
    ) -> None:
        """Re-plan routing (and the cache-steering targets) from ``demand``."""
        cells = sorted(simulator.cells)
        counts: Dict[str, float] = {}
        for (_origin, domain), amount in demand.items():
            counts[domain] = counts.get(domain, 0.0) + amount
        sizes = {d: spec.size_bytes for d, spec in simulator.catalogue.items()}
        capacities_bytes = {
            name: simulator.cells[name].cache.capacity_bytes for name in cells
        }
        cache_plan = solve_cache_placement(
            concentrate_demand(counts, cells), sizes, capacities_bytes
        )
        self._cache_targets = {
            cell: frozenset(domains) for cell, domains in cache_plan.items()
        }
        serve_slots = self._serve_slots(runtime, simulator, counts, cells)
        cost = self._cost_function(runtime, simulator)
        self._plan = solve_routing(demand, serve_slots, cost)
        self._dispatched = {}
        self._sent = {}
        runtime.solves += 1

    def _serve_slots(
        self, runtime, simulator, counts: Dict[str, float], cells: List[str]
    ) -> Dict[str, int]:
        """Window serve capacity per cell: FLOPs throughput minus queue depth."""
        num_tokens = simulator.config.num_tokens
        weighted = 0.0
        total = 0.0
        for domain, count in counts.items():
            spec = simulator.catalogue.get(domain)
            if spec is None:
                continue
            weighted += count * encode_flops(spec.parameters, num_tokens)
            total += count
        mean_flops = weighted / total if total > 0 else 1.0
        refresh = runtime.spec.refresh_s
        slots: Dict[str, int] = {}
        for name in cells:
            cell = simulator.cells[name]
            if cell.failed:
                slots[name] = 0
                continue
            throughput = cell.server.compute.flops_per_second * refresh / mean_flops
            backlog = runtime.outstanding.get(name, 0)
            slots[name] = max(0, int(throughput) - backlog)
        return slots

    def _cost_function(self, runtime, simulator):
        """Integer-microsecond arc cost: forward time + expected miss penalty."""
        forward_bytes = runtime.spec.forward_bytes
        costs = simulator.costs
        catalogue = simulator.catalogue
        cells = simulator.cells
        cache_targets = self._cache_targets

        def route_cost_us(origin: str, domain: str, target: str) -> int:
            micros = 0.0
            if target != origin and forward_bytes > 0:
                micros += costs.transfer_time(origin, target, forward_bytes) * _MICROSECONDS
            spec = catalogue.get(domain)
            if spec is not None:
                cell = cells[target]
                key = general_model_key(domain)
                resident = cell.cache.peek(key) is not None
                planned = domain in cache_targets.get(target, ())
                if not resident and not planned:
                    micros += (
                        spec.build_cost_s
                        + costs.transfer_time(CLOUD, target, spec.size_bytes)
                    ) * _MICROSECONDS
            return int(round(micros))

        return route_cost_us

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def route(self, runtime, simulator, request, serving: Cell) -> Cell:
        now = simulator.engine.now
        if self._next_solve is not None and now >= self._next_solve:
            window = self._window or self._seed_from_trace(simulator)
            self._solve(runtime, simulator, window)
            self._window = {}
            refresh = runtime.spec.refresh_s
            while self._next_solve <= now:
                self._next_solve += refresh
        key = (serving.name, request.domain)
        self._window[key] = self._window.get(key, 0) + 1
        shares = self._plan.get(key)
        if not shares:
            return serving
        # Largest-remainder realization: route the (total+1)-th request to the
        # target whose realized count lags its fractional share the most.
        total = self._dispatched.get(key, 0)
        weight_sum = sum(weight for _target, weight in shares)
        best: Optional[Cell] = None
        best_name = ""
        best_score = float("-inf")
        for target_name, weight in shares:
            cell = simulator.cells.get(target_name)
            if cell is None or cell.failed:
                continue
            sent = self._sent.get((key[0], key[1], target_name), 0)
            score = weight * (total + 1) / weight_sum - sent
            if score > best_score:
                best = cell
                best_name = target_name
                best_score = score
        if best is None:
            return serving
        self._dispatched[key] = total + 1
        sent_key = (key[0], key[1], best_name)
        self._sent[sent_key] = self._sent.get(sent_key, 0) + 1
        return best

    def _seed_from_trace(self, simulator) -> Dict[Tuple[str, str], int]:
        """Fallback window demand when a window saw no arrivals at all."""
        cells = sorted(simulator.cells)
        if not cells or not self._trace_counts:
            return {}
        return {
            (origin, domain): max(1, int(round(count / len(cells))))
            for domain, count in self._trace_counts.items()
            for origin in cells
        }


def _trace_span(trace: Optional[RequestTrace]) -> float:
    """Arrival span of ``trace`` in seconds (0.0 when unknown)."""
    if not isinstance(trace, RequestTrace) or len(trace) == 0:
        return 0.0
    if trace.is_columnar:
        timestamps = trace.timestamps
        return float(timestamps.max() - timestamps.min())
    times = [request.timestamp for request in trace.requests]
    return float(max(times) - min(times))


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered placement policy by name."""
    return placement_registry.create(name)
