"""Flow-network global scheduling and offline cache placement.

The paper's caching question asked at cluster scale: treat the multi-cell
deployment as a flow network — cells as capacitated nodes, backhaul links
with bandwidths, per-domain demand — and place both *requests* (online, per
arrival) and *semantic models* (offline, before the replay) globally.

Public surface:

* :class:`~repro.sim.placement.spec.PlacementSpec` — pure-data policy
  description carried by scenario specs and CLIs.
* :data:`~repro.sim.placement.policies.placement_registry` — the ``naive`` /
  ``shortest-queue`` / ``max-flow`` request-placement policy family.
* :class:`~repro.sim.placement.runtime.PlacementRuntime` — the live state
  ``MultiCellSimulator.configure_placement`` installs.
* :mod:`~repro.sim.placement.optimizer` — the offline cache-placement
  optimizer (min-cost flow over the demand matrix) behind
  ``PlacementSpec(prewarm=True)``.

See ``docs/scheduling.md`` for the model, the policy semantics and the
determinism contract.
"""

from repro.sim.placement.network import (
    concentrate_demand,
    solve_cache_placement,
    solve_routing,
)
from repro.sim.placement.optimizer import (
    apply_prewarm,
    plan_cache_placement,
    trace_domain_counts,
    uniform_demand_matrix,
)
from repro.sim.placement.policies import (
    MaxFlowPlacement,
    NaivePlacement,
    PlacementPolicy,
    ShortestQueuePlacement,
    make_policy,
    placement_registry,
)
from repro.sim.placement.runtime import PlacementRuntime
from repro.sim.placement.spec import PLACEMENT_POLICY_NAMES, PlacementSpec

__all__ = [
    "PLACEMENT_POLICY_NAMES",
    "PlacementPolicy",
    "PlacementRuntime",
    "PlacementSpec",
    "MaxFlowPlacement",
    "NaivePlacement",
    "ShortestQueuePlacement",
    "apply_prewarm",
    "concentrate_demand",
    "make_policy",
    "placement_registry",
    "plan_cache_placement",
    "solve_cache_placement",
    "solve_routing",
    "trace_domain_counts",
    "uniform_demand_matrix",
]
