"""Flow-network model of the multi-cell deployment.

The deployment is modelled as a bipartite flow network:

* **Demand nodes** — one per ``(origin cell, domain)`` pair, fed from a
  virtual source with capacity equal to the expected request count for the
  window being solved.
* **Cell nodes** — one per edge cell, drained into a virtual sink with
  capacity equal to the cell's remaining serve slots for the window
  (FLOPs-derived throughput minus outstanding queue depth).
* **Routing arcs** — demand node → cell node, weighted by the integer
  microsecond cost of serving that domain there (backhaul forwarding time
  plus an expected miss penalty when the cell is not planned/observed to hold
  the domain's semantic model).

:func:`solve_routing` runs networkx's ``max_flow_min_cost`` over this graph
and extracts, per ``(origin, domain)``, a weighted target list realized at
dispatch time by a deterministic largest-remainder rotation.  Demand the
network cannot place (every cell saturated) stays at its origin.

:func:`solve_cache_placement` reuses the same machinery for the *offline*
question — which semantic models should live at which cells — as a min-cost
flow in kilobyte units: source → ``(domain, cell)`` arcs sized to the model,
``(domain, cell)`` → cell arcs carrying a negative per-KB value proportional
to demand density, cell → sink arcs sized to the cache.  Only fully-placed
models count (a partially transferred model serves nothing).

Everything here is pure and deterministic: graphs are built in sorted order,
capacities and weights are integers, and the solver (network simplex) is
exact — identical inputs produce identical plans on every platform.

networkx is an install-time dependency of the package; the import is still
gated so environments that strip optional extras fail with a clear
:class:`~repro.exceptions.ConfigurationError` only when a flow solve is
actually requested (the ``naive`` and ``shortest-queue`` policies never
need it).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import ConfigurationError

try:  # gated: only the flow-solving policies need it
    import networkx as _networkx
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _networkx = None

#: Virtual source/sink node labels (tuples never collide with cell names).
SOURCE = ("source",)
SINK = ("sink",)

#: Kilobyte unit for the cache-placement solve.
_KB = 1024

#: Integer scale applied to demand density when building cache-value weights.
_DENSITY_SCALE = 1000


def require_networkx():
    """Return the networkx module or raise a configuration error."""
    if _networkx is None:
        raise ConfigurationError(
            "the max-flow placement policies need networkx, which is not "
            "installed; use the 'naive' or 'shortest-queue' policy instead"
        )
    return _networkx


#: ``plan[(origin, domain)]`` — ordered ``(target cell, weight)`` shares.
RoutingPlan = Dict[Tuple[str, str], List[Tuple[str, int]]]


def solve_routing(
    demand: Mapping[Tuple[str, str], int],
    capacities: Mapping[str, int],
    route_cost_us: Callable[[str, str, str], int],
) -> RoutingPlan:
    """Min-cost-flow routing of windowed demand onto capacitated cells.

    Parameters
    ----------
    demand:
        Expected request count per ``(origin cell, domain)`` for the window.
    capacities:
        Serve slots per cell for the window; non-positive cells are excluded.
    route_cost_us:
        ``(origin, domain, target) -> int`` microsecond cost of placing one
        such request on ``target``.

    Returns
    -------
    Plan mapping each demanded ``(origin, domain)`` to ordered
    ``(target, weight)`` shares: the origin first (local leftover), then
    remote targets by increasing cost.  Pairs whose demand the network kept
    entirely local are omitted (dispatch treats a missing entry as "serve at
    origin").
    """
    nx = require_networkx()
    cells = sorted(name for name, slots in capacities.items() if slots > 0)
    pairs = sorted((pair, count) for pair, count in demand.items() if count > 0)
    if not cells or not pairs:
        return {}
    graph = nx.DiGraph()
    for cell in cells:
        graph.add_edge(("cell", cell), SINK, capacity=int(capacities[cell]), weight=0)
    costs: Dict[Tuple[str, str, str], int] = {}
    for (origin, domain), count in pairs:
        node = ("demand", origin, domain)
        graph.add_edge(SOURCE, node, capacity=int(count), weight=0)
        for cell in cells:
            cost = int(route_cost_us(origin, domain, cell))
            costs[(origin, domain, cell)] = cost
            graph.add_edge(node, ("cell", cell), capacity=int(count), weight=cost)
    flow = nx.max_flow_min_cost(graph, SOURCE, SINK)
    plan: RoutingPlan = {}
    for (origin, domain), count in pairs:
        node_flow = flow.get(("demand", origin, domain), {})
        local = 0
        remote: List[Tuple[str, int]] = []
        for target_node, amount in node_flow.items():
            amount = int(amount)
            if amount <= 0:
                continue
            target = target_node[1]
            if target == origin:
                local += amount
            else:
                remote.append((target, amount))
        if not remote:
            continue  # dispatch default: everything stays at the origin
        local += count - (local + sum(weight for _, weight in remote))
        remote.sort(key=lambda share: (costs[(origin, domain, share[0])], share[0]))
        shares = ([(origin, local)] if local > 0 else []) + remote
        plan[(origin, domain)] = shares
    return plan


def solve_cache_placement(
    demand_matrix: Mapping[Tuple[str, str], float],
    sizes_bytes: Mapping[str, int],
    capacities_bytes: Mapping[str, int],
) -> Dict[str, List[str]]:
    """Offline cache placement as min-cost flow over the demand matrix.

    Parameters
    ----------
    demand_matrix:
        Expected request count per ``(cell, domain)``.
    sizes_bytes:
        Model footprint per domain.
    capacities_bytes:
        Cache capacity per cell.

    Returns
    -------
    ``{cell: [domains]}`` — the models to pre-load per cell, hottest first.
    Only fully-placed models are returned; a model the flow could only
    partially fit is dropped (a partial copy serves no requests).
    """
    nx = require_networkx()
    graph = nx.DiGraph()
    size_kb = {
        domain: max(1, math.ceil(size / _KB)) for domain, size in sizes_bytes.items()
    }
    usable = False
    for cell in sorted(capacities_bytes):
        cap_kb = int(capacities_bytes[cell] // _KB)
        if cap_kb > 0:
            graph.add_edge(("cell", cell), SINK, capacity=cap_kb, weight=0)
            usable = True
    if not usable:
        return {cell: [] for cell in capacities_bytes}
    for (cell, domain), count in sorted(demand_matrix.items()):
        if count <= 0 or domain not in size_kb:
            continue
        value = int(round(_DENSITY_SCALE * count / size_kb[domain]))
        if value <= 0:
            continue
        node = ("copy", domain, cell)
        graph.add_edge(SOURCE, node, capacity=size_kb[domain], weight=0)
        graph.add_edge(node, ("cell", cell), capacity=size_kb[domain], weight=-value)
    if SOURCE not in graph:
        return {cell: [] for cell in capacities_bytes}
    flow = nx.max_flow_min_cost(graph, SOURCE, SINK)
    placed: Dict[str, List[str]] = {cell: [] for cell in capacities_bytes}
    ranked = sorted(demand_matrix.items(), key=lambda item: (-item[1], item[0]))
    for (cell, domain), _count in ranked:
        amount = flow.get(("copy", domain, cell), {}).get(("cell", cell), 0)
        if domain in size_kb and int(amount) == size_kb[domain]:
            placed[cell].append(domain)
    return placed


def concentrate_demand(
    domain_counts: Mapping[str, float], cells: Sequence[str]
) -> Dict[Tuple[str, str], float]:
    """Shape aggregate domain counts into a cell-specializing demand matrix.

    Uniformly split demand gives every cell an identical cache plan — no
    cell specializes and remote placement buys nothing.  This helper breaks
    the symmetry deterministically: domains are ranked by popularity and
    assigned ``max(1, round(share x num_cells))`` anchor cells each, rotating
    a cursor so consecutive domains land on different cells; each domain's
    demand is split equally across its anchors.  The resulting matrix feeds
    :func:`solve_cache_placement` to produce the per-cell specialization the
    ``max-flow`` router steers towards.
    """
    names = list(cells)
    total = float(sum(domain_counts.values()))
    if not names or total <= 0:
        return {}
    ranked = sorted(domain_counts.items(), key=lambda item: (-item[1], item[0]))
    matrix: Dict[Tuple[str, str], float] = {}
    cursor = 0
    for domain, count in ranked:
        if count <= 0:
            continue
        homes = max(1, min(len(names), int(round(len(names) * count / total))))
        share = count / homes
        for step in range(homes):
            cell = names[(cursor + step) % len(names)]
            matrix[(cell, domain)] = matrix.get((cell, domain), 0.0) + share
        cursor = (cursor + homes) % len(names)
    return matrix
