"""Pure-data description of a global request-placement policy.

A :class:`PlacementSpec` is the placement analogue of
:class:`~repro.sim.resilience.ResiliencePolicy`: a frozen, JSON-serializable
value object that scenario specs, CLIs and experiment configs hand to
``SimBackend.configure_placement``.  It carries no behaviour — the policy
implementations live in :mod:`repro.sim.placement.policies` and are looked up
by :attr:`PlacementSpec.policy` at configure time.

Field semantics
---------------
``policy``
    One of :data:`PLACEMENT_POLICY_NAMES`.  ``naive`` keeps every request at
    its serving cell (the engine's historical behaviour, kept as an explicit
    experiment arm); ``shortest-queue`` routes each arrival to the
    least-loaded reachable cell; ``max-flow`` periodically solves a
    min-cost-flow routing of windowed demand over the cell/backhaul flow
    network.
``prewarm``
    Run the offline cache-placement optimizer over the replayed trace's
    demand matrix before the first arrival and pre-load the chosen semantic
    models into each cell's cache.  Composable with any ``policy``.
``refresh_s``
    Sliding-window length for the ``max-flow`` policy: demand observed in one
    window parameterizes the solve that routes the next.
``forward_bytes``
    Request payload size charged to the backhaul when a request is placed on
    a non-serving cell (the semantic feature upload is small compared to the
    models themselves).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Mapping

#: Registered policy names, in documentation order.
PLACEMENT_POLICY_NAMES = ("naive", "shortest-queue", "max-flow")


@dataclass(frozen=True)
class PlacementSpec:
    """Declarative configuration of global request placement."""

    policy: str = "naive"
    prewarm: bool = False
    refresh_s: float = 2.0
    forward_bytes: float = 4096.0

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICY_NAMES:
            raise ValueError(
                f"unknown placement policy {self.policy!r}; "
                f"choose from {', '.join(PLACEMENT_POLICY_NAMES)}"
            )
        if self.refresh_s <= 0:
            raise ValueError(f"refresh_s must be positive, got {self.refresh_s}")
        if self.forward_bytes < 0:
            raise ValueError(f"forward_bytes must be >= 0, got {self.forward_bytes}")

    def to_dict(self) -> dict:
        """JSON-ready payload; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PlacementSpec":
        """Rebuild from :meth:`to_dict` output, rejecting unknown fields."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown PlacementSpec fields: {', '.join(sorted(unknown))}"
            )
        return cls(**dict(payload))
