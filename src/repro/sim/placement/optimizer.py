"""Offline cache-placement optimizer ("which semantic models at which cells").

Given the demand a replay is about to serve, decide — before the first
arrival — which general semantic models each cell should already hold, and
pre-load them.  Online policies (LRU/LFU/semantic-popularity) pay the
cold-start fetch storm and then chase the workload; the offline plan sees the
whole trace's demand matrix at once, so its hit ratio upper-bounds what any
online policy of the same cache size can reach and anchors the e12 tables.

The optimization itself is :func:`repro.sim.placement.network.solve_cache_placement`
— min-cost flow in kilobyte units over the demand matrix.  This module owns
the simulator-facing glue: estimating the demand matrix from a trace and
applying a plan to live caches.

Demand estimation deliberately splits each domain's trace-wide request count
uniformly across cells.  That equals the *expectation* of the mobility
model's uniform user placement without consuming or peeking at any RNG
stream — prewarming must not perturb the replay's randomness (the
determinism contract in ``docs/scheduling.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caching.entry import CacheEntry, GENERAL_MODEL, general_model_key
from repro.sim.placement.network import solve_cache_placement
from repro.workloads.traces import RequestTrace


def trace_domain_counts(trace: Optional[RequestTrace]) -> Dict[str, int]:
    """Per-domain request counts of ``trace`` (empty when unavailable)."""
    if isinstance(trace, RequestTrace) and len(trace) > 0:
        return trace.domain_counts()
    return {}


def uniform_demand_matrix(
    domain_counts: Dict[str, int], cells: List[str]
) -> Dict[Tuple[str, str], float]:
    """Split aggregate domain counts uniformly across ``cells``."""
    if not cells:
        return {}
    share = 1.0 / len(cells)
    return {
        (cell, domain): count * share
        for domain, count in domain_counts.items()
        if count > 0
        for cell in cells
    }


def plan_cache_placement(simulator, trace: Optional[RequestTrace]) -> Dict[str, List[str]]:
    """Solve the offline placement for ``simulator`` against ``trace``."""
    counts = trace_domain_counts(trace)
    cells = sorted(simulator.cells)
    demand = uniform_demand_matrix(counts, cells)
    sizes = {domain: spec.size_bytes for domain, spec in simulator.catalogue.items()}
    capacities = {
        name: simulator.cells[name].cache.capacity_bytes for name in cells
    }
    return solve_cache_placement(demand, sizes, capacities)


def apply_prewarm(simulator, plan: Dict[str, List[str]]) -> Tuple[int, int]:
    """Pre-load ``plan``'s models into the simulator's caches at t=0.

    Returns ``(models placed, bytes placed)``.  The plan is capacity-feasible
    by construction (the flow solve rounds sizes up and capacities down to
    whole KB), so insertion order cannot force the cache policy to evict an
    earlier prewarmed entry; entries the policy still rejects (zero-capacity
    caches) are simply skipped.
    """
    placed = 0
    placed_bytes = 0
    now = simulator.engine.now
    for cell_name in sorted(plan):
        cell = simulator.cells.get(cell_name)
        if cell is None:
            continue
        for domain in plan[cell_name]:
            spec = simulator.catalogue.get(domain)
            if spec is None:
                continue
            key = general_model_key(domain)
            if cell.cache.peek(key) is not None:
                continue
            if spec.size_bytes > cell.cache.capacity_bytes:
                continue
            cell.cache.put(
                CacheEntry(
                    key=key,
                    kind=GENERAL_MODEL,
                    domain=domain,
                    size_bytes=spec.size_bytes,
                    build_cost_s=spec.build_cost_s,
                ),
                now=now,
            )
            if cell.cache.peek(key) is not None:
                placed += 1
                placed_bytes += spec.size_bytes
    return placed, placed_bytes
