"""Simulator-facing placement surface.

A :class:`PlacementRuntime` is what ``MultiCellSimulator.configure_placement``
installs: it binds a :class:`~repro.sim.placement.spec.PlacementSpec` to its
policy implementation, owns the per-cell outstanding-request counters the
policies consult, applies the offline prewarm plan at replay start, and
accumulates the counters the scenario runner surfaces as the placement
summary columns.

The runtime is engine-agnostic on purpose: the serial engine calls
``prepare``/``route``/``admit``/``release`` directly, the sharded and
vectorized backends reach the same code by delegating their replay to the
serial engine (recording a ``fallback_reason``, the PR 9 contract).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.placement.optimizer import apply_prewarm, plan_cache_placement
from repro.sim.placement.policies import make_policy
from repro.sim.placement.spec import PlacementSpec
from repro.workloads.traces import RequestTrace


class PlacementRuntime:
    """Live state of one replay's placement policy."""

    __slots__ = (
        "spec",
        "policy",
        "outstanding",
        "forwards",
        "solves",
        "prewarmed_models",
        "prewarmed_bytes",
        "prepared",
    )

    def __init__(self, spec: PlacementSpec) -> None:
        self.spec = spec
        self.policy = make_policy(spec.policy)
        #: Requests currently placed at each cell (admitted minus released).
        self.outstanding: Dict[str, int] = {}
        #: Requests served away from their serving cell.
        self.forwards = 0
        #: Flow-network solves performed (max-flow policy only).
        self.solves = 0
        self.prewarmed_models = 0
        self.prewarmed_bytes = 0
        self.prepared = False

    def prepare(self, simulator, trace: Optional[RequestTrace]) -> None:
        """One-time replay setup: counters, offline prewarm, policy state."""
        if self.prepared:
            return
        self.prepared = True
        self.outstanding = {name: 0 for name in simulator.cells}
        if self.spec.prewarm:
            plan = plan_cache_placement(simulator, trace)
            self.prewarmed_models, self.prewarmed_bytes = apply_prewarm(
                simulator, plan
            )
        self.policy.prepare(self, simulator, trace)

    def route(self, simulator, request, serving):
        """Target cell for ``request`` (``serving`` is alive when called)."""
        return self.policy.route(self, simulator, request, serving)

    def admit(self, request, cell_name: str) -> None:
        """Count ``request`` against ``cell_name``'s placed queue."""
        request.placed_cell = cell_name
        self.outstanding[cell_name] = self.outstanding.get(cell_name, 0) + 1

    def rehome(self, request, cell_name: str) -> None:
        """Move the placed counter when a failover re-homes the request."""
        self.release(request)
        self.admit(request, cell_name)

    def release(self, request) -> None:
        """Drop the placed counter at the request's terminal event."""
        placed = request.placed_cell
        if placed:
            count = self.outstanding.get(placed, 0)
            if count > 0:
                self.outstanding[placed] = count - 1
            request.placed_cell = ""

    def summary(self) -> Dict[str, int]:
        """Counters surfaced by the scenario runner's placement columns."""
        return {
            "forwards": self.forwards,
            "solves": self.solves,
            "prewarmed_models": self.prewarmed_models,
            "prewarmed_bytes": self.prewarmed_bytes,
        }
