"""The request object flowing through the multi-cell event simulation.

Each request walks the lifecycle::

    arrival -> (handover?) -> cache lookup -> (model fetch?) -> batch queue
            -> encode on the edge server -> downlink transmit -> completion

Every stage stamps its timestamp on the request, so latency can be decomposed
after the run (how much time went to fetching models vs. waiting for a batch
vs. compute vs. the radio link).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Lifecycle states.
ARRIVED = "arrived"
FETCHING = "fetching"
QUEUED = "queued"
COMPLETED = "completed"
#: Terminal state of a request that could not be served: its serving cell
#: failed and no alive cell was reachable (only possible under fault
#: injection, never in a healthy deployment).
DROPPED = "dropped"
#: Terminal state under a resilience policy: the serving cell's outstanding
#: queue was at ``shed_queue_depth`` so the request was rejected at admission.
SHED = "shed"
#: Terminal state under a resilience policy: the request's ``deadline_s``
#: budget expired before it could be batched.
DEADLINE_EXCEEDED = "deadline_exceeded"

#: Statuses a request can end the run in.
TERMINAL_STATUSES = (COMPLETED, DROPPED, SHED, DEADLINE_EXCEEDED)

#: Transient status of a request object abandoned by the sharded backend
#: because its lifecycle continued on another shard (as a new request id).
#: Never a terminal status — the cross-shard continuation terminates instead —
#: but resilience timers (hedging) check it so they never act on a husk.
FORWARDED = "forwarded"

#: Cache-lookup outcomes.
LOCAL_HIT = "hit"
NEIGHBOR_FETCH = "neighbor"
CLOUD_FETCH = "cloud"
COALESCED = "coalesced"
CACHE_OUTCOMES = (LOCAL_HIT, NEIGHBOR_FETCH, CLOUD_FETCH, COALESCED)

#: Sentinel for "stage not reached yet".
UNSET = -1.0


@dataclass(slots=True)
class Request:
    """One user request replayed through the simulator.

    ``slots=True`` keeps the per-request footprint flat across 200k+-request
    replays (no per-instance ``__dict__``), and the order of the six required
    fields is part of the contract: the replay hot loop constructs requests
    positionally.

    Attributes
    ----------
    request_id:
        Monotonically increasing id assigned by the simulator.
    user_id / domain:
        Who sent the request and which domain model it needs.
    model_key:
        Cache key of the semantic model serving the request.
    arrival_time:
        Trace timestamp of the request.
    num_tokens:
        Message length driving the encode FLOP cost.
    cell:
        Name of the serving cell (fixed after mobility/handover resolution).
    """

    request_id: int
    user_id: str
    domain: str
    model_key: str
    arrival_time: float
    num_tokens: int
    cell: str = ""
    status: str = ARRIVED
    cache_outcome: str = ""
    handover: bool = False
    lookup_time: float = UNSET
    fetch_done_time: float = UNSET
    enqueue_time: float = UNSET
    compute_start_time: float = UNSET
    compute_done_time: float = UNSET
    completion_time: float = UNSET
    #: Retry attempts consumed so far (resilience policies only).
    attempts: int = 0
    #: Whether this physical request is the hedged duplicate of another.
    is_hedge: bool = False
    #: Cell whose outstanding-queue counter this request currently occupies
    #: ("" when not admitted); maintained only under a resilience policy.
    admitted_cell: str = ""
    #: Cell whose placed-queue counter this request currently occupies
    #: ("" when not placed); maintained only under a placement policy.
    placed_cell: str = ""

    @property
    def completed(self) -> bool:
        """Whether the request reached the end of its lifecycle."""
        return self.status == COMPLETED

    @property
    def total_latency(self) -> float:
        """Arrival-to-completion latency in seconds (``UNSET`` if unfinished)."""
        if self.completion_time == UNSET:
            return UNSET
        return self.completion_time - self.arrival_time

    @property
    def fetch_delay(self) -> float:
        """Seconds spent establishing the model (0 on a local hit)."""
        if self.fetch_done_time == UNSET or self.lookup_time == UNSET:
            return 0.0
        return self.fetch_done_time - self.lookup_time

    @property
    def batch_wait(self) -> float:
        """Seconds between joining the batch queue and compute starting."""
        if self.compute_start_time == UNSET or self.enqueue_time == UNSET:
            return 0.0
        return self.compute_start_time - self.enqueue_time
