"""The ``SimBackend`` API: one simulator surface, many execution strategies.

Everything above the simulator — scenario timelines (:mod:`repro.scenarios`),
the e-experiments (:mod:`repro.experiments`), both CLIs — drives a replay
through the small protocol defined here instead of reaching into
:class:`~repro.sim.simulator.MultiCellSimulator` directly.  A backend is
anything that can

* **replay** a request trace and hand back a
  :class:`~repro.sim.metrics.SimulationReport`,
* expose **per-cell state** (the ``cells`` mapping of live
  :class:`~repro.sim.multicell.Cell` objects, or a merged equivalent),
* apply the **fault vocabulary** (``fail_cell``, ``wipe_cell_cache``,
  ``resize_cell_cache``, ``degrade_downlink``, …) at scheduled simulation
  times via :meth:`SimBackend.schedule_calls`,
* invoke the **``on_request_end``** hook once per request at its terminal
  event (completion or drop), and
* **assemble the report** from whatever it executed.

Two backends ship today:

``serial``
    :class:`~repro.sim.simulator.MultiCellSimulator` itself — one process,
    one event heap, the bit-identity reference every committed result table
    pins.

``sharded``
    :class:`~repro.sim.sharded.ShardedSimulator` — cells partitioned across
    fork-pool workers advancing in conservative time windows (see
    :mod:`repro.sim.sharded`).  Deterministic under its own semantics and
    pinned by its own golden tables; statistically equivalent to serial, not
    byte-identical.

``vectorized``
    :class:`~repro.sim.vectorized.VectorizedSimulator` — the serial
    semantics replayed through a numpy cohort kernel (see
    :mod:`repro.sim.vectorized`).  Bit-identical to serial: every fresh
    (deployment, config, trace, timeline) signature is cross-checked against
    the serial engine, and ineligible shapes (resilience policies, cell
    outage timelines, object traces) silently take the serial path.

Backend selection is spelled identically everywhere: a ``--backend`` CLI
flag on both entry points, overridable by the ``REPRO_BACKEND`` environment
variable (explicit flags beat the environment).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Protocol, Sequence, runtime_checkable

from repro.exceptions import ConfigurationError
from repro.sim.metrics import SimulationReport
from repro.sim.multicell import Cell, CellConfig, ModelSpec
from repro.sim.request import Request

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV = "REPRO_BACKEND"

#: Name of the default (reference) backend.
DEFAULT_BACKEND = "serial"


@runtime_checkable
class SimBackend(Protocol):
    """Structural interface every simulator backend satisfies.

    :class:`~repro.sim.simulator.MultiCellSimulator` is the reference
    implementation; :class:`~repro.sim.sharded.ShardedSimulator` the first
    alternative.  The protocol is ``runtime_checkable`` so tests can assert
    conformance with ``isinstance``.
    """

    #: Registry name ("serial", "sharded", ...).
    backend_name: str

    #: Per-cell live state, keyed by cell name.
    cells: Dict[str, Cell]

    #: Called once per request at its terminal event (completion or drop).
    on_request_end: Optional[Callable[[Request], None]]

    def replay(self, trace, run: bool = True) -> SimulationReport:
        """Replay a request trace to completion and return the run's report."""
        ...

    def schedule_calls(self, time_s: float, calls: Sequence[tuple], label: str = "") -> None:
        """Schedule ordered ``(method_name, args)`` fault calls at ``time_s``."""
        ...

    def report(self, wall_clock_s: float) -> SimulationReport:
        """Assemble the report for everything run so far."""
        ...

    # Fault vocabulary -------------------------------------------------- #
    def fail_cell(self, name: str) -> None: ...

    def recover_cell(self, name: str) -> None: ...

    def wipe_cell_cache(self, name: str) -> int: ...

    def resize_cell_cache(self, name: str, capacity_bytes: int) -> None: ...

    def degrade_downlink(self, name: str, factor: float) -> None: ...

    def restore_downlink(self, name: str) -> None: ...

    def set_handover_probability(self, probability: float) -> None: ...

    def alive_cells(self) -> list: ...

    # Resilience -------------------------------------------------------- #
    def configure_resilience(self, policy, seed: int = 0) -> None:
        """Install a request-level :class:`~repro.sim.resilience.ResiliencePolicy`.

        Must be called before :meth:`replay`; ``None`` (or an all-off policy)
        restores the exact pre-resilience behaviour.  Every backend executes
        the same pure-data policy — the sharded backend ships it to each
        shard so both engines make identical decisions.
        """
        ...

    # Placement --------------------------------------------------------- #
    def configure_placement(self, spec) -> None:
        """Install a global :class:`~repro.sim.placement.PlacementSpec`.

        Must be called before :meth:`replay`; ``None`` restores the exact
        unplaced behaviour.  The serial engine executes placement natively;
        the sharded and vectorized backends fall back to the serial path with
        a recorded ``fallback_reason`` (global routing contradicts their
        shard-local / cohort-batched structure).
        """
        ...

    def placement_summary(self) -> Optional[dict]:
        """Placement counters of the last replay (``None`` when unplaced)."""
        ...


#: A backend factory: ``(cells, catalogue, config, seed, **options) -> SimBackend``.
BackendFactory = Callable[..., SimBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> list:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def resolve_backend_name(requested: Optional[str] = None) -> str:
    """The backend to use: explicit request > ``REPRO_BACKEND`` > ``serial``.

    An explicit CLI flag always wins; the environment variable only fills in
    when the caller passed ``None`` (flag left at its default).
    """
    if requested:
        return requested
    return os.environ.get(BACKEND_ENV, "").strip() or DEFAULT_BACKEND


def create_backend(
    name: Optional[str],
    cells: Sequence[CellConfig],
    catalogue: Dict[str, ModelSpec],
    config=None,
    seed=None,
    **options,
) -> SimBackend:
    """Instantiate the backend ``name`` resolves to over the given deployment.

    ``options`` are backend-specific knobs (e.g. ``shards=4`` for the sharded
    backend); factories reject options they do not understand.
    """
    resolved = resolve_backend_name(name)
    factory = _REGISTRY.get(resolved)
    if factory is None:
        raise ConfigurationError(
            f"unknown simulator backend {resolved!r}; available: {', '.join(available_backends())}"
        )
    return factory(cells, catalogue, config=config, seed=seed, **options)


def _serial_factory(cells, catalogue, config=None, seed=None, **options) -> SimBackend:
    from repro.sim.simulator import MultiCellSimulator

    # The serial engine has no backend-specific knobs; `shards` and
    # `worker_timeout` are accepted (and ignored / must be 1-or-unset) so
    # callers can pass a uniform option set whatever backend is selected.
    shards = options.pop("shards", None)
    options.pop("worker_timeout", None)
    if options:
        raise ConfigurationError(f"serial backend got unknown options: {sorted(options)}")
    if shards not in (None, 1):
        raise ConfigurationError(f"serial backend is single-process; got shards={shards}")
    return MultiCellSimulator(cells, catalogue, config=config, seed=seed)


def _sharded_factory(cells, catalogue, config=None, seed=None, **options) -> SimBackend:
    from repro.sim.sharded import ShardedConfig, ShardedSimulator

    shards = options.pop("shards", None)
    sharded_config = options.pop("sharded_config", None)
    worker_timeout = options.pop("worker_timeout", None)
    if options:
        raise ConfigurationError(f"sharded backend got unknown options: {sorted(options)}")
    if sharded_config is None:
        kwargs = {} if shards is None else {"num_shards": int(shards)}
        if worker_timeout is not None:
            kwargs["worker_timeout_s"] = float(worker_timeout)
        sharded_config = ShardedConfig(**kwargs)
    elif shards is not None or worker_timeout is not None:
        raise ConfigurationError(
            "pass either sharded_config or shards/worker_timeout, not both"
        )
    return ShardedSimulator(cells, catalogue, config=config, seed=seed, sharded=sharded_config)


def _vectorized_factory(cells, catalogue, config=None, seed=None, **options) -> SimBackend:
    from repro.sim.vectorized import VectorizedSimulator

    # Accept the uniform option set (see _serial_factory) plus the kernel's
    # own `cross_check` knob: True (default) validates every fresh signature
    # against the serial engine; False trusts the kernel (differential tests
    # use this so the compared result genuinely comes from the kernel).
    shards = options.pop("shards", None)
    options.pop("worker_timeout", None)
    cross_check = options.pop("cross_check", True)
    if options:
        raise ConfigurationError(f"vectorized backend got unknown options: {sorted(options)}")
    if shards not in (None, 1):
        raise ConfigurationError(f"vectorized backend is single-process; got shards={shards}")
    return VectorizedSimulator(
        cells, catalogue, config=config, seed=seed, cross_check=cross_check
    )


register_backend("serial", _serial_factory)
register_backend("sharded", _sharded_factory)
register_backend("vectorized", _vectorized_factory)
