"""The discrete-event simulation engine: a global event queue with a virtual clock.

This is the substrate every scaling experiment plugs into.  Events are
processed in timestamp order (ties broken by scheduling order, so same-time
events run FIFO); actions receive the simulation instance and may schedule
further events.

The engine originally lived in :mod:`repro.edge.events` and was sized for the
small E7/E8 sweeps; it now also drives the multi-cell request simulator
(:mod:`repro.sim.simulator`), which replays hundreds of thousands of requests
in one process.  Hot-path choices that keep it fast at that scale:

* Heap items are ``(time, sequence, payload)`` tuples, so ``heapq`` sift
  comparisons resolve on the first two elements in C instead of calling a
  Python ``__lt__`` (which dominated profiles of 200k-request replays).
* The payload is the bare action callable for fire-and-forget events
  (:meth:`post`), and a cancellable :class:`_ScheduledEvent` handle only when
  the caller asked for one (:meth:`schedule`).
* :meth:`pending` reads a live counter maintained on schedule/cancel/pop
  instead of scanning the whole heap — run loops poll it.
* :meth:`run` inlines the pop loop (no per-event :meth:`step` call, no
  :class:`EventRecord` allocation unless tracing is on) and pauses the cyclic
  garbage collector for its duration: events, requests and closures die by
  reference counting, and generation-0 scans otherwise trigger thousands of
  times across a long replay.
* :meth:`run_stream` merges a time-sorted arrival stream into the run loop
  without the stream ever touching the heap, so replaying a 50k-request trace
  keeps the heap at the size of the genuinely concurrent work.

For large runs construct the simulation with ``trace=False`` so the per-event
:class:`EventRecord` history is not accumulated.
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError

EventAction = Callable[["Simulation"], None]


class _ScheduledEvent:
    """Handle for one scheduled action; returned by :meth:`Simulation.schedule`.

    Ordering lives in the heap tuple, not here — the event itself only carries
    the payload plus the cancellation state.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled", "_queued", "_owner")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: EventAction,
        label: str,
        owner: "Simulation",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False
        self._queued = True
        self._owner = owner


@dataclass(slots=True)
class EventRecord:
    """A processed event, kept for tracing and assertions in tests."""

    time: float
    label: str


class Simulation:
    """Event queue with a virtual clock.

    Actions scheduled with :meth:`schedule` receive the simulation instance
    and may schedule further events; :meth:`run` processes events until the
    queue is empty or a time/step limit is hit.

    Parameters
    ----------
    trace:
        When true (the default), every processed event is appended to
        :attr:`processed`.  Large-scale replays disable this to keep memory
        flat across millions of events.
    """

    def __init__(self, trace: bool = True) -> None:
        self.now: float = 0.0
        self.trace = trace
        self._queue: List[Tuple[float, int, _ScheduledEvent]] = []
        self._sequence: int = 0
        self._live: int = 0
        self.processed: List[EventRecord] = []
        self.events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self.now + delay
        self._sequence += 1
        event = _ScheduledEvent(time, self._sequence, action, label, self)
        heapq.heappush(self._queue, (time, self._sequence, event))
        self._live += 1
        return event

    def schedule_at(self, time: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before current time {self.now}")
        return self.schedule(time - self.now, action, label=label)

    def post(self, delay: float, action: EventAction) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellable handle, no label.

        The hot-path variant for events that are never cancelled (the vast
        majority in a large replay): the bare callable goes on the heap, so no
        per-event handle object is allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, action))
        self._live += 1

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        if event._queued and not event.cancelled:
            event.cancelled = True
            event._owner._live -= 1

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[EventRecord]:
        """Process the next event; returns its record or ``None`` when empty."""
        queue = self._queue
        while queue:
            time, _, payload = heapq.heappop(queue)
            if payload.__class__ is _ScheduledEvent:
                payload._queued = False
                if payload.cancelled:
                    continue
                action, label = payload.action, payload.label
            else:
                action, label = payload, ""
            if time < self.now:
                raise SimulationError("event queue became unordered")
            self.now = time
            self._live -= 1
            action(self)
            self.events_processed += 1
            record = EventRecord(time=time, label=label)
            if self.trace:
                self.processed.append(record)
            return record
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number processed.

        The cyclic garbage collector is paused for the duration of the loop
        (restored on exit): event tuples, closures and requests are acyclic
        and die by reference counting, while generation-0 scans would
        otherwise fire thousands of times across a 200k-event replay.
        """
        count, _ = self._run_merged((), None, until, max_events)
        return count

    def run_stream(
        self,
        times: Sequence[float],
        callback: Callable[["Simulation", int], None],
        presorted: bool = False,
    ) -> int:
        """Run to completion while feeding a time-sorted arrival stream.

        Behaves exactly as if ``callback(sim, i)`` had been scheduled at
        ``times[i]`` for every ``i`` at the moment this method is called:
        same-time stream items run FIFO; on an exact timestamp tie with a
        heap event, events scheduled *before* this call keep their earlier
        sequence numbers and run first, while events scheduled during the run
        run after the stream item (eager scheduling would order them exactly
        the same way).  The stream never touches the heap, so its size stays
        at the genuinely concurrent work.  Returns the number of events
        processed including stream items.

        ``presorted=True`` skips the sortedness validation — for callers that
        just sorted (or verified) the array themselves, so a 5M-entry stream
        is not scanned twice.
        """
        if not presorted:
            if hasattr(times, "dtype"):
                # Numpy fast path: a columnar replay hands the timestamp array
                # straight in; validating 5M entries must not be a Python loop.
                import numpy as np

                if len(times) > 1 and bool(np.any(times[1:] < times[:-1])):
                    raise SimulationError("run_stream requires times sorted non-decreasingly")
            elif any(b < a for a, b in zip(times, times[1:])):
                raise SimulationError("run_stream requires times sorted non-decreasingly")
        if len(times) and times[0] < self.now:
            raise SimulationError(f"stream starts at {times[0]} before current time {self.now}")
        count, _ = self._run_merged(times, callback, None, None)
        return count

    def run_stream_window(
        self,
        times: Sequence[float],
        callback: Callable[["Simulation", int], None],
        start_index: int = 0,
        until: Optional[float] = None,
        boundary: Optional[int] = None,
    ) -> Tuple[int, int]:
        """One windowed slice of a merged stream run; resumable.

        Processes heap events and stream items (``callback(sim, i)`` at
        ``times[i]``, starting from ``start_index``) up to and including
        simulation time ``until``, then stops with the clock set to ``until``.
        Returns ``(events_processed, next_start_index)`` so the caller can
        advance window by window — the sharded backend's conservative
        time-window loop.  ``boundary`` pins the sequence-number tie-break of
        the *first* window (pass the value captured before the windowed run
        began) so same-time ordering is consistent across the whole replay;
        ``None`` captures it at call time.  ``times`` must be sorted
        non-decreasingly (callers validate once up front, not per window).
        """
        if start_index < 0:
            raise SimulationError(f"start_index must be >= 0, got {start_index}")
        if start_index < len(times) and times[start_index] < self.now:
            raise SimulationError(
                f"stream resumes at {times[start_index]} before current time {self.now}"
            )
        return self._run_merged(times, callback, until, None, start_index, boundary)

    def _run_merged(
        self,
        times: Sequence[float],
        callback: Optional[Callable[["Simulation", int], None]],
        until: Optional[float],
        max_events: Optional[int],
        start_index: int = 0,
        boundary: Optional[int] = None,
    ) -> Tuple[int, int]:
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        count = 0
        index = start_index
        num_stream = len(times)
        queue = self._queue
        pop = heapq.heappop
        trace = self.trace
        processed = self.processed
        # Events already on the heap hold sequence numbers <= this boundary;
        # had the stream been scheduled eagerly right now it would get larger
        # ones, so on exact timestamp ties those pre-existing events win.
        # Windowed callers pass the boundary captured before their first
        # window so the tie-break stays consistent across the whole replay.
        if boundary is None:
            boundary = self._sequence
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if max_events is not None and count >= max_events:
                    break
                # float() also converts numpy scalars (a columnar replay hands
                # the timestamp array in directly), keeping the virtual clock
                # a plain Python float on every path.
                stream_time = float(times[index]) if index < num_stream else None
                if queue:
                    head_time = queue[0][0]
                    take_stream = stream_time is not None and (
                        stream_time < head_time
                        or (stream_time == head_time and queue[0][1] > boundary)
                    )
                    next_time = stream_time if take_stream else head_time
                elif stream_time is not None:
                    take_stream = True
                    next_time = stream_time
                else:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                if take_stream:
                    # Stream items never touched the heap, so no _live update.
                    self.now = stream_time
                    callback(self, index)
                    index += 1
                    self.events_processed += 1
                    count += 1
                    if trace:
                        processed.append(EventRecord(time=stream_time, label="arrival"))
                    continue
                time, _, payload = pop(queue)
                if payload.__class__ is _ScheduledEvent:
                    payload._queued = False
                    if payload.cancelled:
                        continue
                    action, label = payload.action, payload.label
                else:
                    action, label = payload, ""
                self.now = time
                # Kept exact per event so pending()/events_processed agree
                # with step() semantics for actions that query them mid-run.
                self._live -= 1
                action(self)
                self.events_processed += 1
                count += 1
                if trace:
                    processed.append(EventRecord(time=time, label=label))
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
        return count, index

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live
