"""The discrete-event simulation engine: a global event queue with a virtual clock.

This is the substrate every scaling experiment plugs into.  Events are
``(time, action)`` pairs processed in timestamp order (ties broken by
scheduling order, so same-time events run FIFO); actions receive the
simulation instance and may schedule further events.

The engine originally lived in :mod:`repro.edge.events` and was sized for the
small E7/E8 sweeps; it now also drives the multi-cell request simulator
(:mod:`repro.sim.simulator`), which replays hundreds of thousands of requests
in one process.  For such runs, construct the simulation with ``trace=False``
so the per-event :class:`EventRecord` history is not accumulated.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import SimulationError

EventAction = Callable[["Simulation"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: EventAction = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


@dataclass
class EventRecord:
    """A processed event, kept for tracing and assertions in tests."""

    time: float
    label: str


class Simulation:
    """Event queue with a virtual clock.

    Actions scheduled with :meth:`schedule` receive the simulation instance
    and may schedule further events; :meth:`run` processes events until the
    queue is empty or a time/step limit is hit.

    Parameters
    ----------
    trace:
        When true (the default), every processed event is appended to
        :attr:`processed`.  Large-scale replays disable this to keep memory
        flat across millions of events.
    """

    def __init__(self, trace: bool = True) -> None:
        self.now: float = 0.0
        self.trace = trace
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.processed: List[EventRecord] = []
        self.events_processed: int = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(time=self.now + delay, sequence=next(self._sequence), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before current time {self.now}")
        return self.schedule(time - self.now, action, label=label)

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[EventRecord]:
        """Process the next event; returns its record or ``None`` when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue became unordered")
            self.now = event.time
            event.action(self)
            self.events_processed += 1
            record = EventRecord(time=event.time, label=event.label)
            if self.trace:
                self.processed.append(record)
            return record
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number processed."""
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        count = 0
        try:
            while self._queue:
                if max_events is not None and count >= max_events:
                    break
                next_time = self._queue[0].time
                if until is not None and next_time > until:
                    self.now = until
                    break
                if self.step() is not None:
                    count += 1
        finally:
            self._running = False
        return count

    def pending(self) -> int:
        """Number of events still queued (including cancelled placeholders)."""
        return sum(1 for event in self._queue if not event.cancelled)
