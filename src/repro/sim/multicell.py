"""Multi-cell edge deployment: cells, backhaul topology, mobility, model catalogue.

A *cell* is one base-station site: an :class:`~repro.edge.server.EdgeServer`,
the :class:`~repro.caching.cache.SemanticModelCache` living in its storage, a
batch accumulator for the encode step, and a wireless downlink to its users.
Cells are joined in a ring over the backhaul and each has a WAN link to the
cloud model repository, so a cache miss can be served cooperatively from a
neighbour cell (cheap) before falling back to the cloud (expensive rebuild).

Users move: the :class:`MobilityModel` keeps each user's current cell and
hands them over to a random neighbour with a configurable probability per
request, charging a control-plane handover delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caching.cache import SemanticModelCache
from repro.edge.network import LinkSpec, NetworkTopology
from repro.edge.server import EdgeServer
from repro.exceptions import ConfigurationError
from repro.sim.batching import BatchAccumulator, BatchingConfig
from repro.sim.metrics import CellStats
from repro.utils.rng import SeedLike, new_rng

#: Node name of the cloud model repository in the backhaul topology.
CLOUD = "cloud"

#: Default link characteristics shared by the topology builder and
#: :class:`~repro.sim.simulator.SimulatorConfig` (single source of truth).
DEFAULT_BACKHAUL = LinkSpec(1e9, 0.002)
DEFAULT_WAN = LinkSpec(500e6, 0.02)


@dataclass(frozen=True)
class ModelSpec:
    """Size and establishment cost of one domain's semantic model."""

    domain: str
    size_bytes: int
    build_cost_s: float
    parameters: int = 4_000_000

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.build_cost_s < 0:
            raise ConfigurationError(f"build_cost_s must be non-negative, got {self.build_cost_s}")


def default_catalogue(
    domain_names: Sequence[str],
    seed: SeedLike = None,
    size_mb_range: Tuple[float, float] = (2.0, 12.0),
    build_cost_range_s: Tuple[float, float] = (0.5, 2.0),
) -> Dict[str, ModelSpec]:
    """Reproducible synthetic per-domain model sizes and rebuild costs."""
    rng = new_rng(seed)
    catalogue: Dict[str, ModelSpec] = {}
    for domain in domain_names:
        size_mb = float(rng.uniform(*size_mb_range))
        catalogue[domain] = ModelSpec(
            domain=domain,
            size_bytes=int(size_mb * 1024 * 1024),
            build_cost_s=float(rng.uniform(*build_cost_range_s)),
        )
    return catalogue


@dataclass(frozen=True)
class CellConfig:
    """Static description of one cell used to build the deployment."""

    name: str
    edge_flops_per_second: float = 200e9
    cache_capacity_bytes: int = 48 * 1024 * 1024
    cache_policy: str = "lru"
    downlink: LinkSpec = field(default_factory=lambda: LinkSpec(20e6, 0.005))


class Cell:
    """One live cell of the deployment (server + cache + batcher + stats)."""

    def __init__(self, config: CellConfig, batching: BatchingConfig) -> None:
        self.name = config.name
        self.server = EdgeServer(
            config.name,
            flops_per_second=config.edge_flops_per_second,
            storage_bytes=max(config.cache_capacity_bytes, 1),
        )
        self.cache = SemanticModelCache(config.cache_capacity_bytes, policy=config.cache_policy)
        self.batcher = BatchAccumulator(batching)
        self.downlink = config.downlink
        self.stats = CellStats(name=config.name)
        #: Requests waiting on an in-flight fetch, keyed by model key.
        self.inflight: Dict[str, List[object]] = {}
        #: Other cells ordered by increasing backhaul cost (set by the deployment).
        self.neighbor_order: List["Cell"] = []
        #: Whether the cell is currently down (fault injection); a failed cell
        #: serves no arrivals, admits nothing to its cache, and is skipped as a
        #: cooperative fetch source.
        self.failed: bool = False
        #: Bumped on every failure.  Model fetches capture it when they start
        #: and are discarded on completion if it moved — a fetch that was in
        #: flight across an outage must not admit a model into the cold
        #: post-recovery cache or serve a newer fetch's waiters.
        self.failure_epoch: int = 0


@dataclass(frozen=True)
class MobilityConfig:
    """User movement knobs."""

    handover_probability: float = 0.02
    handover_delay_s: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.handover_probability <= 1.0:
            raise ConfigurationError(
                f"handover_probability must be in [0, 1], got {self.handover_probability}"
            )
        if self.handover_delay_s < 0:
            raise ConfigurationError(
                f"handover_delay_s must be non-negative, got {self.handover_delay_s}"
            )


class MobilityModel:
    """Tracks each user's serving cell and samples random-neighbour handovers.

    ``cell_names`` must be in ring order (the order
    :func:`build_multicell_topology` uses), so a handover moves the user to
    one of the two topologically adjacent cells — not an arbitrary teleport
    across the deployment.
    """

    def __init__(self, cell_names: Sequence[str], config: MobilityConfig, seed: SeedLike = None) -> None:
        if not cell_names:
            raise ConfigurationError("at least one cell is required")
        self.cell_names = list(cell_names)
        self.config = config
        self.rng = new_rng(seed)
        self._user_cell: Dict[str, str] = {}
        self._ring_index = {name: index for index, name in enumerate(self.cell_names)}
        # Hot-path constants hoisted out of per-request attribute chases.
        self._num_cells = len(self.cell_names)
        self._probability = config.handover_probability
        self._random = self.rng.random

    def cell_of(self, user_id: str) -> str:
        """The user's current serving cell (assigned uniformly on first sight)."""
        cell = self._user_cell.get(user_id)
        if cell is None:
            cell = self.cell_names[int(self.rng.integers(len(self.cell_names)))]
            self._user_cell[user_id] = cell
        return cell

    def place(self, user_id: str, cell_name: str) -> None:
        """Pin ``user_id`` to ``cell_name`` without consuming the RNG stream.

        Used by failure-driven handovers: the simulator re-homes a user to a
        chosen alive cell, which must not disturb the random-handover draws of
        every later arrival.
        """
        if cell_name not in self._ring_index:
            raise ConfigurationError(f"unknown cell {cell_name!r}")
        self._user_cell[user_id] = cell_name

    def set_handover_probability(self, probability: float) -> None:
        """Change the per-arrival handover probability mid-run (mobility storms).

        Both the hot-path copy and the public ``config`` move, so readers of
        either always agree on the live value.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"handover_probability must be in [0, 1], got {probability}")
        self._probability = probability
        self.config = replace(self.config, handover_probability=probability)

    def maybe_move(self, user_id: str) -> Optional[Tuple[str, str]]:
        """Move the user to a random ring neighbour with the configured probability.

        Returns ``(old_cell, new_cell)`` when a handover happened, else ``None``.
        """
        return self.resolve(user_id)[1]

    def resolve(self, user_id: str) -> Tuple[str, Optional[Tuple[str, str]]]:
        """Place the user and sample a handover in one call.

        Returns ``(serving_cell, moved)`` where ``moved`` is the
        ``(old_cell, new_cell)`` pair when a handover happened, else ``None``.
        Consumes the RNG stream exactly like ``cell_of`` + ``maybe_move``
        (same draws, same order), but with a single user lookup — this is the
        per-arrival hot path of the multi-cell replay.
        """
        user_cell = self._user_cell
        current = user_cell.get(user_id)
        if current is None:
            current = self.cell_names[int(self.rng.integers(self._num_cells))]
            user_cell[user_id] = current
        if self._num_cells < 2 or self._random() >= self._probability:
            return current, None
        step = 1 if self._num_cells == 2 or self._random() < 0.5 else -1
        new = self.cell_names[(self._ring_index[current] + step) % self._num_cells]
        user_cell[user_id] = new
        return new, (current, new)


def build_multicell_topology(
    cell_names: Sequence[str],
    backhaul: Optional[LinkSpec] = None,
    wan: Optional[LinkSpec] = None,
) -> NetworkTopology:
    """Ring of cells over the backhaul, each with a WAN link to the cloud."""
    if not cell_names:
        raise ConfigurationError("at least one cell is required")
    backhaul = backhaul or DEFAULT_BACKHAUL
    wan = wan or DEFAULT_WAN
    topology = NetworkTopology()
    topology.add_node(CLOUD, kind="cloud")
    for name in cell_names:
        topology.add_node(name, kind="edge")
        topology.add_link(name, CLOUD, wan)
    if len(cell_names) > 1:
        for a, b in zip(cell_names, cell_names[1:]):
            topology.add_link(a, b, backhaul)
        if len(cell_names) > 2:
            topology.add_link(cell_names[-1], cell_names[0], backhaul)
    return topology


class PathCostCache:
    """Constant-time transfer costs over a fixed topology.

    :meth:`NetworkTopology.transfer_time` reruns shortest-path routing per
    call, which is far too slow for hundreds of thousands of fetches; this
    cache resolves each (source, destination) pair once and reduces a
    transfer to ``propagation + bytes * seconds_per_byte``.
    """

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology
        self._costs: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._transit: Dict[Tuple[str, str], frozenset] = {}

    def cost(self, source: str, destination: str) -> Tuple[float, float]:
        """``(propagation_s, seconds_per_byte)`` along the cached path."""
        key = (source, destination)
        cached = self._costs.get(key)
        if cached is None:
            propagation = 0.0
            per_byte = 0.0
            hops = self.topology.path(source, destination)
            for a, b in zip(hops[:-1], hops[1:]):
                spec = self.topology.link(a, b)
                propagation += spec.propagation_delay_s
                per_byte += 8.0 / spec.bandwidth_bps
            transit = frozenset(hops[1:-1])
            self._costs[key] = (propagation, per_byte)
            self._costs[(destination, source)] = (propagation, per_byte)
            self._transit[key] = transit
            self._transit[(destination, source)] = transit
            return propagation, per_byte
        return cached

    def transits(self, source: str, destination: str, node: str) -> bool:
        """Whether the cached path between the pair passes through ``node``."""
        if source == destination:
            return False
        self.cost(source, destination)
        return node in self._transit[(source, destination)]

    def transfer_time(self, source: str, destination: str, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` between two nodes."""
        if source == destination:
            return 0.0
        propagation, per_byte = self.cost(source, destination)
        return propagation + num_bytes * per_byte


def order_neighbors(cells: Sequence[Cell], costs: PathCostCache) -> None:
    """Populate each cell's ``neighbor_order`` by increasing backhaul latency.

    Cells whose shortest path runs *through the cloud node* (possible for
    distant pairs in a large ring, where two WAN hops beat many backhaul
    hops) are excluded: a transfer from them would not be a cooperative
    backhaul fetch at all, so those misses fall back to the cloud directly
    and are accounted as such.
    """
    reference_bytes = 1024 * 1024.0
    for cell in cells:
        others = [
            other
            for other in cells
            if other is not cell and not costs.transits(other.name, cell.name, CLOUD)
        ]
        others.sort(key=lambda other: costs.transfer_time(other.name, cell.name, reference_bytes))
        cell.neighbor_order = list(others)
