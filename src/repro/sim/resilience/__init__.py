"""Request-level resilience for the multi-cell simulator.

Production edge systems survive faults through request-level mechanisms the
bare simulator lacks: per-request **deadlines**, bounded **retries** with
exponential backoff, **hedged** duplicate sends, per-cell **circuit
breakers**, and queue-depth **load shedding**.  This package models all five
as one pure-data :class:`ResiliencePolicy` threaded through the request
lifecycle of every backend (see ``docs/resilience.md``):

* the policy is plain JSON (a ``resilience`` block on a
  :class:`~repro.scenarios.spec.ScenarioSpec`); **no policy means today's
  behaviour byte-for-byte** — every resilience hook in the simulator is
  gated on the policy's presence;
* every decision is deterministic: backoff jitter is a hash of the request's
  identity (:func:`jitter_fraction`), never an RNG draw, so resilience
  consumes **no randomness** and fault-free streams stay untouched;
* both backends execute identical policy data — the serial engine inline,
  the sharded backend by shipping the policy (and its SeedTree-derived seed)
  to every shard.
"""

from repro.sim.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.sim.resilience.policy import ResiliencePolicy, jitter_fraction

__all__ = [
    "ResiliencePolicy",
    "jitter_fraction",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]
