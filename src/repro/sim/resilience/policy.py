"""Pure-data resilience policy and deterministic jitter.

A :class:`ResiliencePolicy` is a frozen bag of knobs with no behaviour of
its own — the simulator interprets it.  Keeping the policy pure data means
it round-trips through JSON (scenario specs, shard payloads, regression
corpus files) and both backends execute byte-identical decisions from the
same dict.

Backoff jitter is the one place resilience needs "randomness".  Drawing it
from the simulator's RNG streams would perturb every downstream draw and
break the no-policy byte-identity contract, so :func:`jitter_fraction`
derives it from a keyed blake2b hash of the request's identity instead:
stable across runs, backends, and shard layouts, and zero RNG consumption.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional


def jitter_fraction(seed: int, user_id: str, arrival_time: float, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` keyed by request identity.

    The tuple (seed, user, arrival, attempt) uniquely identifies one retry
    decision; hashing it gives every retry an independent-looking jitter
    without consuming any RNG stream.
    """

    payload = struct.pack("<Qdq", seed & 0xFFFFFFFFFFFFFFFF, arrival_time, attempt)
    digest = hashlib.blake2b(payload + user_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True)
class ResiliencePolicy:
    """Request-level resilience knobs; every mechanism is off by default.

    deadline_s: wall-clock budget per logical request measured from its
        arrival; expired requests terminate as ``DEADLINE_EXCEEDED``.
    max_retries: extra attempts granted after a routing failure (a dropped
        request with attempts left re-homes to the next-nearest alive cell
        after backoff instead of terminating).
    backoff_base_s / backoff_multiplier / backoff_jitter: retry delay is
        ``base * multiplier**attempt * (1 + jitter * u)`` with ``u`` from
        :func:`jitter_fraction`.
    hedge_delay_s: when set, a duplicate of each request is sent to the
        next-best cell after this delay unless the original already
        finished; first completion wins, the loser is de-counted.
    breaker_window: sliding window length of per-cell outcomes driving the
        circuit breaker; 0 disables breakers entirely.
    breaker_failure_threshold / breaker_min_volume: the breaker opens when
        the window holds at least ``min_volume`` outcomes and the failure
        fraction reaches the threshold.
    breaker_open_s: how long an open breaker rejects traffic before
        admitting half-open probes.
    breaker_half_open_probes: number of trial requests admitted while
        half-open; the first recorded outcome decides reopen vs close.
    shed_queue_depth: per-cell cap on outstanding admitted requests; an
        arrival beyond the cap terminates immediately as ``SHED``.
    """

    deadline_s: Optional[float] = None
    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.0
    hedge_delay_s: Optional[float] = None
    breaker_window: int = 0
    breaker_failure_threshold: float = 0.5
    breaker_min_volume: int = 10
    breaker_open_s: float = 1.0
    breaker_half_open_probes: int = 3
    shed_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.backoff_jitter < 0:
            raise ValueError(f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError(f"hedge_delay_s must be positive, got {self.hedge_delay_s}")
        if self.breaker_window < 0:
            raise ValueError(f"breaker_window must be >= 0, got {self.breaker_window}")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError(
                "breaker_failure_threshold must be in (0, 1], got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_min_volume < 1:
            raise ValueError(
                f"breaker_min_volume must be >= 1, got {self.breaker_min_volume}"
            )
        if self.breaker_open_s <= 0:
            raise ValueError(f"breaker_open_s must be positive, got {self.breaker_open_s}")
        if self.breaker_half_open_probes < 1:
            raise ValueError(
                f"breaker_half_open_probes must be >= 1, got {self.breaker_half_open_probes}"
            )
        if self.shed_queue_depth is not None and self.shed_queue_depth < 1:
            raise ValueError(
                f"shed_queue_depth must be >= 1, got {self.shed_queue_depth}"
            )

    @property
    def active(self) -> bool:
        """True when at least one mechanism is enabled."""

        return (
            self.deadline_s is not None
            or self.max_retries > 0
            or self.hedge_delay_s is not None
            or self.breaker_window > 0
            or self.shed_queue_depth is not None
        )

    def backoff_s(self, attempt: int, seed: int, user_id: str, arrival_time: float) -> float:
        """Delay before retry ``attempt`` (0-based) of the given request."""

        base = self.backoff_base_s * self.backoff_multiplier**attempt
        if self.backoff_jitter <= 0.0:
            return base
        u = jitter_fraction(seed, user_id, arrival_time, attempt)
        return base * (1.0 + self.backoff_jitter * u)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResiliencePolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown resilience policy fields: {sorted(unknown)}")
        return cls(**dict(payload))
