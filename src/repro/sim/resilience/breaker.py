"""Per-cell circuit breaker: closed / open / half-open.

The breaker watches a sliding window of request outcomes for one cell.
While **closed** it admits everything and trips open when the window holds
enough volume and the failure fraction crosses the policy threshold.  While
**open** it rejects all routing (the cell is treated like a failed one for
placement, though faults themselves are unaffected) until ``breaker_open_s``
elapses.  It then goes **half-open** and admits a bounded number of probe
requests; the first recorded probe outcome decides — success closes the
breaker, failure re-opens it for another full interval.

All transitions are driven by simulation time passed in by the caller, so
the breaker is deterministic and identical across backends.  ``transitions``
counts every state change and feeds the ``breaker_transitions`` counter.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.resilience.policy import ResiliencePolicy

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    __slots__ = ("_policy", "_state", "_window", "_open_until", "_probes_left", "transitions")

    def __init__(self, policy: ResiliencePolicy) -> None:
        if policy.breaker_window <= 0:
            raise ValueError("CircuitBreaker requires breaker_window > 0")
        self._policy = policy
        self._state = BREAKER_CLOSED
        self._window: Deque[bool] = deque(maxlen=policy.breaker_window)
        self._open_until = 0.0
        self._probes_left = 0
        self.transitions = 0

    @property
    def state(self) -> str:
        return self._state

    def allows(self, now: float) -> bool:
        """Whether a request may route to this cell; consumes a probe slot
        when half-open."""

        if self._state == BREAKER_OPEN:
            if now < self._open_until:
                return False
            self._state = BREAKER_HALF_OPEN
            self._probes_left = self._policy.breaker_half_open_probes
            self.transitions += 1
        if self._state == BREAKER_HALF_OPEN:
            if self._probes_left <= 0:
                return False
            self._probes_left -= 1
            return True
        return True

    def record(self, ok: bool, now: float) -> None:
        """Feed one request outcome on this cell into the window."""

        if self._state == BREAKER_OPEN:
            # Outcomes of requests admitted before the trip are stale news.
            return
        if self._state == BREAKER_HALF_OPEN:
            if ok:
                self._state = BREAKER_CLOSED
                self._window.clear()
            else:
                self._state = BREAKER_OPEN
                self._open_until = now + self._policy.breaker_open_s
                self._window.clear()
            self.transitions += 1
            return
        self._window.append(ok)
        if len(self._window) < self._policy.breaker_min_volume:
            return
        failures = sum(1 for outcome in self._window if not outcome)
        if failures / len(self._window) >= self._policy.breaker_failure_threshold:
            self._state = BREAKER_OPEN
            self._open_until = now + self._policy.breaker_open_s
            self._window.clear()
            self.transitions += 1
