"""Latency accounting and the report a simulation run produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


class LatencyRecorder:
    """Accumulates completion latencies and summarizes their distribution."""

    def __init__(self) -> None:
        self._latencies: List[float] = []

    def record(self, latency_s: float) -> None:
        """Record one completed request's latency."""
        self._latencies.append(latency_s)

    def __len__(self) -> int:
        return len(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile latency in seconds (0 when empty)."""
        if not self._latencies:
            return 0.0
        return float(np.percentile(self._latencies, q))

    def summary(self) -> Dict[str, float]:
        """Mean and p50/p95/p99 latency in seconds."""
        if not self._latencies:
            return {"mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
        values = np.asarray(self._latencies)
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return {
            "mean_s": float(values.mean()),
            "p50_s": float(p50),
            "p95_s": float(p95),
            "p99_s": float(p99),
            "max_s": float(values.max()),
        }


@dataclass
class CellStats:
    """Per-cell counters collected during a run."""

    name: str
    hits: int = 0
    neighbor_fetches: int = 0
    cloud_fetches: int = 0
    coalesced: int = 0
    handovers_in: int = 0
    completed: int = 0
    batches: int = 0
    batched_requests: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups served by this cell."""
        return self.hits + self.neighbor_fetches + self.cloud_fetches + self.coalesced

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cell's own cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per executed batch."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches


@dataclass
class SimulationReport:
    """Everything a run of the multi-cell simulator measured."""

    completed: int
    duration_s: float
    wall_clock_s: float
    events_processed: int
    latency: Dict[str, float]
    cells: Dict[str, CellStats] = field(default_factory=dict)
    total_compute_busy_s: float = 0.0
    backhaul_bytes: float = 0.0
    cloud_bytes: float = 0.0

    @property
    def requests_per_sec(self) -> float:
        """Completed requests per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def events_per_wall_sec(self) -> float:
        """Engine speed: events processed per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_s

    @property
    def hit_ratio(self) -> float:
        """Local-hit ratio aggregated over all cells."""
        lookups = sum(stats.lookups for stats in self.cells.values())
        if lookups == 0:
            return 0.0
        return sum(stats.hits for stats in self.cells.values()) / lookups

    @property
    def mean_batch_size(self) -> float:
        """Mean batch size aggregated over all cells."""
        batches = sum(stats.batches for stats in self.cells.values())
        if batches == 0:
            return 0.0
        return sum(stats.batched_requests for stats in self.cells.values()) / batches
