"""Latency accounting and the report a simulation run produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


class LatencyRecorder:
    """Accumulates completion latencies and summarizes their distribution.

    Memory is bounded: up to ``reservoir_size`` samples are kept.  While the
    number of recorded latencies stays at or below that threshold every sample
    is retained, so percentiles are **exact** — the default threshold of
    100 000 covers every committed experiment row.  Beyond it the recorder
    switches to uniform reservoir sampling (Vitter's algorithm R with a seeded
    generator, so runs stay reproducible): a 1M-request replay then costs the
    same memory as a 100k one, with percentiles becoming tight estimates.
    Mean, max and count are always exact regardless of length.
    """

    def __init__(self, reservoir_size: int = 100_000, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self._capacity = reservoir_size
        self._samples = np.empty(reservoir_size, dtype=np.float64)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._seed = seed
        self._rng: np.random.Generator | None = None  # created on first overflow
        #: Explicit retained-sample count after an :meth:`absorb` merge;
        #: ``None`` means "derive from count" (the normal recording path).
        self._retained: int | None = None

    def record(self, latency_s: float) -> None:
        """Record one completed request's latency."""
        index = self._count
        self._count = index + 1
        self._sum += latency_s
        if latency_s > self._max:
            self._max = latency_s
        if index < self._capacity:
            self._samples[index] = latency_s
            return
        if self._rng is None:
            self._rng = np.random.default_rng(self._seed)
        slot = int(self._rng.integers(0, self._count))
        if slot < self._capacity:
            self._samples[slot] = latency_s

    def __len__(self) -> int:
        return self._count

    def record_many(self, latencies_s: np.ndarray) -> None:
        """Record a batch of latencies, bit-identical to repeated :meth:`record`.

        The region that fits in the reservoir is appended with one slice
        assignment; the running sum is folded left-to-right with
        ``np.add.accumulate`` (the same sequential order as scalar ``+=``, so
        the float result is the same bits).  Any overflow tail falls back to
        scalar :meth:`record` calls, preserving the reservoir's replacement
        draw order exactly.
        """
        values = np.ascontiguousarray(latencies_s, dtype=np.float64)
        count = len(values)
        if count == 0:
            return
        start = self._count
        fit = min(count, self._capacity - start) if start < self._capacity else 0
        if fit:
            head = values[:fit]
            self._samples[start : start + fit] = head
            self._count = start + fit
            self._sum = float(
                np.add.accumulate(np.concatenate(([self._sum], head)))[-1]
            )
            peak = float(head.max())
            if peak > self._max:
                self._max = peak
        for latency in values[fit:].tolist():
            self.record(latency)

    def absorb(self, other: "LatencyRecorder") -> None:
        """Merge another recorder's distribution into this one, deterministically.

        The sharded backend records latencies per shard and merges at the end.
        Exact counters (count, sum, max) add exactly.  Retained samples are
        concatenated; when the union exceeds this recorder's capacity it is
        down-sampled at evenly spaced indices — a deterministic, order-stable
        reduction, so merged percentiles are exact whenever every input was
        exact and the union fits, and tight reservoir-style estimates beyond
        that.  Merge order must be deterministic (shard-index order) for
        byte-stable results, which the sharded drivers guarantee.
        """
        if other._count == 0:
            return
        mine = np.copy(self._values())
        theirs = other._values()
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        self._count += other._count
        union = np.concatenate([mine, theirs]) if len(mine) else np.copy(theirs)
        if len(union) > self._capacity:
            keep = np.linspace(0, len(union) - 1, self._capacity).round().astype(np.int64)
            union = union[keep]
        self._samples[: len(union)] = union
        self._retained = len(union)

    @property
    def retained(self) -> int:
        """Number of samples currently held (== count while exact)."""
        return min(self._count, self._capacity) if self._retained is None else self._retained

    @property
    def exact(self) -> bool:
        """Whether every recorded sample is retained (percentiles are exact)."""
        return self._count == self.retained

    def _values(self) -> np.ndarray:
        return self._samples[: self.retained]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile latency in seconds (0 when empty)."""
        if self._count == 0:
            return 0.0
        return float(np.percentile(self._values(), q))

    def summary(self) -> Dict[str, float]:
        """Mean and p50/p95/p99 latency in seconds."""
        if self._count == 0:
            return {"mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
        values = self._values()
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return {
            "mean_s": float(values.mean()) if self.exact else self._sum / self._count,
            "p50_s": float(p50),
            "p95_s": float(p95),
            "p99_s": float(p99),
            "max_s": self._max,
        }


@dataclass
class CellStats:
    """Per-cell counters collected during a run."""

    name: str
    hits: int = 0
    neighbor_fetches: int = 0
    cloud_fetches: int = 0
    coalesced: int = 0
    handovers_in: int = 0
    completed: int = 0
    batches: int = 0
    batched_requests: int = 0
    #: Requests re-homed to this cell because their serving cell had failed
    #: (a subset of ``handovers_in``; only non-zero under fault injection).
    failovers: int = 0
    #: Requests this cell had to drop because no alive cell was reachable.
    dropped: int = 0
    #: Resilience counters; all stay 0 unless a :class:`ResiliencePolicy`
    #: is configured on the simulator.
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    breaker_transitions: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups served by this cell."""
        return self.hits + self.neighbor_fetches + self.cloud_fetches + self.coalesced

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cell's own cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per executed batch."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches


@dataclass
class SimulationReport:
    """Everything a run of the multi-cell simulator measured."""

    completed: int
    duration_s: float
    wall_clock_s: float
    events_processed: int
    latency: Dict[str, float]
    cells: Dict[str, CellStats] = field(default_factory=dict)
    total_compute_busy_s: float = 0.0
    backhaul_bytes: float = 0.0
    cloud_bytes: float = 0.0
    #: Requests dropped because no alive cell could serve them (fault
    #: injection only; always 0 in a healthy deployment).
    dropped: int = 0
    #: Requests rejected by load shedding / expired deadlines; non-zero only
    #: under a resilience policy.
    shed: int = 0
    deadline_exceeded: int = 0

    @property
    def requests_per_sec(self) -> float:
        """Completed requests per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def events_per_wall_sec(self) -> float:
        """Engine speed: events processed per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_s

    @property
    def hit_ratio(self) -> float:
        """Local-hit ratio aggregated over all cells."""
        lookups = sum(stats.lookups for stats in self.cells.values())
        if lookups == 0:
            return 0.0
        return sum(stats.hits for stats in self.cells.values()) / lookups

    @property
    def mean_batch_size(self) -> float:
        """Mean batch size aggregated over all cells."""
        batches = sum(stats.batches for stats in self.cells.values())
        if batches == 0:
            return 0.0
        return sum(stats.batched_requests for stats in self.cells.values()) / batches
