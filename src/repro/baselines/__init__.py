"""Baselines the paper's proposal is compared against."""

from repro.baselines.general_only import GeneralOnlyBaseline
from repro.baselines.no_cache import EstablishmentCostModel, NoCacheBaseline, NoCacheResult
from repro.baselines.traditional import (
    HuffmanCoder,
    TraditionalCommunicationSystem,
    TraditionalDeliveryReport,
)

__all__ = [
    "TraditionalCommunicationSystem",
    "TraditionalDeliveryReport",
    "HuffmanCoder",
    "GeneralOnlyBaseline",
    "NoCacheBaseline",
    "NoCacheResult",
    "EstablishmentCostModel",
]
