"""No-cache baseline: every model request pays the full establishment cost.

The paper's motivation for semantic caching is that "establishing knowledge
bases for domain-oriented communication can be time-consuming".  This baseline
serves a request trace with *no* model cache: each request for a domain whose
model is not currently loaded (which, with a single resident slot, is almost
every domain switch) pays the configured establishment cost — either a
fetch-from-cloud transfer or a full retraining.  Experiment E7 compares this
against cached configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.workloads.traces import RequestTrace, TraceRequest


@dataclass
class EstablishmentCostModel:
    """Cost of making a domain model usable on the edge server.

    Attributes
    ----------
    fetch_seconds:
        Time to download the model from the cloud/core network.
    train_seconds:
        Time to (re)train or fine-tune the model locally when it cannot be
        fetched (used when ``must_train`` is set).
    must_train:
        Whether establishment requires training rather than fetching.
    """

    fetch_seconds: float = 5.0
    train_seconds: float = 120.0
    must_train: bool = False

    def establishment_seconds(self) -> float:
        """Cost of one establishment event."""
        return self.train_seconds if self.must_train else self.fetch_seconds


@dataclass
class NoCacheResult:
    """Outcome of serving a trace without a model cache."""

    requests: int = 0
    establishments: int = 0
    total_establishment_seconds: float = 0.0
    per_domain_establishments: Dict[str, int] = field(default_factory=dict)

    @property
    def establishment_rate(self) -> float:
        """Fraction of requests that had to (re)establish a model."""
        if self.requests == 0:
            return 0.0
        return self.establishments / self.requests

    @property
    def mean_delay_seconds(self) -> float:
        """Average model-establishment delay added per request."""
        if self.requests == 0:
            return 0.0
        return self.total_establishment_seconds / self.requests


class NoCacheBaseline:
    """Serves requests keeping at most ``resident_slots`` models loaded (no policy).

    With ``resident_slots=1`` (the default) the server behaves like a device
    that can only hold the model it is currently using: every domain switch
    forces a re-establishment, which is the worst case the paper's caching
    proposal eliminates.
    """

    def __init__(
        self,
        cost_model: Optional[EstablishmentCostModel] = None,
        resident_slots: int = 1,
    ) -> None:
        if resident_slots < 0:
            raise ValueError(f"resident_slots must be non-negative, got {resident_slots}")
        self.cost_model = cost_model or EstablishmentCostModel()
        self.resident_slots = resident_slots

    def serve(self, trace: RequestTrace | Iterable[TraceRequest]) -> NoCacheResult:
        """Process ``trace`` and account every model establishment."""
        result = NoCacheResult()
        resident: list[str] = []
        for request in trace:
            result.requests += 1
            domain = request.domain
            if domain in resident:
                # Move to the most-recent position; no establishment needed.
                resident.remove(domain)
                resident.append(domain)
                continue
            result.establishments += 1
            result.total_establishment_seconds += self.cost_model.establishment_seconds()
            result.per_domain_establishments[domain] = result.per_domain_establishments.get(domain, 0) + 1
            resident.append(domain)
            if self.resident_slots and len(resident) > self.resident_slots:
                resident.pop(0)
        return result
