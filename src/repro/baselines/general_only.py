"""General-model-only baseline (no domain specialization).

Section II-A's claim is that "using only general models for all users can lead
to severe mismatches".  This baseline trains a *single* codec on the pooled
corpus of every domain with the same capacity as one domain-specialized codec,
so experiment E2 can isolate the benefit of specialization under an equal
parameter budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.semantic import CodecConfig, SemanticCodec
from repro.utils.rng import SeedLike
from repro.workloads.domains import DomainCorpus


class GeneralOnlyBaseline:
    """One codec trained on the union of all domain corpora."""

    def __init__(self, config: Optional[CodecConfig] = None) -> None:
        self.config = config or CodecConfig()
        self.codec: Optional[SemanticCodec] = None

    def fit(
        self,
        corpora: Dict[str, DomainCorpus] | Dict[str, Sequence[str]],
        train_epochs: int = 20,
        seed: SeedLike = 0,
    ) -> "GeneralOnlyBaseline":
        """Train the single general codec on all domains pooled together."""
        pooled: list[str] = []
        for corpus in corpora.values():
            sentences = corpus.sentences if isinstance(corpus, DomainCorpus) else list(corpus)
            pooled.extend(sentences)
        if not pooled:
            raise ValueError("cannot fit the general-only baseline on empty corpora")
        self.codec = SemanticCodec.from_corpus(
            pooled, config=self.config, domain="general", train_epochs=train_epochs, seed=seed
        )
        return self

    def evaluate_per_domain(
        self, corpora: Dict[str, DomainCorpus] | Dict[str, Sequence[str]]
    ) -> Dict[str, Dict[str, float]]:
        """Reconstruction quality of the single codec on each domain separately."""
        if self.codec is None:
            raise RuntimeError("fit() must be called before evaluate_per_domain()")
        results: Dict[str, Dict[str, float]] = {}
        for domain, corpus in corpora.items():
            sentences = corpus.sentences if isinstance(corpus, DomainCorpus) else list(corpus)
            results[domain] = self.codec.evaluate(sentences)
        return results

    def mean_token_accuracy(self, corpora: Dict[str, DomainCorpus] | Dict[str, Sequence[str]]) -> float:
        """Macro-average token accuracy across domains."""
        per_domain = self.evaluate_per_domain(corpora)
        return float(np.mean([metrics["token_accuracy"] for metrics in per_domain.values()]))
