"""Traditional bit-level communication baseline.

The paper contrasts semantic communication with "traditional communication
paradigms, which transmit data bit by bit".  This baseline does exactly that:
the message text is source-coded (Huffman over characters), channel-coded,
modulated and pushed through the same physical channel the semantic system
uses, then decoded back to text.  Its payload size tracks message length and
its fidelity collapses once channel errors corrupt the compressed bitstream,
which is the behaviour experiment E1 compares against.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel import (
    ChannelCode,
    HammingCode,
    PhysicalChannel,
    add_crc,
    bits_to_bytes,
    bytes_to_bits,
    check_and_strip_crc,
)
from repro.text import bleu_score, token_accuracy
from repro.text.tokenizer import simple_tokenize


# --------------------------------------------------------------------------- #
# Huffman source coding
# --------------------------------------------------------------------------- #
class HuffmanCoder:
    """Canonical Huffman coder over characters of a training corpus.

    Characters unseen at fit time fall back to an escape sequence followed by
    the 8-bit byte, so any text remains encodable.
    """

    _ESCAPE = "\x00"

    def __init__(self) -> None:
        self._codes: Dict[str, str] = {}
        self._decode_tree: Optional[tuple] = None

    def fit(self, corpus: Sequence[str]) -> "HuffmanCoder":
        """Build the code from character frequencies of ``corpus``."""
        counts: Counter[str] = Counter()
        for text in corpus:
            counts.update(text)
        counts[self._ESCAPE] += 1  # ensure the escape symbol exists
        heap: list[tuple[int, int, object]] = []
        for index, (symbol, count) in enumerate(sorted(counts.items())):
            heapq.heappush(heap, (count, index, symbol))
        tie_breaker = len(counts)
        if len(heap) == 1:
            count, _, symbol = heap[0]
            heap = [(count, 0, (symbol, symbol))]
        while len(heap) > 1:
            count_a, _, node_a = heapq.heappop(heap)
            count_b, _, node_b = heapq.heappop(heap)
            heapq.heappush(heap, (count_a + count_b, tie_breaker, (node_a, node_b)))
            tie_breaker += 1
        _, _, root = heap[0]
        self._decode_tree = root if isinstance(root, tuple) else (root, root)
        self._codes = {}
        self._assign_codes(self._decode_tree, "")
        return self

    def _assign_codes(self, node: object, prefix: str) -> None:
        if isinstance(node, tuple):
            self._assign_codes(node[0], prefix + "0")
            self._assign_codes(node[1], prefix + "1")
        else:
            self._codes[str(node)] = prefix or "0"

    def encode(self, text: str) -> np.ndarray:
        """Encode ``text`` into a bit array."""
        if not self._codes:
            raise RuntimeError("HuffmanCoder must be fit before encoding")
        pieces: list[str] = []
        for character in text:
            if character in self._codes:
                pieces.append(self._codes[character])
            else:
                pieces.append(self._codes[self._ESCAPE])
                pieces.append(format(ord(character) % 256, "08b"))
        bitstring = "".join(pieces)
        return np.fromiter((int(b) for b in bitstring), dtype=np.int64, count=len(bitstring))

    def decode(self, bits: np.ndarray) -> str:
        """Decode a bit array back to text (robust to trailing garbage)."""
        if self._decode_tree is None:
            raise RuntimeError("HuffmanCoder must be fit before decoding")
        characters: list[str] = []
        node = self._decode_tree
        bit_list = np.asarray(bits, dtype=np.int64).tolist()
        position = 0
        while position < len(bit_list):
            branch = bit_list[position]
            position += 1
            node = node[1] if branch else node[0]
            if not isinstance(node, tuple):
                symbol = str(node)
                if symbol == self._ESCAPE:
                    if position + 8 > len(bit_list):
                        break
                    byte = int("".join(str(b) for b in bit_list[position : position + 8]), 2)
                    characters.append(chr(byte))
                    position += 8
                else:
                    characters.append(symbol)
                node = self._decode_tree
        return "".join(characters)

    def mean_bits_per_character(self, corpus: Sequence[str]) -> float:
        """Average code length over ``corpus`` (compression diagnostic)."""
        total_bits = sum(len(self.encode(text)) for text in corpus)
        total_characters = sum(len(text) for text in corpus)
        return total_bits / max(total_characters, 1)


# --------------------------------------------------------------------------- #
# The baseline system
# --------------------------------------------------------------------------- #
@dataclass
class TraditionalDeliveryReport:
    """Outcome of delivering one message with the bit-level baseline."""

    original_text: str
    restored_text: str
    payload_bytes: float
    token_accuracy: float
    bleu: float
    crc_ok: bool
    bit_errors: int


class TraditionalCommunicationSystem:
    """Huffman + CRC + channel-coded bit-level messaging over a physical channel."""

    def __init__(
        self,
        corpus: Sequence[str],
        channel: Optional[PhysicalChannel] = None,
        channel_code: Optional[ChannelCode] = None,
        use_source_coding: bool = True,
    ) -> None:
        self.coder = HuffmanCoder().fit(corpus) if use_source_coding else None
        self.channel = channel
        self.channel_code = channel_code or HammingCode()
        if self.channel is not None:
            self.channel.channel_code = self.channel_code

    def payload_bits(self, text: str) -> np.ndarray:
        """Source-coded (or raw UTF-8) payload bits with CRC framing.

        The frame layout is ``[2-byte bit-length][body][4-byte CRC]`` so the
        decoder can discard the padding bits added when the Huffman bitstring
        is packed into bytes.
        """
        if self.coder is not None:
            body_bits = self.coder.encode(text)
            body = len(body_bits).to_bytes(2, "big") + bits_to_bytes(body_bits)
        else:
            encoded = text.encode("utf-8")
            body = (len(encoded) * 8).to_bytes(2, "big") + encoded
        framed = add_crc(body)
        return bytes_to_bits(framed)

    def send(self, text: str) -> TraditionalDeliveryReport:
        """Deliver ``text`` end to end through the configured channel."""
        bits = self.payload_bits(text)
        if self.channel is None:
            received_bits = bits
            bit_errors = 0
        else:
            received_bits, report = self.channel.transmit(bits)
            bit_errors = report.bit_errors_postcorrection
        payload, crc_ok = check_and_strip_crc(bits_to_bytes(received_bits)[: (bits.size + 7) // 8])
        body_bit_length = int.from_bytes(payload[:2], "big") if len(payload) >= 2 else 0
        body = payload[2:]
        if self.coder is not None:
            restored = self.coder.decode(bytes_to_bits(body)[:body_bit_length])
        else:
            restored = body[: (body_bit_length + 7) // 8].decode("utf-8", errors="replace")
        reference = simple_tokenize(text)
        hypothesis = simple_tokenize(restored)
        return TraditionalDeliveryReport(
            original_text=text,
            restored_text=restored,
            payload_bytes=bits.size / 8.0,
            token_accuracy=token_accuracy(reference, hypothesis),
            bleu=bleu_score(reference, hypothesis),
            crc_ok=crc_ok,
            bit_errors=bit_errors,
        )

    def evaluate(self, texts: Sequence[str]) -> Dict[str, float]:
        """Average payload size and fidelity over ``texts``."""
        if not texts:
            raise ValueError("cannot evaluate on an empty text list")
        reports = [self.send(text) for text in texts]
        return {
            "mean_payload_bytes": float(np.mean([r.payload_bytes for r in reports])),
            "token_accuracy": float(np.mean([r.token_accuracy for r in reports])),
            "bleu": float(np.mean([r.bleu for r in reports])),
            "crc_ok_rate": float(np.mean([1.0 if r.crc_ok else 0.0 for r in reports])),
        }
