"""Gradient compression: top-k sparsification and uniform quantization.

The decoder gradient crosses the inter-edge backhaul on every update round;
compressing it is the knob experiment E5 sweeps when comparing sync bandwidth
against shipping the whole decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import FederatedError
from repro.federated.gradients import GradientUpdate


@dataclass
class CompressedGradients:
    """Sparse, quantized representation of one gradient update."""

    user_id: str
    domain: str
    round_index: int
    learning_rate: float
    shapes: Dict[str, Tuple[int, ...]]
    indices: Dict[str, np.ndarray]
    values: Dict[str, np.ndarray]
    scales: Dict[str, float]
    bits_per_value: int

    def payload_bytes(self, index_bytes: int = 4) -> float:
        """Bytes on the wire: indices plus quantized values plus per-tensor scales."""
        total_values = sum(v.size for v in self.values.values())
        total_indices = sum(i.size for i in self.indices.values())
        value_bytes = total_values * self.bits_per_value / 8.0
        return total_indices * index_bytes + value_bytes + 8.0 * len(self.scales)


def compress_topk(
    update: GradientUpdate,
    fraction: float = 0.1,
    bits_per_value: int = 8,
) -> CompressedGradients:
    """Keep the largest-magnitude ``fraction`` of each tensor's values, quantized.

    Parameters
    ----------
    fraction:
        Fraction of values kept per tensor (at least one value is always kept).
    bits_per_value:
        Uniform quantization width for the surviving values.
    """
    if not 0.0 < fraction <= 1.0:
        raise FederatedError(f"fraction must be in (0, 1], got {fraction}")
    if not 1 <= bits_per_value <= 16:
        raise FederatedError(f"bits_per_value must be in [1, 16], got {bits_per_value}")
    shapes: Dict[str, Tuple[int, ...]] = {}
    indices: Dict[str, np.ndarray] = {}
    values: Dict[str, np.ndarray] = {}
    scales: Dict[str, float] = {}
    levels = 2**bits_per_value - 1
    for name, gradient in update.gradients.items():
        gradient = np.asarray(gradient, dtype=np.float64)
        flat = gradient.reshape(-1)
        keep = max(1, int(round(fraction * flat.size)))
        top_indices = np.argpartition(np.abs(flat), -keep)[-keep:]
        top_values = flat[top_indices]
        scale = float(np.max(np.abs(top_values))) or 1.0
        quantized = np.round((top_values / scale) * (levels // 2)).astype(np.int32)
        shapes[name] = gradient.shape
        indices[name] = top_indices.astype(np.int64)
        values[name] = quantized
        scales[name] = scale
    return CompressedGradients(
        user_id=update.user_id,
        domain=update.domain,
        round_index=update.round_index,
        learning_rate=update.learning_rate,
        shapes=shapes,
        indices=indices,
        values=values,
        scales=scales,
        bits_per_value=bits_per_value,
    )


def decompress(compressed: CompressedGradients) -> GradientUpdate:
    """Reconstruct a dense :class:`GradientUpdate` from its compressed form."""
    levels = 2**compressed.bits_per_value - 1
    gradients: Dict[str, np.ndarray] = {}
    for name, shape in compressed.shapes.items():
        dense = np.zeros(int(np.prod(shape)), dtype=np.float64)
        scale = compressed.scales[name]
        dense[compressed.indices[name]] = compressed.values[name].astype(np.float64) / (levels // 2) * scale
        gradients[name] = dense.reshape(shape)
    return GradientUpdate(
        user_id=compressed.user_id,
        domain=compressed.domain,
        round_index=compressed.round_index,
        gradients=gradients,
        learning_rate=compressed.learning_rate,
        compressed=True,
    )


def compression_error(update: GradientUpdate, compressed: CompressedGradients) -> float:
    """Relative L2 error introduced by compressing ``update``."""
    restored = decompress(compressed)
    numerator = 0.0
    denominator = 0.0
    for name, original in update.gradients.items():
        original = np.asarray(original, dtype=np.float64)
        difference = original - restored.gradients[name]
        numerator += float((difference**2).sum())
        denominator += float((original**2).sum())
    if denominator == 0.0:
        return 0.0
    return float(np.sqrt(numerator / denominator))
