"""Federated-style decoder synchronization: gradients, compression, sync, aggregation."""

from repro.federated.aggregation import (
    AggregationResult,
    aggregate_into_module,
    federated_average_gradients,
    federated_average_states,
)
from repro.federated.compression import (
    CompressedGradients,
    compress_topk,
    compression_error,
    decompress,
)
from repro.federated.gradients import (
    GradientUpdate,
    apply_state_difference,
    apply_update,
    extract_gradients,
    make_update,
    state_difference,
)
from repro.federated.sync import DecoderSynchronizer, SyncConfig, SyncRecord, parameter_drift

__all__ = [
    "GradientUpdate",
    "extract_gradients",
    "make_update",
    "apply_update",
    "state_difference",
    "apply_state_difference",
    "CompressedGradients",
    "compress_topk",
    "decompress",
    "compression_error",
    "DecoderSynchronizer",
    "SyncConfig",
    "SyncRecord",
    "parameter_drift",
    "AggregationResult",
    "federated_average_states",
    "federated_average_gradients",
    "aggregate_into_module",
]
