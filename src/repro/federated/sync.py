"""Decoder-copy synchronization between sender and receiver edge servers.

This implements the update flow of Fig. 1 step ④: the sender edge fine-tunes
the user's individual model locally, packages the decoder gradient, optionally
compresses it, and sends it over the inter-edge backhaul so the receiver's
decoder copy stays consistent.  The protocol records bytes on the wire so E5
can compare gradient sync against shipping full decoder weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.edge.network import NetworkTopology
from repro.exceptions import FederatedError
from repro.federated.compression import compress_topk, decompress
from repro.federated.gradients import GradientUpdate, apply_update
from repro.nn.module import Module


@dataclass
class SyncRecord:
    """Accounting for one synchronization round."""

    round_index: int
    user_id: str
    domain: str
    payload_bytes: float
    transfer_time_s: float
    compressed: bool
    parameter_drift_after: float


@dataclass
class SyncConfig:
    """Configuration of the decoder synchronization protocol."""

    compress: bool = False
    topk_fraction: float = 0.1
    bits_per_value: int = 8
    learning_rate: Optional[float] = None


class DecoderSynchronizer:
    """Keeps a receiver-side decoder copy in sync with the sender's individual decoder.

    Parameters
    ----------
    topology:
        Network topology used to cost the gradient transfer.
    sender_node, receiver_node:
        Names of the two edge servers in the topology.
    config:
        Compression and learning-rate settings.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        sender_node: str,
        receiver_node: str,
        config: Optional[SyncConfig] = None,
    ) -> None:
        self.topology = topology
        self.sender_node = sender_node
        self.receiver_node = receiver_node
        self.config = config or SyncConfig()
        self.records: List[SyncRecord] = []
        self._round = 0

    # ------------------------------------------------------------------ #
    # Synchronization
    # ------------------------------------------------------------------ #
    def synchronize(
        self,
        update: GradientUpdate,
        receiver_decoder: Module,
        sender_decoder: Optional[Module] = None,
    ) -> SyncRecord:
        """Transmit ``update`` and apply it to ``receiver_decoder``.

        If ``sender_decoder`` is given, the post-sync parameter drift between
        the two copies is measured (it should be ~0 when compression is off
        and the sender applied the exact same update).
        """
        self._round += 1
        if self.config.compress:
            compressed = compress_topk(
                update, fraction=self.config.topk_fraction, bits_per_value=self.config.bits_per_value
            )
            payload_bytes = compressed.payload_bytes()
            applied_update = decompress(compressed)
        else:
            payload_bytes = update.payload_bytes()
            applied_update = update
        transfer_time = self.topology.transfer_time(self.sender_node, self.receiver_node, payload_bytes)
        apply_update(receiver_decoder, applied_update, learning_rate=self.config.learning_rate)
        drift = parameter_drift(sender_decoder, receiver_decoder) if sender_decoder is not None else float("nan")
        record = SyncRecord(
            round_index=self._round,
            user_id=update.user_id,
            domain=update.domain,
            payload_bytes=payload_bytes,
            transfer_time_s=transfer_time,
            compressed=self.config.compress,
            parameter_drift_after=drift,
        )
        self.records.append(record)
        return record

    def ship_full_model(self, state: Dict[str, np.ndarray], bytes_per_value: float = 4.0) -> SyncRecord:
        """Baseline: send the entire decoder state instead of a gradient.

        Used by E5 to quantify how much the gradient-only protocol saves.
        """
        self._round += 1
        payload_bytes = float(sum(np.asarray(v).size for v in state.values()) * bytes_per_value)
        transfer_time = self.topology.transfer_time(self.sender_node, self.receiver_node, payload_bytes)
        record = SyncRecord(
            round_index=self._round,
            user_id="-",
            domain="-",
            payload_bytes=payload_bytes,
            transfer_time_s=transfer_time,
            compressed=False,
            parameter_drift_after=0.0,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def total_bytes(self) -> float:
        """Total synchronization payload transmitted so far."""
        return sum(record.payload_bytes for record in self.records)

    def total_transfer_time(self) -> float:
        """Total time spent moving synchronization payloads."""
        return sum(record.transfer_time_s for record in self.records)


def parameter_drift(module_a: Module, module_b: Module) -> float:
    """Root-mean-square difference between two modules' parameters."""
    state_a = module_a.state_dict()
    state_b = module_b.state_dict()
    if set(state_a) != set(state_b):
        raise FederatedError("modules have different parameter names; cannot measure drift")
    squared = 0.0
    count = 0
    for name, value_a in state_a.items():
        value_a = np.asarray(value_a)
        value_b = np.asarray(state_b[name])
        if value_a.shape != value_b.shape:
            raise FederatedError(
                f"parameter {name!r} has mismatched shapes {value_a.shape} vs {value_b.shape}"
            )
        difference = value_a - value_b
        squared += float((difference**2).sum())
        count += difference.size
    return float(np.sqrt(squared / max(count, 1)))
