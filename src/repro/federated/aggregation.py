"""FedAvg-style aggregation of per-user updates into the domain's shared state.

The paper keeps general models frozen, but its Section II-D explicitly links
the update process to federated learning.  This module provides the standard
aggregation so deployments can periodically fold many users' individual-model
improvements into a *new* general model revision without touching the frozen
original (an extension the paper lists under future research).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import FederatedError
from repro.federated.gradients import GradientUpdate
from repro.nn.module import Module


@dataclass
class AggregationResult:
    """Result of one aggregation round."""

    num_updates: int
    parameter_names: List[str]
    average_norm: float


def federated_average_states(
    states: Sequence[Dict[str, np.ndarray]],
    weights: Sequence[float] | None = None,
) -> Dict[str, np.ndarray]:
    """Weighted average of multiple state dictionaries (FedAvg on weights)."""
    if not states:
        raise FederatedError("cannot aggregate zero states")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise FederatedError("weights and states must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise FederatedError("weights must sum to a positive value")
    names = set(states[0])
    for state in states[1:]:
        if set(state) != names:
            raise FederatedError("state dictionaries have inconsistent parameter names")
    averaged: Dict[str, np.ndarray] = {}
    for name in names:
        accumulator = np.zeros_like(np.asarray(states[0][name], dtype=np.float64))
        for state, weight in zip(states, weights):
            accumulator += (weight / total) * np.asarray(state[name], dtype=np.float64)
        averaged[name] = accumulator
    return averaged


def federated_average_gradients(updates: Sequence[GradientUpdate]) -> GradientUpdate:
    """Average several users' gradient updates into one aggregate update."""
    if not updates:
        raise FederatedError("cannot aggregate zero updates")
    names = set(updates[0].gradients)
    for update in updates[1:]:
        if set(update.gradients) != names:
            raise FederatedError("gradient updates have inconsistent parameter names")
    averaged: Dict[str, np.ndarray] = {}
    for name in names:
        averaged[name] = np.mean(
            [np.asarray(update.gradients[name], dtype=np.float64) for update in updates], axis=0
        )
    return GradientUpdate(
        user_id="aggregate",
        domain=updates[0].domain,
        round_index=max(update.round_index for update in updates),
        gradients=averaged,
        learning_rate=float(np.mean([update.learning_rate for update in updates])),
    )


def aggregate_into_module(module: Module, updates: Sequence[GradientUpdate]) -> AggregationResult:
    """Apply the FedAvg of ``updates`` to ``module`` (one SGD step)."""
    aggregate = federated_average_gradients(updates)
    own = dict(module.named_parameters())
    for name, gradient in aggregate.gradients.items():
        if name not in own:
            raise FederatedError(f"aggregate contains unknown parameter {name!r}")
        own[name].data -= aggregate.learning_rate * np.asarray(gradient, dtype=np.float64)
    return AggregationResult(
        num_updates=len(updates),
        parameter_names=sorted(aggregate.gradients),
        average_norm=aggregate.global_norm(),
    )
