"""Gradient packaging for the decoder-synchronization protocol.

Section II-D: "the gradient of decoder ``∇d_u1^m`` will be transmitted to the
receiver ``j`` to synchronize the ``d_u2^m``, which is similar to the update
process in traditional Federated Learning".  A :class:`GradientUpdate` is the
unit that crosses the network; this module measures its size and applies it to
a decoder replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import FederatedError
from repro.nn.module import Module


@dataclass
class GradientUpdate:
    """A named set of gradient arrays plus routing metadata."""

    user_id: str
    domain: str
    round_index: int
    gradients: Dict[str, np.ndarray] = field(default_factory=dict)
    learning_rate: float = 1e-2
    compressed: bool = False

    def num_values(self) -> int:
        """Total number of scalar gradient values."""
        return int(sum(np.asarray(g).size for g in self.gradients.values()))

    def payload_bytes(self, bytes_per_value: float = 4.0) -> float:
        """Bytes needed to transmit the update (dense float32 by default)."""
        return self.num_values() * bytes_per_value

    def global_norm(self) -> float:
        """L2 norm over all gradient values."""
        total = sum(float((np.asarray(g) ** 2).sum()) for g in self.gradients.values())
        return float(np.sqrt(total))


def extract_gradients(module: Module) -> Dict[str, np.ndarray]:
    """Copy the current gradients of ``module`` keyed by parameter name."""
    gradients: Dict[str, np.ndarray] = {}
    for name, parameter in module.named_parameters():
        if parameter.grad is not None:
            gradients[name] = parameter.grad.copy()
    return gradients


def make_update(
    module: Module,
    user_id: str,
    domain: str,
    round_index: int,
    learning_rate: float = 1e-2,
) -> GradientUpdate:
    """Package ``module``'s gradients into a :class:`GradientUpdate`."""
    gradients = extract_gradients(module)
    if not gradients:
        raise FederatedError("module has no gradients to package; run backward() first")
    return GradientUpdate(
        user_id=user_id,
        domain=domain,
        round_index=round_index,
        gradients=gradients,
        learning_rate=learning_rate,
    )


def apply_update(module: Module, update: GradientUpdate, learning_rate: Optional[float] = None) -> int:
    """Apply a gradient update to ``module`` with a plain SGD step.

    Returns the number of parameters updated.  Parameter names present in the
    update but missing from the module raise, because a silent mismatch would
    desynchronize the decoder copies the paper relies on.
    """
    learning_rate = update.learning_rate if learning_rate is None else learning_rate
    own = dict(module.named_parameters())
    applied = 0
    for name, gradient in update.gradients.items():
        if name not in own:
            raise FederatedError(f"update contains unknown parameter {name!r}")
        parameter = own[name]
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != parameter.data.shape:
            raise FederatedError(
                f"gradient shape {gradient.shape} does not match parameter {name!r} "
                f"shape {parameter.data.shape}"
            )
        parameter.data -= learning_rate * gradient
        applied += 1
    return applied


def state_difference(before: Dict[str, np.ndarray], after: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Per-parameter difference ``after - before`` (a model delta).

    Model deltas are an alternative to raw gradients for synchronization; the
    benches compare both against shipping the full model.
    """
    if set(before) != set(after):
        raise FederatedError("state dictionaries have different parameter names")
    return {name: np.asarray(after[name]) - np.asarray(before[name]) for name in before}


def apply_state_difference(module: Module, delta: Dict[str, np.ndarray]) -> None:
    """Add a model delta to ``module``'s parameters in place."""
    own = dict(module.named_parameters())
    for name, difference in delta.items():
        if name not in own:
            raise FederatedError(f"delta contains unknown parameter {name!r}")
        own[name].data += np.asarray(difference, dtype=np.float64)
