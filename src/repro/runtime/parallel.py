"""Process-pool fan-out for independent experiment work units.

The experiment suite is embarrassingly parallel at the row level: per-domain
codec training (E1/E2/E3/E6), per-(cache size x policy) replays (E7), and
per-(profile x batching) simulations (E9) share no state and are fully
determined by their explicit seeds.  :class:`ParallelRunner` fans such units
across a process pool and merges the results **in submission order**, so a
``--jobs N`` run is bit-identical to the serial one — parallelism only changes
wall-clock, never results.

Design constraints the runner enforces:

* Work functions must be module-level (picklable by reference) and take one
  picklable argument; results must be picklable.  All experiment workers
  follow this shape.
* ``jobs <= 1``, a single item, or an unavailable ``multiprocessing`` runtime
  all degrade to an in-process loop with identical semantics — the pool is an
  execution detail, never a correctness dependency.
* The ``fork`` start method is preferred (cheap, inherits ``sys.path`` and
  loaded modules); ``spawn`` is the fallback where fork does not exist.

Worker-count note: the pool never exceeds the item count, and chunking is
1 item per task so long rows interleave instead of convoying.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

logger = logging.getLogger(__name__)

Item = TypeVar("Item")
Result = TypeVar("Result")


def available_cpus() -> int:
    """Usable CPU count (affinity-aware where the platform exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: ``0`` means "all available cores"."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return available_cpus() if jobs == 0 else jobs


def _preferred_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


class ParallelRunner:
    """Maps a picklable function over items, optionally across processes.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (the default) runs everything in-process;
        ``0`` uses every available core.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        #: True when the *most recent* :meth:`map` wanted a pool and could
        #: not use one (pool creation failed, or the pool broke mid-run) and
        #: the batch ran serially instead.  Reset at the start of every map:
        #: a transient sandbox failure on one batch must not misreport the
        #: next batch as degraded.  Results are identical either way; the
        #: flag exists so tests and callers can assert *how* they were
        #: produced.
        self.degraded = False

    @property
    def parallel(self) -> bool:
        """Whether this runner would actually use a process pool."""
        return self.jobs > 1

    def map(self, function: Callable[[Item], Result], items: Sequence[Item]) -> List[Result]:
        """``[function(item) for item in items]``, fanned across the pool.

        Results come back in submission order regardless of which worker
        finished first, so callers can zip them against ``items``.  A worker
        exception propagates to the caller (remaining tasks are abandoned),
        matching the serial loop's fail-fast behaviour.
        """
        items = list(items)
        self.degraded = False
        if self.jobs <= 1 or len(items) <= 1:
            return [function(item) for item in items]
        workers = min(self.jobs, len(items))
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=_preferred_context())
        except (ImportError, OSError, PermissionError) as error:
            # Pool *creation* failed (no multiprocessing primitives, e.g. a
            # missing /dev/shm): the pool is an optimization, so degrade to
            # the serial loop — results are identical by construction.
            self.degraded = True
            logger.warning(
                "process pool creation failed (%s: %s); running %d items serially",
                type(error).__name__, error, len(items),
            )
            return [function(item) for item in items]
        try:
            with pool:
                return list(pool.map(function, items, chunksize=1))
        except BrokenProcessPool as error:
            # Workers died without a Python exception (seccomp'd clone, OOM
            # kill): same degradation.  Exceptions raised *by the work
            # function itself* are not caught here — they propagate to the
            # caller exactly as the serial loop's would (fail fast, no silent
            # serial re-run of the whole batch).
            self.degraded = True
            logger.warning(
                "process pool broke mid-run (%s); re-running %d items serially",
                error, len(items),
            )
            return [function(item) for item in items]

    def starmap(
        self, function: Callable[..., Result], argument_tuples: Iterable[Tuple]
    ) -> List[Result]:
        """:meth:`map` for functions taking multiple positional arguments."""
        return self.map(_StarCall(function), [tuple(args) for args in argument_tuples])


class _StarCall:
    """Picklable adapter unpacking one argument tuple into a call."""

    __slots__ = ("function",)

    def __init__(self, function: Callable[..., Result]) -> None:
        self.function = function

    def __call__(self, args: Tuple) -> Result:
        return self.function(*args)
