"""Parallel experiment runtime: deterministic seeds + process-pool fan-out.

The runtime makes the reproduction multi-core without changing any result:

* :class:`~repro.runtime.seedtree.SeedTree` — path-addressed, SeedSequence-
  derived seeds, so every work unit owns an independent stream that does not
  depend on scheduling order.
* :class:`~repro.runtime.parallel.ParallelRunner` — fans module-level worker
  functions across a process pool and merges results in submission order;
  ``jobs=1`` degrades to a plain in-process loop.

Experiments fan their independent rows (codec training per domain, simulation
rows per profile/batching/seed) through a runner obtained from
``ExperimentConfig.runner()``; the ``repro-experiment`` CLI exposes it as
``--jobs``.
"""

from repro.runtime.parallel import ParallelRunner, available_cpus, resolve_jobs
from repro.runtime.seedtree import SeedTree

__all__ = [
    "ParallelRunner",
    "SeedTree",
    "available_cpus",
    "resolve_jobs",
]
