"""Deterministic, path-addressed seed derivation for parallel experiments.

Parallel fan-out breaks naive seeding: handing workers ``seed + i`` couples
their streams (overlapping counter ranges for some bit generators) and makes
the derived seed depend on submission order.  A :class:`SeedTree` instead
derives every child seed from a *path* — a tuple of strings/ints naming the
work unit (``("e9", "poisson", "batch-8")``) — through
:class:`numpy.random.SeedSequence` spawning, so:

* the same root seed and path always yield the same child stream, no matter
  which process asks, in which order, or how many siblings exist;
* sibling streams are statistically independent (SeedSequence guarantees);
* a work unit can keep subdividing (``tree.child("e9").seed("row", 3)``)
  without coordinating with anyone else.

Path components are hashed (SHA-256) into ``spawn_key`` words rather than
enumerated, so adding or reordering siblings never shifts another path's
stream.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

PathComponent = Union[str, int]


def _component_words(component: PathComponent) -> Tuple[int, ...]:
    """Stable 32-bit words identifying one path component.

    Each encoding is **self-delimiting** — integers carry ``(tag, word_count,
    *words)`` and strings a fixed-width digest — so concatenating component
    blocks into one ``spawn_key`` is injective: no two distinct paths can
    flatten to the same key (a bare variable-length encoding would let a huge
    int collide with a sequence of small ones).
    """
    if isinstance(component, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("seed-tree path components must be str or int, not bool")
    if isinstance(component, int):
        if component < 0:
            raise ValueError(f"integer path components must be non-negative, got {component}")
        words = []
        value = component
        while True:
            words.append(value & 0xFFFFFFFF)
            value >>= 32
            if value == 0:
                break
        return (0, len(words), *words)  # tag 0: integer component
    if isinstance(component, str):
        digest = hashlib.sha256(component.encode("utf-8")).digest()
        return (1, *(int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)))
    raise TypeError(f"seed-tree path components must be str or int, got {type(component).__name__}")


class SeedTree:
    """Derives reproducible, independent child seeds from a root seed by path.

    Parameters
    ----------
    root:
        The experiment's top-level integer seed.
    path:
        Path of this node relative to the root (usually empty; children are
        created with :meth:`child`).
    """

    __slots__ = ("root", "path")

    def __init__(self, root: int, path: Tuple[PathComponent, ...] = ()) -> None:
        self.root = int(root)
        self.path = tuple(path)

    def child(self, *path: PathComponent) -> "SeedTree":
        """The subtree rooted at ``path`` below this node."""
        return SeedTree(self.root, self.path + path)

    def sequence(self, *path: PathComponent) -> np.random.SeedSequence:
        """The :class:`numpy.random.SeedSequence` addressed by ``path``."""
        spawn_key: Tuple[int, ...] = ()
        for component in self.path + path:
            spawn_key += _component_words(component)
        return np.random.SeedSequence(entropy=self.root, spawn_key=spawn_key)

    def seed(self, *path: PathComponent) -> int:
        """A stable 63-bit integer seed for ``path`` (feed to any seed= knob)."""
        return int(self.sequence(*path).generate_state(2, dtype=np.uint32).view(np.uint64)[0] >> 1)

    def rng(self, *path: PathComponent) -> np.random.Generator:
        """A fresh generator on the stream addressed by ``path``."""
        return np.random.default_rng(self.sequence(*path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(root={self.root}, path={self.path!r})"
