"""End-to-end physical channel pipeline: bits → modulate → noise → demodulate.

This composes the modulation, noise and channel-coding pieces into the
"Channel encoding / Physical channel / Channel decoding" stages of the
paper's workflow and reports per-transmission statistics (bit errors, symbols
used) that the system-level metrics aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.coding import ChannelCode, IdentityCode
from repro.channel.modulation import ModulationScheme, get_modulation
from repro.channel.noise import AwgnChannel, NoiseModel
from repro.exceptions import ChannelError
from repro.utils.rng import SeedLike


@dataclass
class TransmissionReport:
    """Statistics of one pass through the physical channel."""

    information_bits: int
    coded_bits: int
    symbols: int
    bit_errors_precorrection: int
    bit_errors_postcorrection: int
    snr_db: float

    @property
    def bit_error_rate(self) -> float:
        """Post-correction bit error rate."""
        if self.information_bits == 0:
            return 0.0
        return self.bit_errors_postcorrection / self.information_bits

    @property
    def raw_bit_error_rate(self) -> float:
        """Pre-correction (channel) bit error rate."""
        if self.coded_bits == 0:
            return 0.0
        return self.bit_errors_precorrection / self.coded_bits


@dataclass
class ChannelConfig:
    """Configuration for :class:`PhysicalChannel`."""

    modulation: str = "qpsk"
    noise_kind: str = "awgn"
    snr_db: float = 10.0
    channel_code: Optional[ChannelCode] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.channel_code is None:
            self.channel_code = IdentityCode()


class PhysicalChannel:
    """Simulated physical channel transporting bit arrays.

    Parameters
    ----------
    modulation:
        Modulation scheme or its name.
    noise:
        Noise model instance; defaults to AWGN at ``snr_db``.
    channel_code:
        Channel code applied before modulation and decoded after
        demodulation.
    """

    def __init__(
        self,
        modulation: ModulationScheme | str = "qpsk",
        noise: Optional[NoiseModel] = None,
        snr_db: float = 10.0,
        channel_code: Optional[ChannelCode] = None,
        seed: SeedLike = None,
    ) -> None:
        self.modulation = get_modulation(modulation) if isinstance(modulation, str) else modulation
        self.noise = noise if noise is not None else AwgnChannel(snr_db, seed=seed)
        self.channel_code = channel_code if channel_code is not None else IdentityCode()
        self.history: list[TransmissionReport] = []

    @property
    def snr_db(self) -> float:
        """SNR (dB) of the underlying noise model."""
        return self.noise.snr_db

    def transmit(self, bits: np.ndarray) -> tuple[np.ndarray, TransmissionReport]:
        """Send ``bits`` through coding, modulation, noise and decoding.

        Returns the received information bits (same length as the input) and a
        :class:`TransmissionReport`.
        """
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ChannelError("transmit expects a binary array")

        coded = self.channel_code.encode(bits)
        symbols = self.modulation.modulate(coded)
        received_symbols = self.noise.apply(symbols, signal_power=self.modulation.average_energy)
        demodulated = self.modulation.demodulate(received_symbols)[: coded.size]
        decoded = self.channel_code.decode(demodulated)[: bits.size]

        report = TransmissionReport(
            information_bits=int(bits.size),
            coded_bits=int(coded.size),
            symbols=int(symbols.size),
            bit_errors_precorrection=int(np.count_nonzero(coded != demodulated)),
            bit_errors_postcorrection=int(np.count_nonzero(bits != decoded)),
            snr_db=float(self.noise.snr_db),
        )
        self.history.append(report)
        return decoded, report

    def total_symbols(self) -> int:
        """Total channel symbols used since construction."""
        return sum(report.symbols for report in self.history)

    def total_information_bits(self) -> int:
        """Total information bits carried since construction."""
        return sum(report.information_bits for report in self.history)

    def reset_history(self) -> None:
        """Forget accumulated transmission reports."""
        self.history.clear()


def measure_bit_error_rate(
    channel: PhysicalChannel,
    num_bits: int = 10_000,
    seed: SeedLike = None,
) -> float:
    """Empirical BER of ``channel`` on random data (utility for calibration)."""
    from repro.utils.rng import new_rng

    rng = new_rng(seed)
    bits = rng.integers(0, 2, size=num_bits)
    received, report = channel.transmit(bits)
    del received
    return report.bit_error_rate
