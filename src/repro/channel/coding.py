"""Channel coding: repetition and Hamming(7,4) block codes plus CRC framing.

These provide the "Channel encoding" / "Channel decoding" stages of the
paper's pipeline.  They are deliberately classic, well-understood codes so the
semantic-level gains measured in the experiments cannot be attributed to
exotic channel coding.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.exceptions import CodingError

# Hamming(7,4) generator and parity-check matrices (systematic form).
_HAMMING_GENERATOR = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.int64,
)
_HAMMING_PARITY_CHECK = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.int64,
)
# Map a syndrome (as integer) to the bit position it identifies as flipped.
_SYNDROME_TO_POSITION = {}
for _position in range(7):
    _error = np.zeros(7, dtype=np.int64)
    _error[_position] = 1
    _syndrome = (_HAMMING_PARITY_CHECK @ _error) % 2
    _SYNDROME_TO_POSITION[int(_syndrome[0] * 4 + _syndrome[1] * 2 + _syndrome[2])] = _position


class ChannelCode:
    """Interface for binary block channel codes."""

    name: str = "identity"
    rate: float = 1.0

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode an information bit array into a (longer) coded bit array."""
        return np.asarray(bits, dtype=np.int64).reshape(-1)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Decode a coded bit array back to information bits."""
        return np.asarray(bits, dtype=np.int64).reshape(-1)

    def coded_length(self, num_information_bits: int) -> int:
        """Number of coded bits produced for ``num_information_bits`` inputs."""
        return len(self.encode(np.zeros(num_information_bits, dtype=np.int64)))


class IdentityCode(ChannelCode):
    """No channel coding (rate 1)."""


class RepetitionCode(ChannelCode):
    """Repeat every bit ``repetitions`` times; decode by majority vote."""

    def __init__(self, repetitions: int = 3) -> None:
        if repetitions < 1 or repetitions % 2 == 0:
            raise CodingError(f"repetitions must be a positive odd number, got {repetitions}")
        self.repetitions = repetitions
        self.name = f"repetition-{repetitions}"
        self.rate = 1.0 / repetitions

    def encode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        return np.repeat(bits, self.repetitions)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        if bits.size % self.repetitions:
            raise CodingError(
                f"coded length {bits.size} is not a multiple of {self.repetitions}"
            )
        groups = bits.reshape(-1, self.repetitions)
        return (groups.sum(axis=1) > self.repetitions // 2).astype(np.int64)


class HammingCode(ChannelCode):
    """Hamming(7,4) code correcting one bit error per 7-bit block."""

    name = "hamming-7-4"
    rate = 4.0 / 7.0

    def encode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        remainder = bits.size % 4
        if remainder:
            bits = np.concatenate([bits, np.zeros(4 - remainder, dtype=np.int64)])
        blocks = bits.reshape(-1, 4)
        coded = (blocks @ _HAMMING_GENERATOR) % 2
        return coded.reshape(-1)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        if bits.size % 7:
            raise CodingError(f"coded length {bits.size} is not a multiple of 7")
        blocks = bits.reshape(-1, 7).copy()
        syndromes = (blocks @ _HAMMING_PARITY_CHECK.T) % 2
        for row, syndrome in enumerate(syndromes):
            key = int(syndrome[0] * 4 + syndrome[1] * 2 + syndrome[2])
            if key != 0 and key in _SYNDROME_TO_POSITION:
                position = _SYNDROME_TO_POSITION[key]
                blocks[row, position] ^= 1
        return blocks[:, :4].reshape(-1)


def make_channel_code(name: str, **kwargs: int) -> ChannelCode:
    """Factory: ``identity``, ``repetition`` (``repetitions=``), or ``hamming``."""
    name = name.lower()
    if name in ("identity", "none"):
        return IdentityCode()
    if name == "repetition":
        return RepetitionCode(**kwargs)
    if name in ("hamming", "hamming74", "hamming-7-4"):
        return HammingCode()
    raise CodingError(f"unknown channel code {name!r}")


# --------------------------------------------------------------------------- #
# Bit/byte conversion and CRC framing
# --------------------------------------------------------------------------- #
def bytes_to_bits(payload: bytes) -> np.ndarray:
    """Unpack bytes into a bit array (most-significant bit first)."""
    array = np.frombuffer(payload, dtype=np.uint8)
    return np.unpackbits(array).astype(np.int64)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit array (padded with zeros to a byte boundary) into bytes."""
    bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
    remainder = bits.size % 8
    if remainder:
        bits = np.concatenate([bits, np.zeros(8 - remainder, dtype=np.uint8)])
    return np.packbits(bits).tobytes()


def crc32(payload: bytes) -> int:
    """CRC-32 checksum of ``payload``."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def add_crc(payload: bytes) -> bytes:
    """Append a 4-byte CRC-32 to ``payload``."""
    return payload + crc32(payload).to_bytes(4, "big")


def check_and_strip_crc(framed: bytes) -> Tuple[bytes, bool]:
    """Split ``framed`` into (payload, crc_ok)."""
    if len(framed) < 4:
        return framed, False
    payload, checksum = framed[:-4], framed[-4:]
    return payload, crc32(payload) == int.from_bytes(checksum, "big")
