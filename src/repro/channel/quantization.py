"""Quantization of real-valued semantic feature vectors into bits.

The semantic encoder produces continuous feature vectors; to send them over a
digital channel they are uniformly quantized.  The number of bits per value is
the knob trading semantic fidelity against transmitted payload size, which
experiment E1 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ChannelError


@dataclass(frozen=True)
class QuantizationSpec:
    """Uniform quantizer configuration.

    Attributes
    ----------
    bits_per_value:
        Number of bits used per scalar feature (1-16).
    clip_range:
        Values are clipped to ``[-clip_range, clip_range]`` before
        quantization; the range is transmitted implicitly (fixed by the spec).
        The default of 1.0 matches the tanh-bounded features produced by the
        semantic encoders.
    """

    bits_per_value: int = 8
    clip_range: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= self.bits_per_value <= 16:
            raise ChannelError(f"bits_per_value must be in [1, 16], got {self.bits_per_value}")
        if self.clip_range <= 0:
            raise ChannelError(f"clip_range must be positive, got {self.clip_range}")

    @property
    def levels(self) -> int:
        """Number of quantization levels."""
        return 2**self.bits_per_value


def quantize(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize float ``values`` into integer level indices."""
    values = np.asarray(values, dtype=np.float64)
    clipped = np.clip(values, -spec.clip_range, spec.clip_range)
    normalized = (clipped + spec.clip_range) / (2.0 * spec.clip_range)
    indices = np.round(normalized * (spec.levels - 1)).astype(np.int64)
    return indices


def dequantize(indices: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Reconstruct float values from quantization ``indices``."""
    indices = np.asarray(indices, dtype=np.float64)
    normalized = indices / (spec.levels - 1)
    return normalized * (2.0 * spec.clip_range) - spec.clip_range


def indices_to_bits(indices: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Serialize level indices into a flat bit array (MSB first)."""
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    if indices.size and (indices.min() < 0 or indices.max() >= spec.levels):
        raise ChannelError("quantization indices out of range for the spec")
    shifts = np.arange(spec.bits_per_value - 1, -1, -1)
    bits = (indices[:, None] >> shifts) & 1
    return bits.reshape(-1).astype(np.int64)


def bits_to_indices(bits: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Inverse of :func:`indices_to_bits`."""
    bits = np.asarray(bits, dtype=np.int64).reshape(-1)
    if bits.size % spec.bits_per_value:
        raise ChannelError(
            f"bit array length {bits.size} not divisible by bits_per_value {spec.bits_per_value}"
        )
    groups = bits.reshape(-1, spec.bits_per_value)
    weights = 2 ** np.arange(spec.bits_per_value - 1, -1, -1)
    return (groups * weights).sum(axis=1)


def features_to_bits(features: np.ndarray, spec: QuantizationSpec) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Quantize a feature array to bits, returning the bits and original shape."""
    features = np.asarray(features, dtype=np.float64)
    indices = quantize(features, spec)
    return indices_to_bits(indices, spec), features.shape


def bits_to_features(bits: np.ndarray, shape: Tuple[int, ...], spec: QuantizationSpec) -> np.ndarray:
    """Reconstruct a feature array of ``shape`` from transmitted bits."""
    indices = bits_to_indices(bits, spec)
    expected = int(np.prod(shape))
    if indices.size < expected:
        raise ChannelError(f"not enough bits to reconstruct shape {shape}")
    return dequantize(indices[:expected], spec).reshape(shape)


def quantization_error(features: np.ndarray, spec: QuantizationSpec) -> float:
    """Root-mean-square error introduced by quantizing ``features``."""
    features = np.asarray(features, dtype=np.float64)
    reconstructed = dequantize(quantize(features, spec), spec)
    return float(np.sqrt(np.mean((features - reconstructed) ** 2)))
