"""Digital modulation schemes mapping bits to complex channel symbols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.exceptions import ChannelError


@dataclass(frozen=True)
class ModulationScheme:
    """A memoryless modulation defined by its constellation.

    Attributes
    ----------
    name:
        Scheme identifier, e.g. ``"qpsk"``.
    bits_per_symbol:
        Number of bits carried by one complex symbol.
    constellation:
        Complex constellation points indexed by the integer value of the bit
        group (most-significant bit first).
    """

    name: str
    bits_per_symbol: int
    constellation: np.ndarray

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit array (values 0/1) to complex symbols.

        The bit array is padded with zeros to a multiple of
        ``bits_per_symbol``.
        """
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ChannelError("modulate expects a binary array")
        remainder = bits.size % self.bits_per_symbol
        if remainder:
            bits = np.concatenate([bits, np.zeros(self.bits_per_symbol - remainder, dtype=np.int64)])
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 2 ** np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = groups @ weights
        return self.constellation[indices]

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demodulation: nearest constellation point per symbol."""
        symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        distances = np.abs(symbols[:, None] - self.constellation[None, :])
        indices = np.argmin(distances, axis=1)
        bits = ((indices[:, None] >> np.arange(self.bits_per_symbol - 1, -1, -1)) & 1).astype(np.int64)
        return bits.reshape(-1)

    @property
    def average_energy(self) -> float:
        """Mean symbol energy of the constellation (1.0 for normalized schemes)."""
        return float(np.mean(np.abs(self.constellation) ** 2))


def _gray_to_binary(value: int) -> int:
    result = value
    shift = 1
    while (value >> shift) > 0:
        result ^= value >> shift
        shift += 1
    return result


def bpsk() -> ModulationScheme:
    """Binary phase-shift keying: one bit per symbol at ±1."""
    return ModulationScheme("bpsk", 1, np.array([1.0 + 0j, -1.0 + 0j]))


def qpsk() -> ModulationScheme:
    """Quadrature phase-shift keying with Gray mapping, unit energy."""
    scale = 1.0 / np.sqrt(2.0)
    points = np.array(
        [scale * (1 + 1j), scale * (1 - 1j), scale * (-1 + 1j), scale * (-1 - 1j)],
        dtype=np.complex128,
    )
    return ModulationScheme("qpsk", 2, points)


def qam16() -> ModulationScheme:
    """16-QAM with per-axis Gray mapping, normalized to unit average energy."""
    levels = np.array([-3.0, -1.0, 1.0, 3.0])
    points = np.zeros(16, dtype=np.complex128)
    for index in range(16):
        in_phase_bits = (index >> 2) & 0b11
        quadrature_bits = index & 0b11
        points[index] = levels[_gray_to_binary(in_phase_bits)] + 1j * levels[_gray_to_binary(quadrature_bits)]
    points /= np.sqrt(np.mean(np.abs(points) ** 2))
    return ModulationScheme("qam16", 4, points)


_SCHEMES: Dict[str, ModulationScheme] = {}


def get_modulation(name: str) -> ModulationScheme:
    """Look up a modulation scheme by name (``bpsk``, ``qpsk`` or ``qam16``)."""
    if not _SCHEMES:
        for scheme in (bpsk(), qpsk(), qam16()):
            _SCHEMES[scheme.name] = scheme
    if name not in _SCHEMES:
        raise ChannelError(f"unknown modulation {name!r}; choose from {sorted(_SCHEMES)}")
    return _SCHEMES[name]
