"""Noise and fading models for the simulated physical channel."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ChannelError
from repro.utils.rng import SeedLike, new_rng


def snr_db_to_linear(snr_db: float) -> float:
    """Convert an SNR in decibels to a linear power ratio."""
    return float(10.0 ** (snr_db / 10.0))


def snr_linear_to_db(snr_linear: float) -> float:
    """Convert a linear SNR to decibels."""
    if snr_linear <= 0:
        raise ChannelError(f"linear SNR must be positive, got {snr_linear}")
    return float(10.0 * np.log10(snr_linear))


class NoiseModel:
    """Base class for channel noise/fading models."""

    def __init__(self, snr_db: float, seed: SeedLike = None) -> None:
        self.snr_db = float(snr_db)
        self.rng = new_rng(seed)

    @property
    def snr_linear(self) -> float:
        """Linear SNR corresponding to ``snr_db``."""
        return snr_db_to_linear(self.snr_db)

    def apply(self, symbols: np.ndarray, signal_power: float = 1.0) -> np.ndarray:
        """Return a noisy copy of the complex ``symbols``; overridden by subclasses."""
        raise NotImplementedError

    def _awgn(self, shape: Tuple[int, ...], noise_power: float) -> np.ndarray:
        scale = np.sqrt(noise_power / 2.0)
        return scale * (self.rng.normal(size=shape) + 1j * self.rng.normal(size=shape))


class AwgnChannel(NoiseModel):
    """Additive white Gaussian noise channel."""

    def apply(self, symbols: np.ndarray, signal_power: float = 1.0) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        noise_power = signal_power / self.snr_linear
        return symbols + self._awgn(symbols.shape, noise_power)


class RayleighChannel(NoiseModel):
    """Flat Rayleigh fading with perfect channel-state equalization.

    Each symbol is multiplied by an independent complex Gaussian fade and the
    receiver divides it back out, so the residual impairment is noise
    amplification on deep fades — the standard textbook model.
    """

    def apply(self, symbols: np.ndarray, signal_power: float = 1.0) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        fade = (self.rng.normal(size=symbols.shape) + 1j * self.rng.normal(size=symbols.shape)) / np.sqrt(2.0)
        noise_power = signal_power / self.snr_linear
        received = fade * symbols + self._awgn(symbols.shape, noise_power)
        # Zero-forcing equalization with perfect CSI.
        safe_fade = np.where(np.abs(fade) < 1e-6, 1e-6 + 0j, fade)
        return received / safe_fade


class RicianChannel(NoiseModel):
    """Rician fading: a line-of-sight component plus Rayleigh scatter.

    ``k_factor`` is the power ratio of the line-of-sight path to the scattered
    paths; ``k_factor -> inf`` degenerates to AWGN and ``k_factor = 0`` to
    Rayleigh.
    """

    def __init__(self, snr_db: float, k_factor: float = 3.0, seed: SeedLike = None) -> None:
        super().__init__(snr_db, seed=seed)
        if k_factor < 0:
            raise ChannelError(f"k_factor must be non-negative, got {k_factor}")
        self.k_factor = k_factor

    def apply(self, symbols: np.ndarray, signal_power: float = 1.0) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        los = np.sqrt(self.k_factor / (self.k_factor + 1.0))
        scatter_scale = np.sqrt(1.0 / (self.k_factor + 1.0))
        scatter = (self.rng.normal(size=symbols.shape) + 1j * self.rng.normal(size=symbols.shape)) / np.sqrt(2.0)
        fade = los + scatter_scale * scatter
        noise_power = signal_power / self.snr_linear
        received = fade * symbols + self._awgn(symbols.shape, noise_power)
        safe_fade = np.where(np.abs(fade) < 1e-6, 1e-6 + 0j, fade)
        return received / safe_fade


class ErasureChannel(NoiseModel):
    """Packet-erasure model: each symbol is zeroed with probability ``erasure_probability``.

    Used to model congestion-induced loss at the network layer rather than
    radio noise, so ``snr_db`` is accepted but ignored.
    """

    def __init__(self, erasure_probability: float, seed: SeedLike = None) -> None:
        super().__init__(snr_db=np.inf, seed=seed)
        if not 0.0 <= erasure_probability <= 1.0:
            raise ChannelError(f"erasure probability must be in [0, 1], got {erasure_probability}")
        self.erasure_probability = erasure_probability

    def apply(self, symbols: np.ndarray, signal_power: float = 1.0) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=np.complex128)
        keep = self.rng.random(symbols.shape) >= self.erasure_probability
        return symbols * keep


def make_noise_model(kind: str, snr_db: float, seed: SeedLike = None, **kwargs: float) -> NoiseModel:
    """Factory for noise models by name (``awgn``, ``rayleigh``, ``rician``, ``erasure``)."""
    kind = kind.lower()
    if kind == "awgn":
        return AwgnChannel(snr_db, seed=seed)
    if kind == "rayleigh":
        return RayleighChannel(snr_db, seed=seed)
    if kind == "rician":
        return RicianChannel(snr_db, seed=seed, **kwargs)
    if kind == "erasure":
        probability = float(kwargs.get("erasure_probability", 0.1))
        return ErasureChannel(probability, seed=seed)
    raise ChannelError(f"unknown noise model {kind!r}")
