"""Shared utilities: seeded randomness, registries, and serialization."""

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.registry import Registry
from repro.utils.serialization import from_json_file, to_json_file
from repro.utils.statistics import OnlineStatistics, ewma, percentile

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rng",
    "Registry",
    "from_json_file",
    "to_json_file",
    "OnlineStatistics",
    "ewma",
    "percentile",
]
