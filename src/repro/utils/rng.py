"""Deterministic random-number-generation helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
experiments reproducible: a single top-level seed deterministically derives
the seeds of every sub-component through :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int = 1) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Child streams are statistically independent of each other and of the
    parent, which lets one experiment seed drive many components without
    accidental correlation.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = None
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        """The component's random generator, created on first access."""
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator with one derived from ``seed``."""
        self._seed = seed
        self._rng = new_rng(seed)
