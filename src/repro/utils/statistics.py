"""Lightweight streaming statistics used by the simulators and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def ewma(values: Sequence[float], alpha: float = 0.3) -> list[float]:
    """Exponentially weighted moving average of ``values``.

    ``alpha`` is the smoothing factor in ``(0, 1]``; higher values track the
    latest observation more closely.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    smoothed: list[float] = []
    current: float | None = None
    for value in values:
        current = value if current is None else alpha * value + (1 - alpha) * current
        smoothed.append(current)
    return smoothed


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``values``."""
    if not values:
        raise ValueError("percentile of empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be within [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class OnlineStatistics:
    """Welford's online mean/variance accumulator.

    Tracks count, mean, variance, min and max without storing samples, which
    keeps long simulations memory-bounded.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict[str, float]:
        """Summary dictionary convenient for result tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
        }
