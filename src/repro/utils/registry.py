"""A tiny name -> factory registry used for policies, codecs and baselines."""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Maps string names to factories so experiments can be configured by name.

    Example
    -------
    >>> policies: Registry[object] = Registry("cache-policy")
    >>> @policies.register("lru")
    ... class Lru: ...
    >>> policies.create("lru")  # doctest: +ELLIPSIS
    <repro.utils.registry.Lru object at ...>
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}

    def register(self, name: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator registering ``factory`` under ``name``."""

        def decorator(factory: Callable[..., T]) -> Callable[..., T]:
            if name in self._factories:
                raise KeyError(f"{self.kind} {name!r} registered twice")
            self._factories[name] = factory
            return factory

        return decorator

    def create(self, name: str, /, *args: object, **kwargs: object) -> T:
        """Instantiate the factory registered under ``name``."""
        if name not in self._factories:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        return self._factories[name](*args, **kwargs)

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)
