"""JSON serialization helpers tolerant of numpy scalar/array values."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars/arrays and dataclasses."""

    def default(self, o: Any) -> Any:  # noqa: D102 - inherited
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        return super().default(o)


def to_json(value: Any, *, indent: int = 2) -> str:
    """Serialize ``value`` to a JSON string, converting numpy types."""
    return json.dumps(value, cls=_NumpyJSONEncoder, indent=indent, sort_keys=True)


def to_json_file(value: Any, path: PathLike, *, indent: int = 2) -> Path:
    """Serialize ``value`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(value, indent=indent), encoding="utf-8")
    return path


def from_json_file(path: PathLike) -> Any:
    """Load a JSON document from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
