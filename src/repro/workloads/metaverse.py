"""A Metaverse-flavoured workload scenario.

The paper's introduction motivates semantic communication with Metaverse-style
applications: many concurrent users in shared virtual venues exchanging
latency-sensitive messages whose topics follow the venue they are in.  This
module composes the domain corpora, user styles and Zipf traces into such a
scenario so examples and benchmarks can exercise a realistic end-to-end load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng, spawn_rng
from repro.workloads.domains import DomainSpec, default_domains
from repro.workloads.generator import GeneratedMessage, MessageGenerator, UserStyle, build_user_population


@dataclass(frozen=True)
class VirtualVenue:
    """A Metaverse venue whose conversations concentrate on one domain."""

    name: str
    dominant_domain: str
    dominance: float = 0.8
    capacity: int = 50


@dataclass
class MetaverseEvent:
    """One timestamped message event inside a venue."""

    timestamp: float
    venue: str
    message: GeneratedMessage
    latency_budget_ms: float


@dataclass
class MetaverseScenario:
    """A full scenario: venues, users, and the generated event stream."""

    venues: List[VirtualVenue]
    users: List[UserStyle]
    events: List[MetaverseEvent] = field(default_factory=list)

    def events_for_venue(self, venue_name: str) -> List[MetaverseEvent]:
        """Events that occurred in ``venue_name``, in time order."""
        return [event for event in self.events if event.venue == venue_name]

    def domain_mix(self) -> Dict[str, int]:
        """How many events used each domain (sanity check on venue dominance)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.message.domain] = counts.get(event.message.domain, 0) + 1
        return counts


def default_venues(domains: Optional[Dict[str, DomainSpec]] = None) -> List[VirtualVenue]:
    """One venue per domain: tech expo, health clinic, press hall, concert stage."""
    domains = domains or default_domains()
    labels = {
        "it": "tech-expo",
        "medical": "virtual-clinic",
        "news": "press-hall",
        "entertainment": "concert-stage",
    }
    venues = []
    for domain in domains:
        venues.append(VirtualVenue(name=labels.get(domain, f"venue-{domain}"), dominant_domain=domain))
    return venues


class MetaverseWorkload:
    """Generates :class:`MetaverseScenario` objects.

    Parameters
    ----------
    num_users:
        Size of the user population shared across venues.
    arrival_rate:
        Mean events per simulated second over the whole scenario.
    latency_budget_ms:
        Baseline latency budget attached to events; interactive venues get a
        tighter budget.
    """

    def __init__(
        self,
        num_users: int = 12,
        arrival_rate: float = 5.0,
        latency_budget_ms: float = 100.0,
        domains: Optional[Dict[str, DomainSpec]] = None,
        seed: SeedLike = None,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        self.domains = domains or default_domains()
        self.num_users = num_users
        self.arrival_rate = arrival_rate
        self.latency_budget_ms = latency_budget_ms
        self.rng = new_rng(seed)

    def generate(self, num_events: int, venues: Optional[Sequence[VirtualVenue]] = None) -> MetaverseScenario:
        """Generate a scenario with ``num_events`` message events."""
        if num_events < 0:
            raise ValueError(f"num_events must be non-negative, got {num_events}")
        venues = list(venues) if venues is not None else default_venues(self.domains)
        user_seed, generator_seed, event_seed = (int(s.integers(0, 2**31 - 1)) for s in spawn_rng(self.rng, 3))
        users = build_user_population(self.num_users, seed=user_seed, domains=self.domains)
        generator = MessageGenerator(users, domains=self.domains, seed=generator_seed)
        event_rng = new_rng(event_seed)

        timestamps = np.cumsum(event_rng.exponential(1.0 / self.arrival_rate, size=num_events))
        events: List[MetaverseEvent] = []
        for index in range(num_events):
            venue = venues[int(event_rng.integers(len(venues)))]
            user = users[int(event_rng.integers(len(users)))]
            # Venue dominance: most messages in a venue use its dominant domain.
            if event_rng.random() < venue.dominance:
                domain = venue.dominant_domain
            else:
                names = list(self.domains)
                domain = names[int(event_rng.integers(len(names)))]
            sentence = self.domains[domain].sample_sentence(event_rng)
            styled = user.apply(sentence, event_rng)
            message = GeneratedMessage(user_id=user.user_id, domain=domain, text=styled, turn_index=index)
            budget = self.latency_budget_ms * float(event_rng.uniform(0.5, 1.5))
            events.append(
                MetaverseEvent(
                    timestamp=float(timestamps[index]),
                    venue=venue.name,
                    message=message,
                    latency_budget_ms=budget,
                )
            )
        return MetaverseScenario(venues=list(venues), users=users, events=events)
