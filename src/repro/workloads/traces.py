"""Request traces with skewed (Zipf) domain popularity for caching studies.

Experiment E7 sweeps cache size against hit rate; the shape of that curve
depends on how skewed domain/model popularity is, which this module controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def zipf_probabilities(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities for ranks ``1..num_items``."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


@dataclass(frozen=True)
class TraceRequest:
    """One request in a model-access trace."""

    timestamp: float
    user_id: str
    domain: str
    kind: str = "message"


@dataclass
class RequestTrace:
    """An ordered list of :class:`TraceRequest` plus summary helpers."""

    requests: List[TraceRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def domains(self) -> List[str]:
        """Domain of every request, in order."""
        return [request.domain for request in self.requests]

    def domain_counts(self) -> Dict[str, int]:
        """Number of requests per domain."""
        counts: Dict[str, int] = {}
        for request in self.requests:
            counts[request.domain] = counts.get(request.domain, 0) + 1
        return counts

    def users(self) -> List[str]:
        """Distinct users appearing in the trace, in first-seen order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.user_id, None)
        return list(seen)


def assemble_trace(
    timestamps: np.ndarray,
    domain_names: Sequence[str],
    probabilities: np.ndarray,
    num_users: int,
    rng: np.random.Generator,
) -> RequestTrace:
    """Attach Zipf-sampled domains and uniform users to arrival ``timestamps``.

    Shared tail of every trace generator: the arrival-time process varies
    (homogeneous Poisson, diurnal, ...), the domain/user sampling does not.
    """
    num_requests = len(timestamps)
    domain_indices = rng.choice(len(domain_names), size=num_requests, p=probabilities)
    user_indices = rng.integers(0, num_users, size=num_requests)
    requests = [
        TraceRequest(
            timestamp=float(timestamps[i]),
            user_id=f"user_{int(user_indices[i])}",
            domain=domain_names[int(domain_indices[i])],
        )
        for i in range(num_requests)
    ]
    return RequestTrace(requests=requests)


class ZipfTraceGenerator:
    """Generates request traces whose domain popularity follows a Zipf law.

    Parameters
    ----------
    domain_names:
        Candidate domains, ordered from most to least popular.
    exponent:
        Zipf skew; 0 gives uniform popularity, larger values concentrate
        requests on the first domains.
    arrival_rate:
        Mean number of requests per simulated second (Poisson arrivals).
    """

    def __init__(
        self,
        domain_names: Sequence[str],
        num_users: int = 10,
        exponent: float = 1.0,
        arrival_rate: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if not domain_names:
            raise ValueError("domain_names must not be empty")
        if num_users <= 0:
            raise ValueError(f"num_users must be positive, got {num_users}")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        self.domain_names = list(domain_names)
        self.num_users = num_users
        self.exponent = exponent
        self.arrival_rate = arrival_rate
        self.rng = new_rng(seed)
        self._probabilities = zipf_probabilities(len(self.domain_names), exponent)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-domain request probability used by the generator."""
        return self._probabilities.copy()

    def generate(self, num_requests: int) -> RequestTrace:
        """Sample ``num_requests`` Poisson-arriving requests."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be non-negative, got {num_requests}")
        timestamps = np.cumsum(self.rng.exponential(1.0 / self.arrival_rate, size=num_requests))
        return assemble_trace(timestamps, self.domain_names, self._probabilities, self.num_users, self.rng)


@dataclass
class TopicDriftTrace:
    """A conversation trace with latent topic segments for selection tests.

    ``domains[i]`` is the true domain of turn ``i``; segments have
    geometrically-distributed lengths so the recent context is informative
    about the current domain.
    """

    domains: List[str]
    segment_boundaries: List[int]

    def __len__(self) -> int:
        return len(self.domains)


def generate_topic_drift_trace(
    domain_names: Sequence[str],
    num_turns: int,
    persistence: float = 0.85,
    seed: SeedLike = None,
) -> TopicDriftTrace:
    """Generate a domain-per-turn trace where topics persist across turns."""
    if not domain_names:
        raise ValueError("domain_names must not be empty")
    if not 0.0 <= persistence < 1.0:
        raise ValueError(f"persistence must be in [0, 1), got {persistence}")
    rng = new_rng(seed)
    domains: List[str] = []
    boundaries: List[int] = []
    current: Optional[str] = None
    for turn in range(num_turns):
        if current is None or rng.random() >= persistence:
            choices = [name for name in domain_names if name != current] or list(domain_names)
            current = choices[int(rng.integers(len(choices)))]
            boundaries.append(turn)
        domains.append(current)
    return TopicDriftTrace(domains=domains, segment_boundaries=boundaries)
