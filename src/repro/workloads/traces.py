"""Request traces with skewed (Zipf) domain popularity for caching studies.

Experiment E7 sweeps cache size against hit rate; the shape of that curve
depends on how skewed domain/model popularity is, which this module controls.

Traces are stored **columnar**: one numpy structured array holding arrival
time, user index and domain index per request, plus the domain-name lookup
table.  Generating and shipping a multi-million-request trace is therefore
array work — :class:`TraceRequest` objects are materialized lazily, one at a
time, only where a consumer actually iterates (and the multi-cell simulator
bypasses even that, reading the columns directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng

#: Columnar storage of one request per row.  ``user``/``domain`` are indices
#: into the trace's label tables; per-domain token/FLOPs/byte costs stay
#: factored through those same indices (see ``MultiCellSimulator``), so the
#: trace never repeats per-request strings or cost scalars.
TRACE_DTYPE = np.dtype([("timestamp", "f8"), ("user", "i4"), ("domain", "i4")])


def zipf_probabilities(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf probabilities for ranks ``1..num_items``."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


@dataclass(frozen=True)
class TraceRequest:
    """One request in a model-access trace."""

    timestamp: float
    user_id: str
    domain: str
    kind: str = "message"


class RequestTrace:
    """An ordered request trace: columnar storage, object view on demand.

    Two construction modes:

    * ``RequestTrace(requests=[TraceRequest, ...])`` — the legacy object form,
      kept for hand-built traces in tests and small tools.
    * :meth:`from_columns` — the columnar form every generator produces: a
      structured array (:data:`TRACE_DTYPE`) plus the domain-name table.

    Iteration always yields :class:`TraceRequest` values; on a columnar trace
    they are materialized lazily one at a time, so iterating never builds the
    whole object list.  Summary helpers (:meth:`domain_counts`, :meth:`users`)
    run vectorized on the columns.
    """

    __slots__ = ("_requests", "_columns", "_domain_names")

    def __init__(self, requests: Optional[List[TraceRequest]] = None) -> None:
        self._requests: Optional[List[TraceRequest]] = list(requests) if requests is not None else []
        self._columns: Optional[np.ndarray] = None
        self._domain_names: tuple = ()

    @classmethod
    def from_columns(
        cls,
        timestamps: np.ndarray,
        user_indices: np.ndarray,
        domain_indices: np.ndarray,
        domain_names: Sequence[str],
    ) -> "RequestTrace":
        """Build a columnar trace from parallel per-request arrays."""
        num_requests = len(timestamps)
        if len(user_indices) != num_requests or len(domain_indices) != num_requests:
            raise ValueError("timestamps, user_indices and domain_indices must have equal length")
        columns = np.empty(num_requests, dtype=TRACE_DTYPE)
        columns["timestamp"] = timestamps
        columns["user"] = user_indices
        columns["domain"] = domain_indices
        trace = cls.__new__(cls)
        trace._requests = None
        trace._columns = columns
        trace._domain_names = tuple(domain_names)
        return trace

    # ------------------------------------------------------------------ #
    # Columnar accessors (the simulator's zero-copy fast path)
    # ------------------------------------------------------------------ #
    @property
    def is_columnar(self) -> bool:
        """Whether this trace carries columns (enables the array fast paths)."""
        return self._columns is not None

    @property
    def timestamps(self) -> np.ndarray:
        """Arrival timestamps as a float64 array (columnar traces only)."""
        return self._require_columns()["timestamp"]

    @property
    def user_indices(self) -> np.ndarray:
        """Per-request user index (``user_<i>``) array (columnar traces only)."""
        return self._require_columns()["user"]

    @property
    def domain_indices(self) -> np.ndarray:
        """Per-request index into :attr:`domain_names` (columnar traces only)."""
        return self._require_columns()["domain"]

    @property
    def domain_names(self) -> tuple:
        """Domain lookup table of a columnar trace."""
        self._require_columns()
        return self._domain_names

    def _require_columns(self) -> np.ndarray:
        if self._columns is None:
            raise ValueError("this RequestTrace was built from objects and has no columns")
        return self._columns

    # ------------------------------------------------------------------ #
    # Object view
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> List[TraceRequest]:
        """The trace as a list of :class:`TraceRequest` (materialized, cached)."""
        if self._requests is None:
            self._requests = list(iter(self))
        return self._requests

    def _materialize(self, index: int) -> TraceRequest:
        row = self._columns[index]
        return TraceRequest(
            timestamp=float(row["timestamp"]),
            user_id=f"user_{int(row['user'])}",
            domain=self._domain_names[int(row["domain"])],
        )

    def __len__(self) -> int:
        if self._columns is not None:
            return len(self._columns)
        return len(self._requests)

    def __iter__(self) -> Iterator[TraceRequest]:
        if self._requests is not None:
            return iter(self._requests)
        return (self._materialize(index) for index in range(len(self._columns)))

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def domains(self) -> List[str]:
        """Domain of every request, in order."""
        if self._columns is not None:
            names = np.asarray(self._domain_names, dtype=object)
            return list(names[self._columns["domain"]])
        return [request.domain for request in self._requests]

    def domain_counts(self) -> Dict[str, int]:
        """Number of requests per domain, keyed in first-seen order."""
        if self._columns is not None:
            indices = self._columns["domain"]
            if len(indices) == 0:
                return {}
            present, first_seen = np.unique(indices, return_index=True)
            counts = np.bincount(indices, minlength=len(self._domain_names))
            order = np.argsort(first_seen, kind="stable")
            return {
                self._domain_names[int(present[i])]: int(counts[present[i]]) for i in order
            }
        counts_by_name: Dict[str, int] = {}
        for request in self._requests:
            counts_by_name[request.domain] = counts_by_name.get(request.domain, 0) + 1
        return counts_by_name

    def users(self) -> List[str]:
        """Distinct users appearing in the trace, in first-seen order."""
        if self._columns is not None:
            indices = self._columns["user"]
            if len(indices) == 0:
                return []
            present, first_seen = np.unique(indices, return_index=True)
            order = np.argsort(first_seen, kind="stable")
            return [f"user_{int(present[i])}" for i in order]
        seen: Dict[str, None] = {}
        for request in self._requests:
            seen.setdefault(request.user_id, None)
        return list(seen)


def assemble_trace(
    timestamps: np.ndarray,
    domain_names: Sequence[str],
    probabilities: np.ndarray,
    num_users: int,
    rng: np.random.Generator,
) -> RequestTrace:
    """Attach Zipf-sampled domains and uniform users to arrival ``timestamps``.

    Shared tail of every trace generator: the arrival-time process varies
    (homogeneous Poisson, diurnal, ...), the domain/user sampling does not.
    The random draws are identical to the historical object-based assembler
    (``choice`` then ``integers``), so seeded traces are bit-compatible; only
    the storage changed from one object per request to three arrays.
    """
    num_requests = len(timestamps)
    domain_indices = rng.choice(len(domain_names), size=num_requests, p=probabilities)
    user_indices = rng.integers(0, num_users, size=num_requests)
    return RequestTrace.from_columns(
        np.asarray(timestamps, dtype=np.float64), user_indices, domain_indices, domain_names
    )


class ZipfTraceGenerator:
    """Generates request traces whose domain popularity follows a Zipf law.

    Parameters
    ----------
    domain_names:
        Candidate domains, ordered from most to least popular.
    exponent:
        Zipf skew; 0 gives uniform popularity, larger values concentrate
        requests on the first domains.
    arrival_rate:
        Mean number of requests per simulated second (Poisson arrivals).
    """

    def __init__(
        self,
        domain_names: Sequence[str],
        num_users: int = 10,
        exponent: float = 1.0,
        arrival_rate: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if not domain_names:
            raise ValueError("domain_names must not be empty")
        if num_users <= 0:
            raise ValueError(f"num_users must be positive, got {num_users}")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        self.domain_names = list(domain_names)
        self.num_users = num_users
        self.exponent = exponent
        self.arrival_rate = arrival_rate
        self.rng = new_rng(seed)
        self._probabilities = zipf_probabilities(len(self.domain_names), exponent)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-domain request probability used by the generator."""
        return self._probabilities.copy()

    def generate(self, num_requests: int) -> RequestTrace:
        """Sample ``num_requests`` Poisson-arriving requests."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be non-negative, got {num_requests}")
        timestamps = np.cumsum(self.rng.exponential(1.0 / self.arrival_rate, size=num_requests))
        return assemble_trace(timestamps, self.domain_names, self._probabilities, self.num_users, self.rng)


@dataclass
class TopicDriftTrace:
    """A conversation trace with latent topic segments for selection tests.

    ``domains[i]`` is the true domain of turn ``i``; segments have
    geometrically-distributed lengths so the recent context is informative
    about the current domain.
    """

    domains: List[str]
    segment_boundaries: List[int]

    def __len__(self) -> int:
        return len(self.domains)


def generate_topic_drift_trace(
    domain_names: Sequence[str],
    num_turns: int,
    persistence: float = 0.85,
    seed: SeedLike = None,
) -> TopicDriftTrace:
    """Generate a domain-per-turn trace where topics persist across turns."""
    if not domain_names:
        raise ValueError("domain_names must not be empty")
    if not 0.0 <= persistence < 1.0:
        raise ValueError(f"persistence must be in [0, 1), got {persistence}")
    rng = new_rng(seed)
    domains: List[str] = []
    boundaries: List[int] = []
    current: Optional[str] = None
    for turn in range(num_turns):
        if current is None or rng.random() >= persistence:
            choices = [name for name in domain_names if name != current] or list(domain_names)
            current = choices[int(rng.integers(len(choices)))]
            boundaries.append(turn)
        domains.append(current)
    return TopicDriftTrace(domains=domains, segment_boundaries=boundaries)
