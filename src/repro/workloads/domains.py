"""Synthetic domain definitions reproducing the paper's motivating example.

Section II-A motivates domain-specialized models with the word "bus", which
means a vehicle in everyday conversation but a hardware interconnect in
computer architecture.  The four major domains the paper names (IT, medical,
news, entertainment) are modelled here as small template grammars over
domain-specific vocabularies that deliberately *share* a set of polysemous
words; each domain uses those shared words in a different context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

#: Words that appear in more than one domain with different meanings.  These
#: drive the cross-domain mismatch that domain-specialized models fix.
POLYSEMOUS_WORDS: Tuple[str, ...] = (
    "bus",
    "virus",
    "cell",
    "driver",
    "server",
    "star",
    "operation",
    "stream",
    "channel",
    "patch",
)


@dataclass(frozen=True)
class DomainSpec:
    """Template grammar for one communication domain.

    Attributes
    ----------
    name:
        Domain identifier (e.g. ``"it"``).
    subjects, verbs, objects, modifiers:
        Word pools the sentence templates draw from.  Polysemous words placed
        in these pools acquire that domain's sense through co-occurrence.
    templates:
        Sentence templates with ``{subject}``/``{verb}``/``{object}``/
        ``{modifier}`` placeholders.
    """

    name: str
    subjects: Tuple[str, ...]
    verbs: Tuple[str, ...]
    objects: Tuple[str, ...]
    modifiers: Tuple[str, ...]
    templates: Tuple[str, ...] = (
        "the {subject} {verb} the {object}",
        "a {modifier} {subject} {verb} the {object}",
        "the {subject} {verb} a {modifier} {object}",
        "{subject} and {object} {verb} the {modifier} {subject}",
        "the {modifier} {object} {verb} the {subject}",
    )

    def vocabulary(self) -> List[str]:
        """All words the domain can produce (deduplicated, order preserved)."""
        seen: Dict[str, None] = {}
        for pool in (self.subjects, self.verbs, self.objects, self.modifiers, ("the", "a", "and")):
            for word in pool:
                seen.setdefault(word, None)
        return list(seen)

    def sample_sentence(self, rng: np.random.Generator) -> str:
        """Draw one sentence from the template grammar."""
        template = self.templates[int(rng.integers(len(self.templates)))]
        return template.format(
            subject=self.subjects[int(rng.integers(len(self.subjects)))],
            verb=self.verbs[int(rng.integers(len(self.verbs)))],
            object=self.objects[int(rng.integers(len(self.objects)))],
            modifier=self.modifiers[int(rng.integers(len(self.modifiers)))],
        )


def _it_domain() -> DomainSpec:
    return DomainSpec(
        name="it",
        subjects=("cpu", "kernel", "compiler", "server", "driver", "router", "scheduler", "cache"),
        verbs=("loads", "schedules", "compiles", "encrypts", "transmits", "caches", "patches", "reboots"),
        objects=("bus", "packet", "thread", "virus", "patch", "stream", "channel", "cell"),
        modifiers=("parallel", "virtual", "distributed", "encrypted", "idle", "remote", "cached"),
    )


def _medical_domain() -> DomainSpec:
    return DomainSpec(
        name="medical",
        subjects=("doctor", "nurse", "patient", "surgeon", "virus", "cell", "clinic", "lab"),
        verbs=("treats", "diagnoses", "examines", "infects", "monitors", "scans", "vaccinates", "heals"),
        objects=("patient", "tumor", "cell", "operation", "symptom", "dose", "patch", "organ"),
        modifiers=("chronic", "acute", "benign", "infected", "stable", "critical", "clinical"),
    )


def _news_domain() -> DomainSpec:
    return DomainSpec(
        name="news",
        subjects=("reporter", "government", "minister", "committee", "driver", "union", "channel", "agency"),
        verbs=("announces", "reports", "investigates", "approves", "criticizes", "elects", "debates", "publishes"),
        objects=("policy", "election", "budget", "strike", "bus", "reform", "star", "summit"),
        modifiers=("national", "public", "official", "breaking", "local", "federal", "economic"),
    )


def _entertainment_domain() -> DomainSpec:
    return DomainSpec(
        name="entertainment",
        subjects=("actor", "singer", "director", "band", "star", "audience", "studio", "server"),
        verbs=("performs", "releases", "streams", "premieres", "records", "applauds", "casts", "remixes"),
        objects=("album", "movie", "concert", "stream", "trailer", "operation", "sequel", "playlist"),
        modifiers=("viral", "award", "live", "animated", "acoustic", "blockbuster", "indie"),
    )


def default_domains() -> Dict[str, DomainSpec]:
    """The four major domains named in the paper (IT, medical, news, entertainment)."""
    domains = (_it_domain(), _medical_domain(), _news_domain(), _entertainment_domain())
    return {domain.name: domain for domain in domains}


DEFAULT_DOMAIN_NAMES: Tuple[str, ...] = tuple(default_domains().keys())


@dataclass
class DomainCorpus:
    """A sampled corpus of sentences for one domain."""

    domain: str
    sentences: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self):
        return iter(self.sentences)


def generate_domain_corpus(
    spec: DomainSpec,
    num_sentences: int,
    seed: SeedLike = None,
) -> DomainCorpus:
    """Sample ``num_sentences`` sentences from the domain grammar."""
    if num_sentences < 0:
        raise ValueError(f"num_sentences must be non-negative, got {num_sentences}")
    rng = new_rng(seed)
    sentences = [spec.sample_sentence(rng) for _ in range(num_sentences)]
    return DomainCorpus(domain=spec.name, sentences=sentences)


def generate_all_corpora(
    num_sentences_per_domain: int,
    seed: SeedLike = None,
    domains: Dict[str, DomainSpec] | None = None,
) -> Dict[str, DomainCorpus]:
    """Sample a corpus for every domain with independent sub-seeds."""
    domains = domains or default_domains()
    rng = new_rng(seed)
    corpora: Dict[str, DomainCorpus] = {}
    for name, spec in domains.items():
        sub_seed = int(rng.integers(0, 2**31 - 1))
        corpora[name] = generate_domain_corpus(spec, num_sentences_per_domain, seed=sub_seed)
    return corpora


def shared_vocabulary(domains: Dict[str, DomainSpec] | None = None) -> List[str]:
    """Words occurring in more than one domain (the polysemy set in practice)."""
    domains = domains or default_domains()
    counts: Dict[str, int] = {}
    for spec in domains.values():
        for word in set(spec.vocabulary()):
            counts[word] = counts.get(word, 0) + 1
    return sorted(word for word, count in counts.items() if count > 1)
