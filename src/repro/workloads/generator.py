"""Per-user message generation with individual language styles.

Section II-B argues that a domain-general model misses user-specific language
patterns ("different people may use the same word or phrase to mean different
things").  We model a user's style as (i) a personal synonym substitution map,
(ii) a bias toward a subset of the domain vocabulary, and (iii) habitual
pet phrases prepended to some messages.  A codec fine-tuned on one user's
transactions therefore fits that user measurably better than the general
model — exactly the effect experiment E3 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.workloads.domains import DomainSpec, default_domains
from repro.workloads.traces import RequestTrace, assemble_trace, zipf_probabilities


@dataclass
class UserStyle:
    """A user's idiosyncratic language profile.

    Attributes
    ----------
    user_id:
        Identifier of the user.
    substitutions:
        Personal word replacements (e.g. always says "machine" for "server").
    pet_phrases:
        Short phrases the user habitually prepends.
    pet_phrase_probability:
        Probability a message starts with a pet phrase.
    favourite_domain:
        The domain the user talks about most often.
    domain_affinity:
        Probability that a message is drawn from the favourite domain rather
        than a uniformly random domain.
    """

    user_id: str
    substitutions: Dict[str, str] = field(default_factory=dict)
    pet_phrases: List[str] = field(default_factory=list)
    pet_phrase_probability: float = 0.3
    favourite_domain: Optional[str] = None
    domain_affinity: float = 0.7

    def apply(self, sentence: str, rng: np.random.Generator) -> str:
        """Rewrite ``sentence`` in the user's personal style."""
        words = sentence.split()
        rewritten = [self.substitutions.get(word, word) for word in words]
        if self.pet_phrases and rng.random() < self.pet_phrase_probability:
            phrase = self.pet_phrases[int(rng.integers(len(self.pet_phrases)))]
            rewritten = phrase.split() + rewritten
        return " ".join(rewritten)


#: Candidate personal substitutions sampled when auto-generating users.  Each
#: maps a common domain word to an idiosyncratic variant that remains inside
#: the overall vocabulary universe.
_CANDIDATE_SUBSTITUTIONS: Dict[str, List[str]] = {
    "server": ["machine", "box"],
    "cpu": ["chip", "core"],
    "movie": ["film", "picture"],
    "doctor": ["physician", "doc"],
    "patient": ["case", "client"],
    "policy": ["plan", "measure"],
    "concert": ["show", "gig"],
    "packet": ["frame", "datagram"],
    "album": ["record", "release"],
    "budget": ["plan", "estimate"],
}

_PET_PHRASES: List[str] = [
    "honestly",
    "to be fair",
    "as i said",
    "by the way",
    "listen",
    "well",
    "you know",
]


def generate_user_style(
    user_id: str,
    seed: SeedLike = None,
    domains: Optional[Dict[str, DomainSpec]] = None,
) -> UserStyle:
    """Sample a random but reproducible :class:`UserStyle` for ``user_id``."""
    rng = new_rng(seed)
    domains = domains or default_domains()
    substitutions: Dict[str, str] = {}
    for word, options in _CANDIDATE_SUBSTITUTIONS.items():
        if rng.random() < 0.4:
            substitutions[word] = options[int(rng.integers(len(options)))]
    num_phrases = int(rng.integers(1, 3))
    phrase_indices = rng.choice(len(_PET_PHRASES), size=num_phrases, replace=False)
    pet_phrases = [_PET_PHRASES[int(i)] for i in phrase_indices]
    favourite = list(domains)[int(rng.integers(len(domains)))]
    return UserStyle(
        user_id=user_id,
        substitutions=substitutions,
        pet_phrases=pet_phrases,
        pet_phrase_probability=float(rng.uniform(0.2, 0.5)),
        favourite_domain=favourite,
        domain_affinity=float(rng.uniform(0.5, 0.9)),
    )


@dataclass
class GeneratedMessage:
    """One message emitted by the workload generator."""

    user_id: str
    domain: str
    text: str
    turn_index: int


class MessageGenerator:
    """Generates a stream of user messages with domain and style structure.

    The generator produces conversations: the active domain persists for a
    geometrically-distributed number of turns before switching, which is what
    makes context-aware model selection (Section III-A) outperform a
    per-message classifier.
    """

    def __init__(
        self,
        users: Sequence[UserStyle],
        domains: Optional[Dict[str, DomainSpec]] = None,
        domain_persistence: float = 0.8,
        seed: SeedLike = None,
    ) -> None:
        if not users:
            raise ValueError("at least one user style is required")
        if not 0.0 <= domain_persistence < 1.0:
            raise ValueError(f"domain_persistence must be in [0, 1), got {domain_persistence}")
        self.users = {user.user_id: user for user in users}
        self.domains = domains or default_domains()
        self.domain_persistence = domain_persistence
        self.rng = new_rng(seed)
        self._current_domain: Dict[str, str] = {}
        self._turn_counter: Dict[str, int] = {}

    def _pick_domain(self, user: UserStyle) -> str:
        current = self._current_domain.get(user.user_id)
        if current is not None and self.rng.random() < self.domain_persistence:
            return current
        if user.favourite_domain and self.rng.random() < user.domain_affinity:
            domain = user.favourite_domain
        else:
            names = list(self.domains)
            domain = names[int(self.rng.integers(len(names)))]
        self._current_domain[user.user_id] = domain
        return domain

    def next_message(self, user_id: str) -> GeneratedMessage:
        """Generate the next message for ``user_id``."""
        if user_id not in self.users:
            raise KeyError(f"unknown user {user_id!r}")
        user = self.users[user_id]
        domain = self._pick_domain(user)
        sentence = self.domains[domain].sample_sentence(self.rng)
        styled = user.apply(sentence, self.rng)
        turn = self._turn_counter.get(user_id, 0)
        self._turn_counter[user_id] = turn + 1
        return GeneratedMessage(user_id=user_id, domain=domain, text=styled, turn_index=turn)

    def generate(self, user_id: str, count: int) -> List[GeneratedMessage]:
        """Generate ``count`` consecutive messages for ``user_id``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.next_message(user_id) for _ in range(count)]

    def generate_mixed(self, count: int) -> List[GeneratedMessage]:
        """Generate ``count`` messages from users chosen uniformly at random."""
        user_ids = list(self.users)
        messages = []
        for _ in range(count):
            user_id = user_ids[int(self.rng.integers(len(user_ids)))]
            messages.append(self.next_message(user_id))
        return messages


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #
def poisson_arrival_times(
    num_arrivals: int,
    rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_arrivals`` homogeneous-Poisson arrival timestamps.

    ``rate`` is the mean number of arrivals per simulated second; the returned
    array is sorted and starts after time 0.
    """
    if num_arrivals < 0:
        raise ValueError(f"num_arrivals must be non-negative, got {num_arrivals}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return np.cumsum(rng.exponential(1.0 / rate, size=num_arrivals))


def diurnal_arrival_times(
    num_arrivals: int,
    base_rate: float,
    peak_rate: float,
    period_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample arrivals from a sinusoidal non-homogeneous Poisson process.

    The instantaneous rate oscillates between ``base_rate`` (at ``t = 0``)
    and ``peak_rate`` (half a period later) with period ``period_s`` — a
    "compressed day" that lets a run of a few simulated seconds exercise both
    the quiet and the rush-hour regime.  Sampling uses Lewis-Shedler
    thinning against the constant ``peak_rate`` envelope.
    """
    if num_arrivals < 0:
        raise ValueError(f"num_arrivals must be non-negative, got {num_arrivals}")
    if base_rate <= 0 or peak_rate < base_rate:
        raise ValueError(
            f"need 0 < base_rate <= peak_rate, got base={base_rate}, peak={peak_rate}"
        )
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    times = np.empty(num_arrivals, dtype=np.float64)
    filled = 0
    t = 0.0
    while filled < num_arrivals:
        chunk = max(256, 2 * (num_arrivals - filled))
        gaps = rng.exponential(1.0 / peak_rate, size=chunk)
        candidates = t + np.cumsum(gaps)
        # Rate starts at base_rate and peaks at period_s / 2.
        rate = base_rate + (peak_rate - base_rate) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * candidates / period_s)
        )
        accepted = candidates[rng.random(chunk) < rate / peak_rate]
        take = min(len(accepted), num_arrivals - filled)
        times[filled : filled + take] = accepted[:take]
        filled += take
        t = float(candidates[-1])
    return times


def segment_arrival_times(
    start_s: float,
    duration_s: float,
    num_arrivals: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sorted arrival timestamps of one constant-rate segment.

    Samples ``num_arrivals`` uniform order statistics on
    ``[start_s, start_s + duration_s)`` — exactly the conditional law of a
    homogeneous Poisson process given its arrival count, which makes segments
    composable: a piecewise-constant rate schedule is just consecutive
    segments with different counts (the scenario engine's workload phases).
    """
    if num_arrivals < 0:
        raise ValueError(f"num_arrivals must be non-negative, got {num_arrivals}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    return np.sort(rng.uniform(start_s, start_s + duration_s, size=num_arrivals))


class ArrivalTraceGenerator:
    """Request traces with realistic arrival processes for the event simulator.

    Combines a Poisson or diurnal arrival-time process with a Zipf-skewed
    domain popularity and a uniform user population, producing the
    :class:`~repro.workloads.traces.RequestTrace` the multi-cell simulator
    (:mod:`repro.sim`) replays.

    Parameters
    ----------
    domain_names:
        Candidate domains, ordered from most to least popular.
    num_users:
        Size of the user population (``user_0 … user_{n-1}``).
    zipf_exponent:
        Skew of domain popularity (0 = uniform).
    profile:
        ``"poisson"`` (constant rate) or ``"diurnal"`` (sinusoidal rate).
    rate:
        Mean arrivals per second (the constant rate for ``"poisson"``, the
        trough rate for ``"diurnal"``).
    peak_rate:
        Rush-hour rate for the diurnal profile (default ``3 * rate``).
    period_s:
        Length of the compressed "day" for the diurnal profile.
    """

    PROFILES = ("poisson", "diurnal")

    def __init__(
        self,
        domain_names: Sequence[str],
        num_users: int = 100,
        zipf_exponent: float = 0.9,
        profile: str = "poisson",
        rate: float = 100.0,
        peak_rate: Optional[float] = None,
        period_s: float = 60.0,
        seed: SeedLike = None,
    ) -> None:
        if not domain_names:
            raise ValueError("domain_names must not be empty")
        if num_users <= 0:
            raise ValueError(f"num_users must be positive, got {num_users}")
        if profile not in self.PROFILES:
            raise ValueError(f"profile must be one of {self.PROFILES}, got {profile!r}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.domain_names = list(domain_names)
        self.num_users = num_users
        self.profile = profile
        self.rate = rate
        self.peak_rate = 3.0 * rate if peak_rate is None else peak_rate
        if profile == "diurnal" and self.peak_rate < rate:
            raise ValueError(
                f"peak_rate must be >= rate for the diurnal profile, got "
                f"rate={rate}, peak_rate={self.peak_rate}"
            )
        self.period_s = period_s
        self.rng = new_rng(seed)
        self._probabilities = zipf_probabilities(len(self.domain_names), zipf_exponent)

    def arrival_times(self, num_requests: int) -> np.ndarray:
        """Sorted arrival timestamps for ``num_requests`` requests."""
        if self.profile == "poisson":
            return poisson_arrival_times(num_requests, self.rate, self.rng)
        return diurnal_arrival_times(
            num_requests, self.rate, self.peak_rate, self.period_s, self.rng
        )

    def generate(self, num_requests: int) -> RequestTrace:
        """Sample a :class:`RequestTrace` of ``num_requests`` requests."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be non-negative, got {num_requests}")
        timestamps = self.arrival_times(num_requests)
        return assemble_trace(timestamps, self.domain_names, self._probabilities, self.num_users, self.rng)


def build_user_population(
    num_users: int,
    seed: SeedLike = None,
    domains: Optional[Dict[str, DomainSpec]] = None,
) -> List[UserStyle]:
    """Create ``num_users`` reproducible user styles named ``user_0`` ... ``user_{n-1}``."""
    if num_users <= 0:
        raise ValueError(f"num_users must be positive, got {num_users}")
    rng = new_rng(seed)
    styles = []
    for index in range(num_users):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        styles.append(generate_user_style(f"user_{index}", seed=sub_seed, domains=domains))
    return styles
