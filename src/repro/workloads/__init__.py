"""Synthetic workloads: domain corpora, user styles, traces and Metaverse scenarios."""

from repro.workloads.domains import (
    DEFAULT_DOMAIN_NAMES,
    POLYSEMOUS_WORDS,
    DomainCorpus,
    DomainSpec,
    default_domains,
    generate_all_corpora,
    generate_domain_corpus,
    shared_vocabulary,
)
from repro.workloads.generator import (
    ArrivalTraceGenerator,
    GeneratedMessage,
    MessageGenerator,
    UserStyle,
    build_user_population,
    diurnal_arrival_times,
    generate_user_style,
    poisson_arrival_times,
    segment_arrival_times,
)
from repro.workloads.metaverse import (
    MetaverseEvent,
    MetaverseScenario,
    MetaverseWorkload,
    VirtualVenue,
    default_venues,
)
from repro.workloads.traces import (
    RequestTrace,
    TopicDriftTrace,
    TraceRequest,
    ZipfTraceGenerator,
    generate_topic_drift_trace,
    zipf_probabilities,
)

__all__ = [
    "DomainSpec",
    "DomainCorpus",
    "default_domains",
    "generate_domain_corpus",
    "generate_all_corpora",
    "shared_vocabulary",
    "DEFAULT_DOMAIN_NAMES",
    "POLYSEMOUS_WORDS",
    "UserStyle",
    "GeneratedMessage",
    "MessageGenerator",
    "generate_user_style",
    "build_user_population",
    "ArrivalTraceGenerator",
    "poisson_arrival_times",
    "diurnal_arrival_times",
    "segment_arrival_times",
    "TraceRequest",
    "RequestTrace",
    "ZipfTraceGenerator",
    "TopicDriftTrace",
    "generate_topic_drift_trace",
    "zipf_probabilities",
    "VirtualVenue",
    "MetaverseEvent",
    "MetaverseScenario",
    "MetaverseWorkload",
    "default_venues",
]
