"""Semantic (KB-) decoders: received semantic features → token logits.

These are the ``d_j^m`` models of Section II-A cached at the receiver edge
server ``j`` (and, per Section II-C, also copied to the sender edge server so
mismatch can be computed locally).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import GRU, Linear, Module, PositionalEncoding, Tensor, TransformerEncoder, no_grad
from repro.semantic.config import CodecConfig
from repro.utils.rng import new_rng, spawn_rng


class SemanticDecoder(Module):
    """Maps ``(batch, length, feature_dim)`` features to ``(batch, length, vocab)`` logits."""

    def __init__(self, vocab_size: int, config: CodecConfig) -> None:
        super().__init__()
        if vocab_size <= 0:
            raise ConfigurationError(f"vocab_size must be positive, got {vocab_size}")
        self.config = config
        self.vocab_size = vocab_size
        seeds = spawn_rng(new_rng(None if config.seed is None else config.seed + 1), 4)

        self.input_projection = Linear(config.feature_dim, config.embedding_dim, seed=seeds[0])
        self.positional = PositionalEncoding(config.embedding_dim, max_length=config.max_length)

        if config.architecture == "transformer":
            self.body: Module = TransformerEncoder(
                config.embedding_dim,
                config.num_heads,
                config.num_layers,
                hidden_dim=config.hidden_dim,
                dropout=config.dropout,
                seed=seeds[1],
            )
            body_output_dim = config.embedding_dim
        elif config.architecture == "gru":
            self.body = GRU(config.embedding_dim, config.hidden_dim, seed=seeds[1])
            body_output_dim = config.hidden_dim
        else:  # mlp
            self.body = Linear(config.embedding_dim, config.hidden_dim, seed=seeds[1])
            body_output_dim = config.hidden_dim

        self.output_projection = Linear(body_output_dim, vocab_size, seed=seeds[2])

    def forward(self, features: Tensor | np.ndarray) -> Tensor:
        if not isinstance(features, Tensor):
            # Tensor() preserves float32/float64 inputs, so a float32 decoder
            # keeps its reduced-precision path end to end.
            features = Tensor(np.asarray(features))
        if features.ndim == 2:
            features = features.reshape(1, *features.shape)
        projected = self.input_projection(features)
        if self.config.architecture == "transformer":
            projected = self.positional(projected)
            body_output = self.body(projected)
        elif self.config.architecture == "gru":
            body_output, _ = self.body(projected)
        else:
            body_output = self.body(projected).relu()
        return self.output_projection(body_output)

    def decode_greedy(self, features: np.ndarray) -> np.ndarray:
        """Argmax token ids for received ``features`` (inference mode, no tape).

        Runs through the graph runtime when enabled: one captured program per
        feature shape, replayed with preallocated buffers (bit-identical to
        eager, transparent fallback otherwise).
        """
        from repro.nn.graph import is_enabled as graph_enabled

        was_training = self.training
        self.eval()
        with no_grad():
            runner = self.compile() if graph_enabled() else self
            logits = runner(features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=-1)
