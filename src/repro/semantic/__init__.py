"""Semantic codecs: knowledge-base encoders/decoders, individual models, mismatch buffers."""

from repro.semantic.codec import EncodedMessage, SemanticCodec
from repro.semantic.config import ARCHITECTURES, CodecConfig, TrainingReport
from repro.semantic.decoder import SemanticDecoder
from repro.semantic.encoder import SemanticEncoder, SemanticPoolingEncoder
from repro.semantic.individual import FineTuneResult, IndividualModel
from repro.semantic.knowledge_base import KnowledgeBaseInfo, KnowledgeBaseLibrary
from repro.semantic.multimodal import (
    ImageSemanticCodec,
    Scene,
    SceneGenerator,
    SceneVocabulary,
)
from repro.semantic.mismatch import (
    BufferBank,
    DomainBuffer,
    MismatchCalculator,
    MismatchReport,
    Transaction,
)

__all__ = [
    "CodecConfig",
    "TrainingReport",
    "ARCHITECTURES",
    "SemanticEncoder",
    "SemanticPoolingEncoder",
    "SemanticDecoder",
    "SemanticCodec",
    "EncodedMessage",
    "IndividualModel",
    "FineTuneResult",
    "KnowledgeBaseLibrary",
    "KnowledgeBaseInfo",
    "ImageSemanticCodec",
    "Scene",
    "SceneGenerator",
    "SceneVocabulary",
    "MismatchCalculator",
    "MismatchReport",
    "Transaction",
    "DomainBuffer",
    "BufferBank",
]
