"""Mismatch calculation and the per-domain transaction buffer ``b_m``.

Section II-C/D of the paper: because general decoders are *copied* onto the
sender edge server, the sender can decode its own transmitted features
locally, compare the restoration with the original message, and store the
transaction in a per-domain buffer.  Once the buffer holds enough data, the
user-specific individual model is trained from it (Section II-D).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from repro.text import bleu_score, token_accuracy
from repro.text.tokenizer import simple_tokenize


@dataclass
class Transaction:
    """One communication transaction recorded for later individual training."""

    original_text: str
    restored_text: str
    features: np.ndarray
    domain: str
    user_id: str
    mismatch: float
    timestamp: float = 0.0


@dataclass
class MismatchReport:
    """Semantic mismatch between an original and a restored message."""

    token_accuracy: float
    bleu: float
    semantic_similarity: Optional[float] = None

    @property
    def mismatch(self) -> float:
        """Scalar mismatch in [0, 1]: 1 - fidelity.

        Uses semantic similarity when available, otherwise token accuracy.
        """
        fidelity = self.semantic_similarity if self.semantic_similarity is not None else self.token_accuracy
        return float(np.clip(1.0 - fidelity, 0.0, 1.0))


class MismatchCalculator:
    """Computes semantic mismatch between original and restored messages.

    An optional embedding model adds an embedding-cosine similarity term; the
    surface metrics (token accuracy, BLEU) are always available.
    """

    def __init__(self, embeddings=None) -> None:
        self.embeddings = embeddings

    def compare(self, original_text: str, restored_text: str) -> MismatchReport:
        """Return a :class:`MismatchReport` for one message pair."""
        reference = simple_tokenize(original_text)
        hypothesis = simple_tokenize(restored_text)
        similarity = None
        if self.embeddings is not None:
            similarity = float(self.embeddings.sentence_similarity(reference, hypothesis))
        return MismatchReport(
            token_accuracy=token_accuracy(reference, hypothesis),
            bleu=bleu_score(reference, hypothesis),
            semantic_similarity=similarity,
        )

    def mismatch(self, original_text: str, restored_text: str) -> float:
        """Scalar mismatch value for one message pair."""
        return self.compare(original_text, restored_text).mismatch


class DomainBuffer:
    """The buffer ``b_m`` of Section II-C: bounded per-domain transaction store."""

    def __init__(self, domain: str, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.domain = domain
        self.capacity = capacity
        self._transactions: Deque[Transaction] = deque(maxlen=capacity)
        self.total_added = 0

    def add(self, transaction: Transaction) -> None:
        """Store a transaction (oldest entries are discarded beyond capacity)."""
        self._transactions.append(transaction)
        self.total_added += 1

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self):
        return iter(self._transactions)

    def is_ready(self, minimum_transactions: int) -> bool:
        """Whether enough data has been collected to train an individual model."""
        return len(self._transactions) >= minimum_transactions

    def texts(self) -> List[str]:
        """Original texts of all buffered transactions."""
        return [transaction.original_text for transaction in self._transactions]

    def for_user(self, user_id: str) -> List[Transaction]:
        """Transactions belonging to ``user_id``."""
        return [transaction for transaction in self._transactions if transaction.user_id == user_id]

    def mean_mismatch(self) -> float:
        """Average mismatch over buffered transactions (0 when empty)."""
        if not self._transactions:
            return 0.0
        return float(np.mean([transaction.mismatch for transaction in self._transactions]))

    def clear(self) -> None:
        """Drop all buffered transactions."""
        self._transactions.clear()


class BufferBank:
    """All per-domain buffers of one sender edge server, keyed by (user, domain)."""

    def __init__(self, capacity_per_buffer: int = 256) -> None:
        self.capacity_per_buffer = capacity_per_buffer
        self._buffers: Dict[tuple[str, str], DomainBuffer] = {}

    def buffer(self, user_id: str, domain: str) -> DomainBuffer:
        """Get (creating if necessary) the buffer for ``(user_id, domain)``."""
        key = (user_id, domain)
        if key not in self._buffers:
            self._buffers[key] = DomainBuffer(domain, capacity=self.capacity_per_buffer)
        return self._buffers[key]

    def record(self, transaction: Transaction) -> DomainBuffer:
        """Store ``transaction`` in the appropriate buffer and return it."""
        buffer = self.buffer(transaction.user_id, transaction.domain)
        buffer.add(transaction)
        return buffer

    def ready_buffers(self, minimum_transactions: int) -> List[tuple[str, str]]:
        """Keys of buffers that have collected at least ``minimum_transactions``."""
        return [key for key, buffer in self._buffers.items() if buffer.is_ready(minimum_transactions)]

    def __len__(self) -> int:
        return len(self._buffers)

    def items(self) -> Iterable[tuple[tuple[str, str], DomainBuffer]]:
        """All (key, buffer) pairs."""
        return self._buffers.items()
