"""Paired semantic encoder/decoder with training and message-level helpers.

A :class:`SemanticCodec` is one knowledge base in the sense of the paper: a
domain-specialized encoder/decoder pair, its vocabulary, and the training
machinery that builds it from a domain corpus.  The codec exposes the two
operations the communication pipeline needs — ``encode_message`` (semantic
feature extraction) and ``decode_features`` (semantic feature restoration) —
plus joint training on (possibly channel-impaired) reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.nn import (
    Adam,
    Tensor,
    cross_entropy_from_parts,
    cross_entropy_loss,
    cross_entropy_parts,
    nll_accuracy,
)
from repro.semantic.config import CodecConfig, TrainingReport
from repro.semantic.decoder import SemanticDecoder
from repro.semantic.encoder import SemanticEncoder
from repro.text import Tokenizer, Vocabulary, bleu_score, token_accuracy
from repro.utils.rng import SeedLike, new_rng


def build_codec_train_step(encoder, decoder):
    """A graph-captured joint reconstruction training step, or ``None``.

    The returned :class:`~repro.nn.graph.CompiledTrainStep` computes
    ``cross_entropy(decoder(encoder(ids) [+ noise]), targets)`` and its
    backward pass as a replayed flat program — bit-identical to the eager
    loop (verified bitwise at capture), with transparent eager fallback for
    architectures the tracer cannot capture (e.g. the transformer's
    input-dependent attention mask).  Returns ``None`` when the graph runtime
    is disabled (``REPRO_GRAPH=0`` / :func:`repro.nn.graph.configure`), in
    which case callers run their historical eager step.

    Shared by :meth:`SemanticCodec.train` and
    :meth:`repro.semantic.individual.IndividualModel.fine_tune` — the two
    loops that dominate e1/e2/e3/e6 wall-clock.
    """
    from repro.nn.graph import CompiledTrainStep, is_enabled

    if not is_enabled():
        return None

    def fn(ids, rows, targets, weights, noise=None):
        features = encoder(ids)
        if noise is not None:
            features = features + Tensor(noise)
        logits = decoder(features)
        loss = cross_entropy_from_parts(logits, rows, targets, weights)
        return loss, logits

    return CompiledTrainStep(fn, encoder.parameters() + decoder.parameters())


@dataclass
class EncodedMessage:
    """Semantic features of one message, ready for quantization/transmission."""

    features: np.ndarray
    num_tokens: int
    domain: Optional[str] = None

    @property
    def feature_count(self) -> int:
        """Total number of scalar feature values."""
        return int(np.prod(self.features.shape))


class SemanticCodec:
    """A domain knowledge base: tokenizer, vocabulary, encoder and decoder.

    Parameters
    ----------
    vocabulary:
        Shared vocabulary for the encoder input and decoder output.
    config:
        Model hyper-parameters.
    domain:
        Optional domain label (``"it"``, ``"medical"``, ...) for bookkeeping.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        config: Optional[CodecConfig] = None,
        domain: Optional[str] = None,
    ) -> None:
        self.config = config or CodecConfig()
        self.vocabulary = vocabulary
        self.domain = domain
        self.tokenizer = Tokenizer(max_length=self.config.max_length - 2)
        self.encoder = SemanticEncoder(len(vocabulary), self.config, pad_id=vocabulary.pad_id)
        self.decoder = SemanticDecoder(len(vocabulary), self.config)
        self.training_report = TrainingReport()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_corpus(
        cls,
        sentences: Sequence[str],
        config: Optional[CodecConfig] = None,
        domain: Optional[str] = None,
        train_epochs: int = 0,
        seed: SeedLike = None,
        extra_tokens: Sequence[str] = (),
    ) -> "SemanticCodec":
        """Build (and optionally train) a codec whose vocabulary covers ``sentences``.

        ``extra_tokens`` adds words to the vocabulary that the training corpus
        does not contain (e.g. user-specific synonyms) so that later
        fine-tuning on user data can learn them without rebuilding the model.
        """
        config = config or CodecConfig()
        tokenizer = Tokenizer(max_length=config.max_length - 2)
        tokenized = tokenizer.tokenize_batch(sentences)
        vocabulary = Vocabulary.from_corpus(tokenized)
        for token in extra_tokens:
            vocabulary.add(token)
        codec = cls(vocabulary, config=config, domain=domain)
        if train_epochs > 0:
            codec.train(sentences, epochs=train_epochs, seed=seed)
        return codec

    # ------------------------------------------------------------------ #
    # Message-level API
    # ------------------------------------------------------------------ #
    def tokens_to_ids(self, sentences: Sequence[str]) -> np.ndarray:
        """Tokenize and encode raw sentences to a padded id batch."""
        tokenized = self.tokenizer.tokenize_batch(sentences)
        return self.vocabulary.encode_batch(tokenized, max_length=self.config.max_length)

    def encode_message(self, text: str, domain: Optional[str] = None) -> EncodedMessage:
        """Semantic feature extraction for a single message."""
        ids = self.tokens_to_ids([text])
        num_tokens = int(np.count_nonzero(ids[0] != self.vocabulary.pad_id))
        features = self.encoder.encode(ids)[0]
        # Padding positions carry no information; only real-token features are
        # transmitted, so payload size tracks message length.
        features = features[:num_tokens]
        return EncodedMessage(features=features, num_tokens=num_tokens, domain=domain or self.domain)

    def decode_features(self, features: np.ndarray) -> str:
        """Semantic feature restoration back to text."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 2:
            features = features[None, ...]
        ids = self.decoder.decode_greedy(features)[0]
        tokens = self.vocabulary.decode(ids)
        return self.tokenizer.detokenize(tokens)

    def reconstruct(self, text: str) -> str:
        """Round-trip a message through the codec without a channel."""
        return self.decode_features(self.encode_message(text).features)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _batches(self, ids: np.ndarray, batch_size: int, order: np.ndarray) -> Iterator[np.ndarray]:
        """Yield mini-batches following ``order`` lazily, one at a time.

        The caller owns (and reshuffles) the index buffer across epochs, so an
        epoch allocates only the batch being trained on instead of every
        slice up front.
        """
        for start in range(0, len(ids), batch_size):
            yield ids[order[start : start + batch_size]]

    def train(
        self,
        sentences: Sequence[str],
        epochs: int = 10,
        noise_std: float = 0.0,
        seed: SeedLike = None,
        learning_rate: Optional[float] = None,
    ) -> TrainingReport:
        """Jointly train encoder and decoder to reconstruct ``sentences``.

        ``noise_std`` adds Gaussian noise to the features during training,
        which approximates channel impairments and makes the codec robust to
        the quantization/noise it will see at inference time.
        """
        if not sentences:
            raise KnowledgeBaseError("cannot train a codec on an empty corpus")
        if epochs <= 0:
            raise KnowledgeBaseError(f"epochs must be positive, got {epochs}")
        rng = new_rng(seed)
        ids = self.tokens_to_ids(list(sentences))
        parameters = self.encoder.parameters() + self.decoder.parameters()
        optimizer = Adam(parameters, learning_rate or self.config.learning_rate)
        self.encoder.train()
        self.decoder.train()
        # One index buffer reused across epochs.  It must be reset to identity
        # before each in-place shuffle: Generator.shuffle of the identity
        # consumes the same stream and yields the same order as the historical
        # per-epoch ``rng.permutation(len(ids))``, keeping training bit-stable
        # (shuffling the previous epoch's order would not).
        identity = np.arange(len(ids))
        order = identity.copy()
        # Graph-captured step (None when the runtime is disabled): traced on
        # the first batch of each shape, replayed for the rest of training.
        # The rng is consumed in exactly the eager order (shuffle, then one
        # noise draw per batch), so trajectories stay bit-identical.
        step = build_codec_train_step(self.encoder, self.decoder)
        pad_id = self.vocabulary.pad_id
        feature_dim = self.config.feature_dim
        for _ in range(epochs):
            epoch_losses: List[float] = []
            epoch_accuracies: List[float] = []
            order[:] = identity
            rng.shuffle(order)
            for batch in self._batches(ids, self.config.batch_size, order):
                optimizer.zero_grad()
                if step is not None:
                    noise = (
                        rng.normal(0.0, noise_std, size=batch.shape + (feature_dim,))
                        if noise_std > 0.0
                        else None
                    )
                    rows, safe_targets, weights = cross_entropy_parts(batch, pad_id)
                    loss, logits = step(
                        ids=batch, rows=rows, targets=safe_targets, weights=weights, noise=noise
                    )
                else:
                    features = self.encoder(batch)
                    if noise_std > 0.0:
                        features = features + Tensor(rng.normal(0.0, noise_std, size=features.shape))
                    logits = self.decoder(features)
                    loss = cross_entropy_loss(logits, batch, ignore_index=pad_id)
                    loss.backward()
                optimizer.clip_gradients(5.0)
                optimizer.step()
                epoch_losses.append(loss.item())
                epoch_accuracies.append(nll_accuracy(logits, batch, ignore_index=pad_id))
            self.training_report.record(float(np.mean(epoch_losses)), float(np.mean(epoch_accuracies)))
        self.encoder.eval()
        self.decoder.eval()
        return self.training_report

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, sentences: Sequence[str]) -> Dict[str, float]:
        """Reconstruction quality of the codec on ``sentences`` (no channel).

        The whole batch runs through *one* encoder forward (inference mode, no
        autograd tape); decoding is batched per sentence length, so every
        sentence sees exactly the features and greedy decode it would see
        alone — per-sentence BLEU/token-accuracy is identical to a
        one-at-a-time loop, just without N round trips through the models.
        """
        if not sentences:
            raise KnowledgeBaseError("cannot evaluate on an empty corpus")
        sentences = list(sentences)
        ids = self.tokens_to_ids(sentences)
        lengths = np.count_nonzero(ids != self.vocabulary.pad_id, axis=1)
        features = self.encoder.encode(ids)
        # Group equal-length sentences: a group batch carries no padding, so
        # even architectures whose decoder mixes positions (transformer
        # attention) produce the same tokens as single-sentence decoding.
        hypotheses: List[List[str]] = [[] for _ in sentences]
        for length in np.unique(lengths):
            group = np.nonzero(lengths == length)[0]
            group_features = np.asarray(features[group, : int(length), :], dtype=np.float64)
            decoded = self.decoder.decode_greedy(group_features)
            for row, sentence_index in enumerate(group):
                tokens = self.vocabulary.decode(decoded[row])
                hypotheses[sentence_index] = self.tokenizer.tokenize(self.tokenizer.detokenize(tokens))
        accuracies: List[float] = []
        bleus: List[float] = []
        for sentence, hypothesis in zip(sentences, hypotheses):
            reference = self.tokenizer.tokenize(sentence)
            accuracies.append(token_accuracy(reference, hypothesis))
            bleus.append(bleu_score(reference, hypothesis))
        return {
            "token_accuracy": float(np.mean(accuracies)),
            "bleu": float(np.mean(bleus)),
            "num_sentences": float(len(sentences)),
        }

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        """Total trainable parameters across encoder and decoder."""
        return self.encoder.num_parameters() + self.decoder.num_parameters()

    def model_bytes(self, bytes_per_value: int = 4) -> int:
        """Approximate serialized size of the codec (for cache sizing)."""
        return self.num_parameters() * bytes_per_value

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Serializable parameter snapshot of both halves."""
        return {"encoder": self.encoder.state_dict(), "decoder": self.decoder.state_dict()}

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Restore a snapshot created by :meth:`state_dict`."""
        self.encoder.load_state_dict(state["encoder"])
        self.decoder.load_state_dict(state["decoder"])

    def clone(self) -> "SemanticCodec":
        """Deep copy sharing no parameters (used to derive individual models)."""
        copy = SemanticCodec(self.vocabulary, config=self.config, domain=self.domain)
        copy.load_state_dict(self.state_dict())
        return copy
