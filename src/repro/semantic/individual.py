"""User-specific individual models (Section II-B/D of the paper).

An individual model starts as a copy of a domain-specialized general codec
(``e_u^m, d_u^m`` evolved from ``e_i^m, d_i^m``) and is fine-tuned on the
transactions collected in that user's domain buffer.  Only the *decoder*
gradient has to reach the receiver edge to keep its copy in sync
(Section II-D); the federated package handles that transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.nn import Adam, cross_entropy_loss, cross_entropy_parts
from repro.semantic.codec import SemanticCodec, build_codec_train_step
from repro.semantic.mismatch import DomainBuffer
from repro.utils.rng import SeedLike, new_rng


@dataclass
class FineTuneResult:
    """Outcome of one individual-model fine-tuning round."""

    losses: List[float] = field(default_factory=list)
    decoder_gradients: Dict[str, np.ndarray] = field(default_factory=dict)
    num_sentences: int = 0

    @property
    def final_loss(self) -> float:
        """Loss after the last step (``nan`` if no steps ran)."""
        return self.losses[-1] if self.losses else float("nan")


class IndividualModel:
    """A user's personal codec for one domain, derived from the general codec.

    Parameters
    ----------
    user_id:
        Owner of the model.
    domain:
        Domain of the general codec this model specializes.
    general_codec:
        The domain-specialized general codec to copy; it is never modified
        ("the general models remain the same during all time", Section II-D).
    """

    def __init__(self, user_id: str, domain: str, general_codec: SemanticCodec) -> None:
        self.user_id = user_id
        self.domain = domain
        self.codec = general_codec.clone()
        self._general_reference = general_codec
        self.updates_applied = 0

    # ------------------------------------------------------------------ #
    # Fine-tuning from buffered transactions
    # ------------------------------------------------------------------ #
    def fine_tune(
        self,
        sentences: Sequence[str],
        epochs: int = 3,
        learning_rate: float = 2e-3,
        seed: SeedLike = None,
        collect_decoder_gradient: bool = True,
    ) -> FineTuneResult:
        """Fine-tune the individual codec on the user's own ``sentences``.

        Returns the training losses and (optionally) the accumulated decoder
        gradient of the final step, which is what gets shipped to the receiver
        edge server to synchronize the decoder copy.
        """
        if not sentences:
            raise KnowledgeBaseError("cannot fine-tune on an empty transaction set")
        if epochs <= 0:
            raise KnowledgeBaseError(f"epochs must be positive, got {epochs}")
        rng = new_rng(seed)
        ids = self.codec.tokens_to_ids(list(sentences))
        encoder = self.codec.encoder
        decoder = self.codec.decoder
        parameters = encoder.parameters() + decoder.parameters()
        optimizer = Adam(parameters, learning_rate)
        encoder.train()
        decoder.train()
        result = FineTuneResult(num_sentences=len(sentences))
        batch_size = self.codec.config.batch_size
        pad_id = self.codec.vocabulary.pad_id
        # Graph-captured step shared with SemanticCodec.train (None when the
        # runtime is disabled): traced per batch shape, replayed afterwards.
        step = build_codec_train_step(encoder, decoder)
        for _ in range(epochs):
            order = rng.permutation(len(ids))
            for start in range(0, len(ids), batch_size):
                batch = ids[order[start : start + batch_size]]
                optimizer.zero_grad()
                if step is not None:
                    rows, safe_targets, weights = cross_entropy_parts(batch, pad_id)
                    loss, logits = step(
                        ids=batch, rows=rows, targets=safe_targets, weights=weights
                    )
                else:
                    logits = decoder(encoder(batch))
                    loss = cross_entropy_loss(logits, batch, ignore_index=pad_id)
                    loss.backward()
                optimizer.clip_gradients(5.0)
                if collect_decoder_gradient:
                    result.decoder_gradients = {
                        name: parameter.grad.copy()
                        for name, parameter in decoder.named_parameters()
                        if parameter.grad is not None
                    }
                optimizer.step()
                result.losses.append(loss.item())
        encoder.eval()
        decoder.eval()
        self.updates_applied += 1
        return result

    def fine_tune_from_buffer(
        self,
        buffer: DomainBuffer,
        minimum_transactions: int = 8,
        epochs: int = 3,
        learning_rate: float = 2e-3,
        seed: SeedLike = None,
    ) -> Optional[FineTuneResult]:
        """Fine-tune from a :class:`DomainBuffer` once it holds enough data.

        Returns ``None`` when the buffer is not yet ready, mirroring the
        paper's "after enough collected data at ``b_m``" condition.
        """
        if not buffer.is_ready(minimum_transactions):
            return None
        sentences = [transaction.original_text for transaction in buffer.for_user(self.user_id)]
        if len(sentences) < minimum_transactions:
            return None
        return self.fine_tune(sentences, epochs=epochs, learning_rate=learning_rate, seed=seed)

    # ------------------------------------------------------------------ #
    # Comparison with the general model
    # ------------------------------------------------------------------ #
    def improvement_over_general(self, sentences: Sequence[str]) -> Dict[str, float]:
        """Evaluate both codecs on ``sentences`` and report the accuracy gain."""
        individual_metrics = self.codec.evaluate(sentences)
        general_metrics = self._general_reference.evaluate(sentences)
        return {
            "individual_token_accuracy": individual_metrics["token_accuracy"],
            "general_token_accuracy": general_metrics["token_accuracy"],
            "token_accuracy_gain": individual_metrics["token_accuracy"] - general_metrics["token_accuracy"],
            "individual_bleu": individual_metrics["bleu"],
            "general_bleu": general_metrics["bleu"],
            "bleu_gain": individual_metrics["bleu"] - general_metrics["bleu"],
        }

    def decoder_state(self) -> Dict[str, np.ndarray]:
        """Snapshot of the individual decoder parameters (for synchronization)."""
        return self.codec.decoder.state_dict()

    def model_bytes(self, bytes_per_value: int = 4) -> int:
        """Cache footprint of the individual model."""
        return self.codec.model_bytes(bytes_per_value)
