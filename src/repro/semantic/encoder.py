"""Semantic (KB-) encoders: token ids → compact per-token semantic features.

These are the ``e_i^m`` models of Section II-A: one encoder per domain ``m``
cached at the sender edge server ``i``.  The encoder body can be a
transformer, a GRU, or a per-token MLP (Section III-B of the paper discusses
exploring different model families); all variants end with a linear
projection down to ``feature_dim`` — the narrow representation that is
quantized and sent over the physical channel.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import (
    GRU,
    Embedding,
    Linear,
    Module,
    PositionalEncoding,
    Tensor,
    TransformerEncoder,
    no_grad,
    note_data_dependent,
    padding_mask,
)
from repro.semantic.config import CodecConfig
from repro.utils.rng import new_rng, spawn_rng


class SemanticEncoder(Module):
    """Maps ``(batch, length)`` token ids to ``(batch, length, feature_dim)`` features."""

    def __init__(self, vocab_size: int, config: CodecConfig, pad_id: int = 0) -> None:
        super().__init__()
        if vocab_size <= 0:
            raise ConfigurationError(f"vocab_size must be positive, got {vocab_size}")
        self.config = config
        self.vocab_size = vocab_size
        self.pad_id = pad_id
        seeds = spawn_rng(new_rng(config.seed), 4)

        self.embedding = Embedding(vocab_size, config.embedding_dim, seed=seeds[0])
        self.positional = PositionalEncoding(config.embedding_dim, max_length=config.max_length)

        if config.architecture == "transformer":
            self.body: Module = TransformerEncoder(
                config.embedding_dim,
                config.num_heads,
                config.num_layers,
                hidden_dim=config.hidden_dim,
                dropout=config.dropout,
                seed=seeds[1],
            )
            body_output_dim = config.embedding_dim
        elif config.architecture == "gru":
            self.body = GRU(config.embedding_dim, config.hidden_dim, seed=seeds[1])
            body_output_dim = config.hidden_dim
        else:  # mlp
            self.body = Linear(config.embedding_dim, config.hidden_dim, seed=seeds[1])
            body_output_dim = config.hidden_dim

        self.feature_projection = Linear(body_output_dim, config.feature_dim, seed=seeds[2])

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        embedded = self.embedding(token_ids)
        if self.config.architecture == "transformer":
            embedded = self.positional(embedded)
            mask = padding_mask(token_ids, self.pad_id)
            body_output = self.body(embedded, mask=mask)
        elif self.config.architecture == "gru":
            body_output, _ = self.body(embedded)
        else:
            body_output = self.body(embedded).relu()
        return self.feature_projection(body_output).tanh()

    def encode(self, token_ids: np.ndarray) -> np.ndarray:
        """Inference helper: return features as a plain numpy array.

        Runs under :class:`~repro.nn.tensor.no_grad` in evaluation mode, so no
        autograd tape is built — this is the per-request hot path an edge
        server pays after a cache hit.  When the graph runtime is enabled the
        forward pass replays a captured flat program (bit-identical, falling
        back to eager for architectures it cannot trace); the ids are
        canonicalised first so the capture recognises them as the per-call
        input.
        """
        from repro.nn.graph import is_enabled as graph_enabled

        was_training = self.training
        self.eval()
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        # Replayed programs run the bare gather kernel, skipping the host-side
        # range validation Embedding.forward performs during the trace — so an
        # invalid id must fail as loudly here as it would eagerly.
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.vocab_size):
            raise ShapeError(
                f"token ids must be in [0, {self.vocab_size}), got range "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        with no_grad():
            runner = self.compile() if graph_enabled() else self
            features = runner(token_ids).data.copy()
        if was_training:
            self.train()
        return features

    @property
    def feature_dim(self) -> int:
        """Width of the semantic feature vectors this encoder produces."""
        return self.config.feature_dim


class SemanticPoolingEncoder(Module):
    """Sentence-level encoder producing one pooled feature vector per message.

    Used by the model-selection experiments as a message representation and
    available as an extreme-compression codec variant (a single vector per
    message regardless of length).
    """

    def __init__(self, vocab_size: int, config: CodecConfig, pad_id: int = 0) -> None:
        super().__init__()
        self.token_encoder = SemanticEncoder(vocab_size, config, pad_id=pad_id)
        self.pad_id = pad_id
        self.config = config

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        features = self.token_encoder(token_ids)
        mask = (token_ids != self.pad_id).astype(features.data.dtype)
        denominators = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        # Pooling weights depend on which positions are padding — per-call
        # content, so graph capture falls back to eager for this module.
        weights = Tensor(note_data_dependent(mask[..., None] / denominators[..., None]))
        return (features * weights).sum(axis=1)

    def encode(self, token_ids: np.ndarray) -> np.ndarray:
        """Inference helper returning pooled features as numpy (no autograd tape)."""
        was_training = self.training
        self.eval()
        with no_grad():
            pooled = self.forward(token_ids).data.copy()
        if was_training:
            self.train()
        return pooled
