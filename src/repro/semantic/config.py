"""Configuration objects for the semantic knowledge-base codecs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError

#: Architectures supported by the semantic encoder/decoder pair.
ARCHITECTURES = ("transformer", "gru", "mlp")


@dataclass
class CodecConfig:
    """Hyper-parameters of one knowledge-base encoder/decoder pair.

    Attributes
    ----------
    embedding_dim:
        Token embedding width inside the encoder and decoder.
    feature_dim:
        Width of the per-token semantic feature vector that crosses the
        channel.  This is the quantity that determines transmitted payload
        size, so it is deliberately much smaller than ``embedding_dim``.
    hidden_dim:
        Hidden width of the encoder/decoder body.
    num_layers, num_heads:
        Depth and attention heads for the transformer architecture.
    architecture:
        ``"transformer"``, ``"gru"`` or ``"mlp"`` (see Section III-B of the
        paper on exploring different encoder/decoder model families).
    max_length:
        Maximum number of tokens (including ``<bos>``/``<eos>``) per message.
    learning_rate, batch_size:
        Training hyper-parameters used by :class:`~repro.semantic.codec.SemanticCodec`.
    seed:
        Seed for parameter initialization.
    """

    embedding_dim: int = 32
    feature_dim: int = 8
    hidden_dim: int = 64
    num_layers: int = 1
    num_heads: int = 2
    architecture: str = "transformer"
    max_length: int = 16
    dropout: float = 0.0
    learning_rate: float = 1e-2
    batch_size: int = 16
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ConfigurationError(
                f"architecture must be one of {ARCHITECTURES}, got {self.architecture!r}"
            )
        for name in ("embedding_dim", "feature_dim", "hidden_dim", "num_layers", "num_heads", "max_length", "batch_size"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive, got {getattr(self, name)}")
        if self.architecture == "transformer" and self.embedding_dim % self.num_heads != 0:
            raise ConfigurationError(
                f"embedding_dim {self.embedding_dim} must be divisible by num_heads {self.num_heads}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigurationError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {self.learning_rate}")


@dataclass
class TrainingReport:
    """Loss/accuracy trajectory of one codec training run."""

    losses: list[float] = field(default_factory=list)
    token_accuracies: list[float] = field(default_factory=list)
    epochs: int = 0

    def record(self, loss: float, accuracy: float) -> None:
        """Append one epoch's loss and accuracy."""
        self.losses.append(float(loss))
        self.token_accuracies.append(float(accuracy))
        self.epochs += 1

    @property
    def final_loss(self) -> float:
        """Loss of the last recorded epoch (``nan`` when empty)."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        """Token accuracy of the last recorded epoch (0 when empty)."""
        return self.token_accuracies[-1] if self.token_accuracies else 0.0
