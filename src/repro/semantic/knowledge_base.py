"""Knowledge-base registry: the domain-specialized general models of a server.

Section II-A: "each sender edge server ``i`` caches multiple well-pretrained
general KB-encoders specialized for different major domains", and Section II-C
adds the corresponding decoder copies.  :class:`KnowledgeBaseLibrary` is that
collection — it builds, stores and serves per-domain :class:`SemanticCodec`
instances and knows their cache footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.exceptions import KnowledgeBaseError
from repro.semantic.codec import SemanticCodec
from repro.semantic.config import CodecConfig
from repro.utils.rng import SeedLike, new_rng
from repro.workloads.domains import DomainCorpus, generate_all_corpora


@dataclass
class KnowledgeBaseInfo:
    """Metadata about one cached knowledge base."""

    domain: str
    num_parameters: int
    size_bytes: int
    training_epochs: int
    final_token_accuracy: float


class KnowledgeBaseLibrary:
    """A server's set of domain-specialized general codecs."""

    def __init__(self, config: Optional[CodecConfig] = None) -> None:
        self.config = config or CodecConfig()
        self._codecs: Dict[str, SemanticCodec] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, domain: str, codec: SemanticCodec) -> None:
        """Register an already-built codec for ``domain``."""
        self._codecs[domain] = codec

    def build_domain(
        self,
        domain: str,
        sentences: Sequence[str],
        train_epochs: int = 10,
        seed: SeedLike = None,
    ) -> SemanticCodec:
        """Train a general codec for ``domain`` from its corpus and register it."""
        codec = SemanticCodec.from_corpus(
            sentences, config=self.config, domain=domain, train_epochs=train_epochs, seed=seed
        )
        self._codecs[domain] = codec
        return codec

    @classmethod
    def pretrain(
        cls,
        corpora: Optional[Dict[str, DomainCorpus]] = None,
        config: Optional[CodecConfig] = None,
        sentences_per_domain: int = 200,
        train_epochs: int = 10,
        seed: SeedLike = 0,
    ) -> "KnowledgeBaseLibrary":
        """Pretrain one general codec per domain (the "well-pretrained" KBs).

        With no ``corpora`` given, the default four-domain synthetic corpora
        are generated.
        """
        rng = new_rng(seed)
        if corpora is None:
            corpora = generate_all_corpora(sentences_per_domain, seed=int(rng.integers(0, 2**31 - 1)))
        library = cls(config=config)
        for domain, corpus in corpora.items():
            library.build_domain(
                domain,
                list(corpus.sentences),
                train_epochs=train_epochs,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        return library

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def domains(self) -> list[str]:
        """Domains with a registered codec."""
        return sorted(self._codecs)

    def get(self, domain: str) -> SemanticCodec:
        """The codec for ``domain``; raises if the domain is unknown."""
        if domain not in self._codecs:
            raise KnowledgeBaseError(
                f"no knowledge base for domain {domain!r}; available: {self.domains()}"
            )
        return self._codecs[domain]

    def __contains__(self, domain: str) -> bool:
        return domain in self._codecs

    def __len__(self) -> int:
        return len(self._codecs)

    def items(self) -> Iterable[tuple[str, SemanticCodec]]:
        """(domain, codec) pairs."""
        return self._codecs.items()

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def info(self) -> list[KnowledgeBaseInfo]:
        """Metadata for every registered codec (for cache planning)."""
        entries = []
        for domain, codec in sorted(self._codecs.items()):
            entries.append(
                KnowledgeBaseInfo(
                    domain=domain,
                    num_parameters=codec.num_parameters(),
                    size_bytes=codec.model_bytes(),
                    training_epochs=codec.training_report.epochs,
                    final_token_accuracy=codec.training_report.final_accuracy,
                )
            )
        return entries

    def total_bytes(self) -> int:
        """Total cache footprint of all general codecs."""
        return sum(codec.model_bytes() for codec in self._codecs.values())
