"""Multimodal (image-style) semantic codecs — Section III-B of the paper.

The paper's second research direction asks for encoder/decoder models that can
handle "text, image, video, and audio".  This module adds an image-like
modality to the reproduction: a *scene* is a small grid of patch categories
(e.g. what a Metaverse client would render — "avatar", "screen", "bed",
"stage" ...), and an :class:`ImageSemanticCodec` learns to compress each patch
into a low-dimensional semantic feature and restore it, exactly mirroring the
text codec but over patch grids.  Domains share a set of polysemous patches
("panel", "monitor", "console"), so the same domain-specialization arguments
apply to the visual modality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.nn import Adam, Linear, Module, Tensor, cross_entropy_loss, nll_accuracy
from repro.semantic.config import CodecConfig, TrainingReport
from repro.utils.rng import SeedLike, new_rng, spawn_rng

#: Patch categories available to every scene domain (index 0 is background).
SHARED_PATCHES: Tuple[str, ...] = ("empty", "panel", "monitor", "console", "light", "door")

#: Domain-specific patch palettes (the visual analogue of the text domains).
DOMAIN_PATCHES: Dict[str, Tuple[str, ...]] = {
    "it": ("rack", "cable", "switch", "cooler"),
    "medical": ("bed", "scanner", "iv-stand", "monitor-cart"),
    "news": ("desk", "camera", "teleprompter", "backdrop"),
    "entertainment": ("stage", "speaker", "spotlight", "crowd"),
}


@dataclass
class SceneVocabulary:
    """Mapping between patch names and integer patch ids for one domain."""

    domain: str
    patches: List[str]

    @classmethod
    def for_domain(cls, domain: str) -> "SceneVocabulary":
        if domain not in DOMAIN_PATCHES:
            raise KnowledgeBaseError(f"no scene palette for domain {domain!r}; known: {sorted(DOMAIN_PATCHES)}")
        return cls(domain=domain, patches=list(SHARED_PATCHES) + list(DOMAIN_PATCHES[domain]))

    def __len__(self) -> int:
        return len(self.patches)

    def patch_id(self, name: str) -> int:
        """Id of a patch name (raises for unknown patches)."""
        try:
            return self.patches.index(name)
        except ValueError as error:
            raise KnowledgeBaseError(f"unknown patch {name!r} in domain {self.domain!r}") from error

    def patch_name(self, patch_id: int) -> str:
        """Name of a patch id."""
        if not 0 <= patch_id < len(self.patches):
            raise KnowledgeBaseError(f"patch id {patch_id} outside palette of size {len(self.patches)}")
        return self.patches[patch_id]


@dataclass
class Scene:
    """A small grid of patch ids representing one rendered view."""

    domain: str
    grid: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.grid.shape  # type: ignore[return-value]

    def flat(self) -> np.ndarray:
        """Row-major flattened patch ids."""
        return self.grid.reshape(-1)


class SceneGenerator:
    """Samples synthetic scenes for a domain.

    Scenes have structure (objects cluster in rows) so the codec has something
    better than uniform noise to learn, and a configurable fraction of patches
    come from the shared (polysemous) palette.
    """

    def __init__(
        self,
        domain: str,
        height: int = 6,
        width: int = 6,
        shared_fraction: float = 0.3,
        seed: SeedLike = None,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("scene dimensions must be positive")
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
        self.vocabulary = SceneVocabulary.for_domain(domain)
        self.domain = domain
        self.height = height
        self.width = width
        self.shared_fraction = shared_fraction
        self.rng = new_rng(seed)

    def sample(self) -> Scene:
        """Sample one structured scene."""
        grid = np.zeros((self.height, self.width), dtype=np.int64)
        shared_count = len(SHARED_PATCHES)
        domain_ids = np.arange(shared_count, len(self.vocabulary))
        shared_ids = np.arange(1, shared_count)  # skip "empty"
        for row in range(self.height):
            # Each row is dominated by one object type, mimicking furniture rows.
            if self.rng.random() < self.shared_fraction:
                dominant = int(self.rng.choice(shared_ids))
            else:
                dominant = int(self.rng.choice(domain_ids))
            for column in range(self.width):
                if self.rng.random() < 0.7:
                    grid[row, column] = dominant
                elif self.rng.random() < 0.5:
                    grid[row, column] = 0  # empty
                else:
                    grid[row, column] = int(self.rng.integers(1, len(self.vocabulary)))
        return Scene(domain=self.domain, grid=grid)

    def sample_many(self, count: int) -> List[Scene]:
        """Sample ``count`` scenes."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.sample() for _ in range(count)]


class _PatchEncoder(Module):
    """Embedding + MLP mapping patch ids to per-patch semantic features."""

    def __init__(self, num_patches: int, config: CodecConfig) -> None:
        super().__init__()
        seeds = spawn_rng(new_rng(config.seed), 3)
        from repro.nn import Embedding

        self.embedding = Embedding(num_patches, config.embedding_dim, seed=seeds[0])
        self.hidden = Linear(config.embedding_dim, config.hidden_dim, seed=seeds[1])
        self.projection = Linear(config.hidden_dim, config.feature_dim, seed=seeds[2])

    def forward(self, patch_ids: np.ndarray) -> Tensor:
        embedded = self.embedding(np.asarray(patch_ids, dtype=np.int64))
        return self.projection(self.hidden(embedded).relu()).tanh()


class _PatchDecoder(Module):
    """MLP mapping per-patch semantic features back to patch logits."""

    def __init__(self, num_patches: int, config: CodecConfig) -> None:
        super().__init__()
        seeds = spawn_rng(new_rng(None if config.seed is None else config.seed + 1), 2)
        self.hidden = Linear(config.feature_dim, config.hidden_dim, seed=seeds[0])
        self.output = Linear(config.hidden_dim, num_patches, seed=seeds[1])

    def forward(self, features: Tensor | np.ndarray) -> Tensor:
        if not isinstance(features, Tensor):
            features = Tensor(np.asarray(features, dtype=np.float64))
        return self.output(self.hidden(features).relu())


class ImageSemanticCodec:
    """Semantic encoder/decoder for patch-grid scenes (the image modality).

    The API mirrors :class:`~repro.semantic.codec.SemanticCodec`:
    ``encode_scene`` produces the per-patch feature block that would cross the
    channel, ``decode_features`` restores a scene from (possibly noisy)
    features, and ``train`` fits both halves jointly on reconstruction.
    """

    def __init__(self, domain: str, config: Optional[CodecConfig] = None) -> None:
        self.config = config or CodecConfig(architecture="mlp")
        self.vocabulary = SceneVocabulary.for_domain(domain)
        self.domain = domain
        self.encoder = _PatchEncoder(len(self.vocabulary), self.config)
        self.decoder = _PatchDecoder(len(self.vocabulary), self.config)
        self.training_report = TrainingReport()

    # ------------------------------------------------------------------ #
    # Scene-level API
    # ------------------------------------------------------------------ #
    def encode_scene(self, scene: Scene) -> np.ndarray:
        """Per-patch semantic features, shaped ``(height * width, feature_dim)``."""
        self.encoder.eval()
        return self.encoder(scene.flat()[None, :]).data[0].copy()

    def decode_features(self, features: np.ndarray, shape: Tuple[int, int]) -> Scene:
        """Restore a scene of ``shape`` from received features."""
        self.decoder.eval()
        logits = self.decoder(np.asarray(features, dtype=np.float64)[None, ...])
        patch_ids = np.argmax(logits.data[0], axis=-1).reshape(shape)
        return Scene(domain=self.domain, grid=patch_ids)

    def reconstruct(self, scene: Scene) -> Scene:
        """Round-trip a scene through the codec without a channel."""
        return self.decode_features(self.encode_scene(scene), scene.shape)

    # ------------------------------------------------------------------ #
    # Training / evaluation
    # ------------------------------------------------------------------ #
    def train(
        self,
        scenes: Sequence[Scene],
        epochs: int = 10,
        noise_std: float = 0.0,
        seed: SeedLike = None,
    ) -> TrainingReport:
        """Jointly train encoder and decoder to reconstruct ``scenes``."""
        if not scenes:
            raise KnowledgeBaseError("cannot train an image codec on zero scenes")
        if epochs <= 0:
            raise KnowledgeBaseError(f"epochs must be positive, got {epochs}")
        rng = new_rng(seed)
        flat = np.stack([scene.flat() for scene in scenes])
        optimizer = Adam(self.encoder.parameters() + self.decoder.parameters(), self.config.learning_rate)
        self.encoder.train()
        self.decoder.train()
        batch_size = self.config.batch_size
        for _ in range(epochs):
            order = rng.permutation(len(flat))
            losses, accuracies = [], []
            for start in range(0, len(flat), batch_size):
                batch = flat[order[start : start + batch_size]]
                optimizer.zero_grad()
                features = self.encoder(batch)
                if noise_std > 0:
                    features = features + Tensor(rng.normal(0.0, noise_std, size=features.shape))
                logits = self.decoder(features)
                loss = cross_entropy_loss(logits, batch)
                loss.backward()
                optimizer.clip_gradients(5.0)
                optimizer.step()
                losses.append(loss.item())
                accuracies.append(nll_accuracy(logits, batch))
            self.training_report.record(float(np.mean(losses)), float(np.mean(accuracies)))
        self.encoder.eval()
        self.decoder.eval()
        return self.training_report

    def evaluate(self, scenes: Sequence[Scene]) -> Dict[str, float]:
        """Patch-level reconstruction accuracy over ``scenes``."""
        if not scenes:
            raise KnowledgeBaseError("cannot evaluate on zero scenes")
        accuracies = []
        for scene in scenes:
            restored = self.reconstruct(scene)
            accuracies.append(float((restored.grid == scene.grid).mean()))
        return {"patch_accuracy": float(np.mean(accuracies)), "num_scenes": float(len(scenes))}

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        """Total trainable parameters of the codec."""
        return self.encoder.num_parameters() + self.decoder.num_parameters()

    def model_bytes(self, bytes_per_value: int = 4) -> int:
        """Approximate cache footprint of the codec."""
        return self.num_parameters() * bytes_per_value

    def payload_bytes(self, scene_shape: Tuple[int, int], bits_per_value: int = 4) -> float:
        """Bytes needed to transmit one scene's semantic features."""
        patches = scene_shape[0] * scene_shape[1]
        return patches * self.config.feature_dim * bits_per_value / 8.0

    def raw_scene_bytes(self, scene_shape: Tuple[int, int]) -> float:
        """Bytes to transmit the raw patch ids (1 byte per patch)."""
        return float(scene_shape[0] * scene_shape[1])
