"""Transformer encoder blocks for the DeepSC-style semantic codecs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear, ReLU, Sequential
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng, spawn_rng


class FeedForward(Module):
    """Position-wise feed-forward block used inside transformer layers."""

    def __init__(self, model_dim: int, hidden_dim: int, dropout: float = 0.0, seed: SeedLike = None) -> None:
        super().__init__()
        seeds = spawn_rng(new_rng(seed), 2)
        self.network = Sequential(
            Linear(model_dim, hidden_dim, seed=seeds[0]),
            ReLU(),
            Dropout(dropout, seed=seeds[1]),
            Linear(hidden_dim, model_dim, seed=seeds[1]),
        )

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder layer (attention + feed-forward)."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        hidden_dim: Optional[int] = None,
        dropout: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        hidden_dim = hidden_dim or 4 * model_dim
        seeds = spawn_rng(new_rng(seed), 2)
        self.attention = MultiHeadAttention(model_dim, num_heads, seed=seeds[0])
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout=dropout, seed=seeds[1])
        self.attention_norm = LayerNorm(model_dim)
        self.feed_forward_norm = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, seed=seeds[1])

    def forward(self, inputs: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(self.attention_norm(inputs), mask=mask)
        inputs = inputs + self.dropout(attended)
        transformed = self.feed_forward(self.feed_forward_norm(inputs))
        return inputs + self.dropout(transformed)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` with a final norm."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        num_layers: int,
        hidden_dim: Optional[int] = None,
        dropout: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        seeds = spawn_rng(new_rng(seed), max(num_layers, 1))
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    model_dim, num_heads, hidden_dim=hidden_dim, dropout=dropout, seed=seeds[i]
                )
                for i in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.model_dim = model_dim

    def forward(self, inputs: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output, mask=mask)
        return self.final_norm(output)
