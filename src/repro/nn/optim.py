"""Gradient-descent optimizers for the numpy autograd engine."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer holding references to trainable parameters."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on all tracked parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one parameter update; implemented by subclasses."""
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm does not exceed ``max_norm``.

        Returns the pre-clipping norm, which is useful for monitoring training
        stability of the recurrent selectors.
        """
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[id(parameter)] = velocity
                gradient = velocity
            parameter.data -= self.learning_rate * gradient


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            first = self.beta1 * first + (1 - self.beta1) * gradient
            second = self.beta2 * second + (1 - self.beta2) * gradient**2
            self._first_moment[key] = first
            self._second_moment[key] = second
            first_hat = first / (1 - self.beta1**self.step_count)
            second_hat = second / (1 - self.beta2**self.step_count)
            parameter.data -= self.learning_rate * first_hat / (np.sqrt(second_hat) + self.eps)


class LearningRateSchedule:
    """Step-decay learning-rate schedule applied to an optimizer in place."""

    def __init__(self, optimizer: Optimizer, decay_factor: float = 0.5, decay_every: int = 10) -> None:
        if not 0.0 < decay_factor <= 1.0:
            raise ValueError(f"decay_factor must be in (0, 1], got {decay_factor}")
        if decay_every <= 0:
            raise ValueError(f"decay_every must be positive, got {decay_every}")
        self.optimizer = optimizer
        self.decay_factor = decay_factor
        self.decay_every = decay_every
        self.epoch = 0
        self.initial_learning_rate = optimizer.learning_rate

    def step(self) -> float:
        """Advance one epoch and return the (possibly decayed) learning rate."""
        self.epoch += 1
        decays = self.epoch // self.decay_every
        self.optimizer.learning_rate = self.initial_learning_rate * (self.decay_factor**decays)
        return self.optimizer.learning_rate
