"""Gradient-descent optimizers for the numpy autograd engine.

All optimizers update allocation-free: momentum/moment state lives in
persistent per-parameter arrays (keyed by parameter *index*, so replacing a
parameter tensor object between steps cannot orphan state the way the
historical ``id()`` keying could), and every update runs through
``np.multiply/np.add(..., out=)`` on those arrays.  The update arithmetic
mirrors the historical allocating implementation ufunc for ufunc, so
parameter trajectories are bit-identical.

When the graph runtime (:mod:`repro.nn.graph`) publishes gradients, every
parameter's ``.grad`` is a view into one contiguous slab.  The optimizers
detect that layout and run each element-wise update as a handful of
whole-slab kernels instead of ``O(num_parameters)`` small ones — element-wise
math is blocking-invariant, so this too is bit-identical to the per-parameter
loop.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class _SlabView:
    """Resolved slab layout: every gradient is a contiguous slice of one base."""

    __slots__ = ("base", "bounds")

    def __init__(self, base: np.ndarray, bounds: List[Tuple[int, int]]) -> None:
        self.base = base
        self.bounds = bounds


class Optimizer:
    """Base optimizer holding references to trainable parameters."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.step_count = 0
        #: Persistent squared-gradient scratch per parameter (clip_gradients).
        self._square_scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._slab_scratch: Optional[np.ndarray] = None
        self._slab_cache: Optional[Tuple[Tuple[int, ...], Optional[_SlabView]]] = None

    def zero_grad(self) -> None:
        """Clear gradients on all tracked parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one parameter update; implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Gradient slab detection (graph-runtime fast path)
    # ------------------------------------------------------------------ #
    def _gradient_slab(self) -> Optional[_SlabView]:
        """The common slab behind all gradients, if they tile one contiguously.

        The graph runtime carves parameter gradients out of one buffer in
        parameter order; recognising that layout lets ``clip_gradients`` (and
        slab-capable subclasses) touch all gradients with single whole-slab
        kernels.  Returns ``None`` for ordinary per-parameter gradients.
        """
        grads = [parameter.grad for parameter in self.parameters]
        if any(grad is None for grad in grads):
            return None
        key = tuple(id(grad) for grad in grads)
        if self._slab_cache is not None and self._slab_cache[0] == key:
            return self._slab_cache[1]
        slab = self._resolve_slab(grads)
        self._slab_cache = (key, slab)
        return slab

    @staticmethod
    def _resolve_slab(grads: List[np.ndarray]) -> Optional[_SlabView]:
        base = grads[0].base
        if base is None or base.ndim != 1 or not base.flags.c_contiguous:
            return None
        base_address = base.__array_interface__["data"][0]
        itemsize = base.itemsize
        offset = 0
        bounds: List[Tuple[int, int]] = []
        for grad in grads:
            if grad.base is not base or grad.dtype != base.dtype or not grad.flags.c_contiguous:
                return None
            start = (grad.__array_interface__["data"][0] - base_address) // itemsize
            if start != offset:
                return None
            bounds.append((offset, offset + grad.size))
            offset += grad.size
        if offset != base.size:
            return None
        return _SlabView(base, bounds)

    # ------------------------------------------------------------------ #
    # Gradient clipping
    # ------------------------------------------------------------------ #
    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients *in place* so their global L2 norm stays ≤ ``max_norm``.

        Returns the pre-clipping norm, which is useful for monitoring training
        stability of the recurrent selectors.

        The norm is accumulated as per-parameter sums of squares (squares
        taken by one ``np.power`` pass into persistent scratch, a single
        whole-slab pass when the gradients tile a graph-runtime slab) in
        parameter order — deliberately *not* one ``np.linalg.norm`` over a
        concatenated view, whose different summation blocking would change
        the result in the last ulp and with it every committed training
        trajectory.  Scaling is one in-place multiply per gradient (one per
        slab), so no gradient array is ever reallocated.
        """
        slab = self._gradient_slab()
        total = 0.0
        if slab is not None:
            scratch = self._slab_scratch
            if scratch is None or scratch.shape != slab.base.shape or scratch.dtype != slab.base.dtype:
                scratch = self._slab_scratch = np.empty_like(slab.base)
            np.power(slab.base, 2, out=scratch)
            for start, stop in slab.bounds:
                total += float(scratch[start:stop].sum())
            norm = float(np.sqrt(total))
            if norm > max_norm and norm > 0:
                np.multiply(slab.base, max_norm / norm, out=slab.base)
            return norm
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is None:
                continue
            scratch = self._square_scratch[index]
            if scratch is None or scratch.shape != grad.shape or scratch.dtype != grad.dtype:
                scratch = self._square_scratch[index] = np.empty_like(grad)
            np.power(grad, 2, out=scratch)
            total += float(scratch.sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    np.multiply(parameter.grad, scale, out=parameter.grad)
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._update_scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            scratch = self._update_scratch[index]
            if scratch is None or scratch.shape != gradient.shape or scratch.dtype != gradient.dtype:
                scratch = self._update_scratch[index] = np.empty_like(gradient)
            if self.weight_decay:
                # gradient + weight_decay * data, without touching .grad
                np.multiply(parameter.data, self.weight_decay, out=scratch)
                np.add(gradient, scratch, out=scratch)
                gradient = scratch
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = self._velocity[index] = np.zeros_like(parameter.data)
                # momentum * velocity + gradient
                np.multiply(velocity, self.momentum, out=velocity)
                np.add(velocity, gradient, out=velocity)
                gradient = velocity
            # data -= learning_rate * gradient
            np.multiply(gradient, self.learning_rate, out=scratch)
            np.subtract(parameter.data, scratch, out=parameter.data)


class Adam(Optimizer):
    """Adam optimizer with bias correction.

    State (first/second moments, scratch) persists per parameter index; the
    update is ten in-place ufuncs per parameter — or per *slab* when the graph
    runtime's contiguous gradient layout is detected, in which case the state
    arrays are migrated into matching slabs once and every element-wise kernel
    covers all parameters at once.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._first_moment: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._second_moment: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._moment_scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._hat_scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._slab_state: Optional[dict] = None

    # -- per-parameter path --------------------------------------------- #
    def _step_parameter(self, index: int, parameter: Tensor) -> None:
        gradient = parameter.grad
        shape, dtype = gradient.shape, gradient.dtype
        first = self._first_moment[index]
        if first is None:
            first = self._first_moment[index] = np.zeros_like(parameter.data)
            self._second_moment[index] = np.zeros_like(parameter.data)
        second = self._second_moment[index]
        scratch = self._moment_scratch[index]
        if scratch is None or scratch.shape != shape or scratch.dtype != dtype:
            scratch = self._moment_scratch[index] = np.empty(shape, dtype)
        hat = self._hat_scratch[index]
        if hat is None or hat.shape != shape or hat.dtype != dtype:
            hat = self._hat_scratch[index] = np.empty(shape, dtype)
        if self.weight_decay:
            np.multiply(parameter.data, self.weight_decay, out=scratch)
            np.add(gradient, scratch, out=scratch)
            gradient = scratch
            # scratch holds the decayed gradient until the second-moment
            # update completes; the moment terms go through ``hat`` instead.
            np.multiply(gradient, 1 - self.beta1, out=hat)
            np.multiply(first, self.beta1, out=first)
            np.add(first, hat, out=first)
            np.power(gradient, 2, out=hat)
            np.multiply(hat, 1 - self.beta2, out=hat)
            np.multiply(second, self.beta2, out=second)
            np.add(second, hat, out=second)
        else:
            # first = beta1 * first + (1 - beta1) * gradient
            np.multiply(gradient, 1 - self.beta1, out=scratch)
            np.multiply(first, self.beta1, out=first)
            np.add(first, scratch, out=first)
            # second = beta2 * second + (1 - beta2) * gradient ** 2
            np.power(gradient, 2, out=scratch)
            np.multiply(scratch, 1 - self.beta2, out=scratch)
            np.multiply(second, self.beta2, out=second)
            np.add(second, scratch, out=second)
        correction1 = 1 - self.beta1**self.step_count
        correction2 = 1 - self.beta2**self.step_count
        # data -= learning_rate * (first / c1) / (sqrt(second / c2) + eps)
        np.divide(first, correction1, out=hat)
        np.divide(second, correction2, out=scratch)
        np.sqrt(scratch, out=scratch)
        np.add(scratch, self.eps, out=scratch)
        np.multiply(hat, self.learning_rate, out=hat)
        np.divide(hat, scratch, out=hat)
        np.subtract(parameter.data, hat, out=parameter.data)

    # -- slab path ------------------------------------------------------ #
    def _slab_arrays(self, slab: _SlabView) -> dict:
        state = self._slab_state
        if state is not None and state["base_shape"] == slab.base.shape and state["dtype"] == slab.base.dtype:
            return state
        first = np.zeros_like(slab.base)
        second = np.zeros_like(slab.base)
        # Migrate any existing per-parameter state so switching to the slab
        # layout mid-training (e.g. after the first traced step) is seamless.
        for index, (start, stop) in enumerate(slab.bounds):
            if self._first_moment[index] is not None:
                first[start:stop] = self._first_moment[index].reshape(-1)
                second[start:stop] = self._second_moment[index].reshape(-1)
            shape = self.parameters[index].data.shape
            self._first_moment[index] = first[start:stop].reshape(shape)
            self._second_moment[index] = second[start:stop].reshape(shape)
        hat = np.empty_like(slab.base)
        state = {
            "base_shape": slab.base.shape,
            "dtype": slab.base.dtype,
            "first": first,
            "second": second,
            "scratch": np.empty_like(slab.base),
            "hat": hat,
            "decayed": np.empty_like(slab.base) if self.weight_decay else None,
            # Per-parameter views over the update slab, prebuilt once so the
            # final subtract loop does no slicing per step.
            "updates": [
                hat[start:stop].reshape(parameter.data.shape)
                for parameter, (start, stop) in zip(self.parameters, slab.bounds)
            ],
        }
        self._slab_state = state
        return state

    def _step_slab(self, slab: _SlabView) -> None:
        state = self._slab_arrays(slab)
        first, second = state["first"], state["second"]
        scratch, hat = state["scratch"], state["hat"]
        gradient = slab.base
        if self.weight_decay:
            decayed = state["decayed"]
            for parameter, (start, stop) in zip(self.parameters, slab.bounds):
                np.multiply(parameter.data.reshape(-1), self.weight_decay, out=decayed[start:stop])
            np.add(gradient, decayed, out=decayed)
            gradient = decayed
        np.multiply(gradient, 1 - self.beta1, out=scratch)
        np.multiply(first, self.beta1, out=first)
        np.add(first, scratch, out=first)
        np.power(gradient, 2, out=scratch)
        np.multiply(scratch, 1 - self.beta2, out=scratch)
        np.multiply(second, self.beta2, out=second)
        np.add(second, scratch, out=second)
        correction1 = 1 - self.beta1**self.step_count
        correction2 = 1 - self.beta2**self.step_count
        np.divide(first, correction1, out=hat)
        np.divide(second, correction2, out=scratch)
        np.sqrt(scratch, out=scratch)
        np.add(scratch, self.eps, out=scratch)
        np.multiply(hat, self.learning_rate, out=hat)
        np.divide(hat, scratch, out=hat)
        for parameter, update in zip(self.parameters, state["updates"]):
            np.subtract(parameter.data, update, out=parameter.data)

    def step(self) -> None:
        self.step_count += 1
        slab = self._gradient_slab()
        if slab is not None:
            self._step_slab(slab)
            return
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            self._step_parameter(index, parameter)


class LearningRateSchedule:
    """Step-decay learning-rate schedule applied to an optimizer in place."""

    def __init__(self, optimizer: Optimizer, decay_factor: float = 0.5, decay_every: int = 10) -> None:
        if not 0.0 < decay_factor <= 1.0:
            raise ValueError(f"decay_factor must be in (0, 1], got {decay_factor}")
        if decay_every <= 0:
            raise ValueError(f"decay_every must be positive, got {decay_every}")
        self.optimizer = optimizer
        self.decay_factor = decay_factor
        self.decay_every = decay_every
        self.epoch = 0
        self.initial_learning_rate = optimizer.learning_rate

    def step(self) -> float:
        """Advance one epoch and return the (possibly decayed) learning rate."""
        self.epoch += 1
        decays = self.epoch // self.decay_every
        self.optimizer.learning_rate = self.initial_learning_rate * (self.decay_factor**decays)
        return self.optimizer.learning_rate
