"""Base class for neural-network modules (a minimal ``nn.Module`` analogue)."""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterator, Tuple

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.nn.graph import CompiledModule


class Module:
    """Container of parameters and sub-modules with train/eval modes.

    Sub-classes implement :meth:`forward`; assignment of :class:`Tensor`
    attributes with ``requires_grad=True`` registers them as parameters, and
    assignment of :class:`Module` attributes registers them as sub-modules.

    Calling a module in evaluation mode (after :meth:`eval`) runs its forward
    pass under :class:`~repro.nn.tensor.no_grad`: no autograd tape is built,
    which is the inference fast path every cached codec uses when serving
    requests.  :meth:`train` restores full tape construction.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Attribute interception for registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args: object, **kwargs: object) -> Tensor:
        """Compute the module output; must be overridden by subclasses."""
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        if not self.training and is_grad_enabled():
            with no_grad():
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)

    def compile(self) -> "CompiledModule":
        """Return a graph-captured wrapper around this module's forward pass.

        The wrapper traces one eager execution per input signature, compiles
        it into a flat numpy program with preallocated buffers, and replays
        that program on subsequent calls — bit-identical to eager, with
        transparent eager fallback for unsupported constructs (see
        :mod:`repro.nn.graph`).  Replay only engages when no autograd tape is
        needed (``eval()`` mode or gradients disabled); training-mode calls
        under an active tape run eagerly.  The wrapper is cached, so repeated
        ``compile()`` calls share one program cache.

        Returned tensors view the program's persistent buffers and are
        overwritten by the next call; copy them to retain values.
        """
        from repro.nn.graph import CompiledModule  # local import: graph depends on tensor

        cached = getattr(self, "_compiled_module", None)
        if cached is None:
            cached = CompiledModule(self)
            object.__setattr__(self, "_compiled_module", cached)
        return cached

    # ------------------------------------------------------------------ #
    # Parameter traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield f"{prefix}{name}", parameter
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        """All parameters of this module and its sub-modules."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    def zero_grad(self) -> None:
        """Reset the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Put the module (recursively) into training mode."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Put the module (recursively) into evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # State serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by qualified name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        With ``strict=True`` the key sets must match exactly.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, parameter in own.items():
            if name not in state:
                continue
            array = np.asarray(state[name], dtype=np.float64)
            if array.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {name!r} has shape {parameter.data.shape}, state has {array.shape}"
                )
            parameter.data[...] = array

    def copy_weights_from(self, other: "Module") -> None:
        """Copy all parameter values from ``other`` (shapes must match)."""
        self.load_state_dict(other.state_dict())

    def to_dtype(self, dtype: str | np.dtype | type) -> "Module":
        """Cast every parameter (and dtype-sensitive buffer) to ``dtype`` in place.

        The opt-in float32 path: ``model.to_dtype("float32")`` halves the
        memory traffic of each forward pass, which is what an edge server
        actually serves with (it already *stores* models at 4 bytes/weight,
        see :meth:`parameter_bytes`).  Gradients accumulate in the parameter
        dtype, so casting back via ``to_dtype("float64")`` restores full
        precision for training.
        """
        resolved = np.dtype(dtype)
        for parameter in self.parameters():
            parameter.data = parameter.data.astype(resolved, copy=False)
        for _, module in self.named_modules():
            module._cast_extras(resolved)
        return self

    def _cast_extras(self, dtype: np.dtype) -> None:
        """Hook for sub-classes holding non-parameter arrays (e.g. fixed tables)."""

    def parameter_bytes(self, bytes_per_value: int = 4) -> int:
        """Size of the model in bytes assuming ``bytes_per_value`` per weight.

        The default of 4 models float32 storage, which is what an edge server
        would realistically cache even though the autograd engine computes in
        float64.
        """
        return self.num_parameters() * bytes_per_value

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}(params={self.num_parameters()}, children=[{children}])"


class ModuleList(Module):
    """A list of sub-modules that registers each element properly."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        """Append a sub-module to the list."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        object.__setattr__(self, str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError("ModuleList is a container and has no forward pass")
