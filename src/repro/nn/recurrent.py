"""Recurrent cells used by the context-aware model-selection networks.

Section III-A of the paper suggests LSTM-style classification networks to
select the domain model from conversational context; the GRU implemented here
plays that role while staying small enough for the numpy autograd engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate, stack, zeros
from repro.utils.rng import SeedLike, new_rng, spawn_rng


class GRUCell(Module):
    """Single gated-recurrent-unit step ``h_t = GRU(x_t, h_{t-1})``."""

    def __init__(self, input_dim: int, hidden_dim: int, seed: SeedLike = None) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        seeds = spawn_rng(new_rng(seed), 3)
        combined = input_dim + hidden_dim
        self.update_gate = Linear(combined, hidden_dim, seed=seeds[0])
        self.reset_gate = Linear(combined, hidden_dim, seed=seeds[1])
        self.candidate = Linear(combined, hidden_dim, seed=seeds[2])

    def forward(self, inputs: Tensor, hidden: Tensor) -> Tensor:
        if inputs.shape[-1] != self.input_dim:
            raise ShapeError(f"expected input dim {self.input_dim}, got {inputs.shape[-1]}")
        combined = concatenate([inputs, hidden], axis=-1)
        update = self.update_gate(combined).sigmoid()
        reset = self.reset_gate(combined).sigmoid()
        candidate_input = concatenate([inputs, hidden * reset], axis=-1)
        candidate = self.candidate(candidate_input).tanh()
        return hidden * update + candidate * (1.0 - update)


class GRU(Module):
    """Unidirectional GRU over a full sequence.

    Input is shaped ``(batch, length, input_dim)``; the module returns the
    per-step hidden states ``(batch, length, hidden_dim)`` and the final
    hidden state ``(batch, hidden_dim)``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, seed: SeedLike = None) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.cell = GRUCell(input_dim, hidden_dim, seed=seed)

    def forward(
        self, inputs: Tensor, initial_hidden: Optional[Tensor] = None
    ) -> Tuple[Tensor, Tensor]:
        if inputs.ndim != 3:
            raise ShapeError(f"GRU expects (batch, length, dim) input, got shape {inputs.shape}")
        batch, length, _ = inputs.shape
        if initial_hidden is not None:
            hidden = initial_hidden
        else:
            # Match the input dtype so a float32 sequence stays float32.
            hidden = zeros((batch, self.hidden_dim), dtype=inputs.data.dtype)
        states: list[Tensor] = []
        for step in range(length):
            hidden = self.cell(inputs[:, step, :], hidden)
            states.append(hidden)
        return stack(states, axis=1), hidden


class RecurrentClassifier(Module):
    """GRU encoder followed by a linear classification head.

    Used by :mod:`repro.selection` as the context-aware domain selector.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_classes: int,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        seeds = spawn_rng(new_rng(seed), 2)
        self.encoder = GRU(input_dim, hidden_dim, seed=seeds[0])
        self.head = Linear(hidden_dim, num_classes, seed=seeds[1])
        self.num_classes = num_classes

    def forward(self, inputs: Tensor) -> Tensor:
        _, final_hidden = self.encoder(inputs)
        return self.head(final_hidden)

    def predict(self, inputs: Tensor) -> np.ndarray:
        """Most likely class index for each sequence in the batch."""
        logits = self.forward(inputs)
        return np.argmax(logits.data, axis=-1)
