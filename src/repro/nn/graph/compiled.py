"""User-facing graph-capture entry points: compiled modules and train steps.

Both wrappers share the same lifecycle:

1. **Trace** — the first call with a given input signature (shapes/dtypes/
   static arguments) runs eagerly with the tape recorder installed, so the
   caller gets the exact eager result while the tape is captured.
2. **Verify** — the freshly built program replays the same inputs once and
   every output (and, for train steps, every parameter gradient) is compared
   *bitwise* against the eager result.  Any difference permanently disables
   capture for the wrapped callable — fallback is always silent and safe.
3. **Replay** — subsequent calls with a known signature execute the flat
   program: no tape, no closures, no per-step allocations.

A shape change simply traces a new program (signatures are cached LRU up to
``max_programs``); an unsupported construct (data-dependent numpy values such
as attention mask fills or dropout masks, exotic ops) marks the wrapper
eager-only.  The runtime can be disabled globally with ``REPRO_GRAPH=0`` or
:func:`configure`.

Contract for traced callables: an aborted trace re-runs the callable eagerly,
so forwards must be side-effect free up to their first
:func:`~repro.nn.tensor.note_data_dependent` flag — in particular, any
consumption of random state must happen *after* the flag (see ``Dropout``),
otherwise the fallback re-run would shift the stream.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.graph.builder import build_program
from repro.nn.graph.program import Program
from repro.nn.graph.recorder import TraceRecorder, TraceUnsupported
from repro.nn.tensor import Tensor, is_grad_enabled, set_trace_recorder

_ENABLED = os.environ.get("REPRO_GRAPH", "1").strip().lower() not in ("0", "false", "off", "no")


def is_enabled() -> bool:
    """Whether graph capture is globally enabled (env ``REPRO_GRAPH``)."""
    return _ENABLED


def configure(enabled: Optional[bool] = None) -> bool:
    """Enable/disable the graph runtime at run time; returns the current state."""
    global _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled)
    return _ENABLED


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.dtype == b.dtype and np.array_equal(a, b, equal_nan=True)


class _TracedCall:
    """Run a callable under a fresh recorder, restoring the previous one."""

    def __init__(self, inputs: Dict[str, np.ndarray], params: Sequence[Tensor]) -> None:
        self.recorder = TraceRecorder(inputs=inputs, params=list(params))

    def __enter__(self) -> TraceRecorder:
        self._previous = set_trace_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: object) -> None:
        set_trace_recorder(self._previous)


class CompiledModule:
    """Signature-keyed graph capture for a module's *inference* forward pass.

    Obtained via :meth:`repro.nn.module.Module.compile`.  Calls replay a
    captured program only when no autograd tape could be needed (the module is
    in ``eval()`` mode or gradients are globally disabled); a training-mode
    call under an active tape always runs eagerly, so compiled modules can be
    dropped into existing code without changing autograd semantics.

    Returned tensors view the program's persistent buffers: consume or copy
    them before the next call.
    """

    def __init__(self, module, max_programs: int = 32, verify: bool = True) -> None:
        self.module = module
        self.max_programs = max_programs
        self.verify = verify
        self._programs: "OrderedDict[tuple, Tuple[Program, bool]]" = OrderedDict()
        self._unsupported = False
        # Parameter list cached once: programs bind these tensor objects, so
        # modules must not gain/lose parameters after compilation (they never
        # do in this codebase).  Dtypes are read per call for the signature —
        # ``to_dtype`` flips them in place and must key a fresh program.
        self._params = module.parameters()
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0

    def _param_dtypes(self) -> tuple:
        return tuple(parameter.data.dtype.str for parameter in self._params)

    # ------------------------------------------------------------------ #
    def __call__(self, *args, **kwargs):
        module = self.module
        if not _ENABLED or self._unsupported or (module.training and is_grad_enabled()):
            self.fallbacks += 1
            return module(*args, **kwargs)
        arrays: Dict[str, np.ndarray] = {}
        key_parts: List[object] = [bool(module.training), self._param_dtypes()]
        items: Iterable[Tuple[str, object]] = [
            (f"arg{position}", value) for position, value in enumerate(args)
        ] + sorted(kwargs.items())
        for name, value in items:
            if isinstance(value, Tensor):
                if value.requires_grad:
                    self.fallbacks += 1
                    return module(*args, **kwargs)
                arrays[name] = value.data
                key_parts.append((name, "tensor", value.data.shape, value.data.dtype.str))
            elif isinstance(value, np.ndarray):
                arrays[name] = value
                key_parts.append((name, "array", value.shape, value.dtype.str))
            else:
                key_parts.append((name, "static", repr(value)))
        key = tuple(key_parts)
        entry = self._programs.get(key)
        if entry is not None:
            self._programs.move_to_end(key)
            program, is_tuple = entry
            outputs = [Tensor(array) for array in program.run(arrays)]
            self.replays += 1
            return tuple(outputs) if is_tuple else outputs[0]
        return self._trace(key, arrays, args, kwargs)

    def _trace(self, key: tuple, arrays: Dict[str, np.ndarray], args, kwargs):
        module = self.module
        self.traces += 1
        try:
            with _TracedCall(arrays, self._params) as recorder:
                eager = module(*args, **kwargs)
        except TraceUnsupported:
            # The forward aborted mid-flight (data-dependent value): re-run
            # eagerly.  Safe because flags fire before any state consumption.
            self._unsupported = True
            self.fallbacks += 1
            return module(*args, **kwargs)
        is_tuple = isinstance(eager, tuple)
        outputs = list(eager) if is_tuple else [eager]
        try:
            program = build_program(recorder, outputs, self._params)
        except TraceUnsupported:
            # The forward completed; only the compilation failed — the eager
            # result is complete and correct, no need to run anything twice.
            self._unsupported = True
            self.fallbacks += 1
            return eager
        if self.verify:
            replayed = program.run(arrays)
            if not all(
                _bitwise_equal(out.data, replay) for out, replay in zip(outputs, replayed)
            ):  # pragma: no cover - defence in depth; kernels are pinned by tests
                self._unsupported = True
                self.fallbacks += 1
                return module(*args, **kwargs)
        while len(self._programs) >= self.max_programs:
            self._programs.popitem(last=False)
        self._programs[key] = (program, is_tuple)
        return eager

    # ------------------------------------------------------------------ #
    @property
    def program_count(self) -> int:
        """Number of cached per-signature programs."""
        return len(self._programs)

    @property
    def supported(self) -> bool:
        """False once a trace hit an unsupported construct (eager-only)."""
        return not self._unsupported

    def programs(self) -> List[Program]:
        """The cached programs (for tests and diagnostics)."""
        return [program for program, _ in self._programs.values()]


class CompiledTrainStep:
    """Graph capture of one full training step: forward, loss **and** backward.

    ``fn(**arrays)`` must build the loss (first output) and any auxiliary
    tensors (e.g. logits) from the declared input arrays and the given
    parameters; ``None``-valued inputs are simply omitted (their presence is
    part of the signature).  Each call — traced, replayed, or fallen back —
    leaves every parameter's ``.grad`` holding exactly what eager
    ``loss.backward()`` after ``zero_grad()`` would have produced, so callers
    keep their optimizer logic unchanged.

    Replayed gradients live in one contiguous slab per dtype, which
    :class:`repro.nn.optim.Optimizer` detects to run whole-slab updates.
    """

    def __init__(
        self,
        fn: Callable[..., Tuple[Tensor, ...]],
        params: Sequence[Tensor],
        max_programs: int = 16,
        verify: bool = True,
    ) -> None:
        self.fn = fn
        self.params = list(params)
        self.max_programs = max_programs
        self.verify = verify
        self._programs: "OrderedDict[tuple, Program]" = OrderedDict()
        self._unsupported = False
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------ #
    def __call__(self, **arrays: Optional[np.ndarray]) -> Tuple[Tensor, ...]:
        for parameter in self.params:
            parameter.grad = None
        present = {name: value for name, value in arrays.items() if value is not None}
        if not _ENABLED or self._unsupported:
            self.fallbacks += 1
            return self._eager(present)
        key = tuple(
            (name, present[name].shape, present[name].dtype.str) if name in present else (name,)
            for name in sorted(arrays)
        ) + (tuple(parameter.data.dtype.str for parameter in self.params),)
        program = self._programs.get(key)
        if program is not None:
            self._programs.move_to_end(key)
            outputs = program.run(present)
            program.publish_gradients()
            self.replays += 1
            return tuple(Tensor(array) for array in outputs)
        return self._trace(key, present)

    def _eager(self, present: Dict[str, np.ndarray]) -> Tuple[Tensor, ...]:
        outputs = self.fn(**present)
        outputs = outputs if isinstance(outputs, tuple) else (outputs,)
        outputs[0].backward()
        return outputs

    def _trace(self, key: tuple, present: Dict[str, np.ndarray]) -> Tuple[Tensor, ...]:
        self.traces += 1
        try:
            with _TracedCall(present, self.params) as recorder:
                outputs = self.fn(**present)
            outputs = outputs if isinstance(outputs, tuple) else (outputs,)
            outputs[0].backward()
            program = build_program(recorder, outputs, self.params, loss_tensor=outputs[0])
        except TraceUnsupported:
            self._unsupported = True
            self.fallbacks += 1
            if "outputs" in locals() and isinstance(outputs, tuple) and outputs[0].grad is not None:
                # fn traced fine but the build failed after the eager backward
                # already ran: the eager results are complete and correct.
                return outputs
            return self._eager(present)
        if self.verify and not self._verify(program, present, outputs):
            self._unsupported = True  # pragma: no cover - defence in depth
            return outputs
        while len(self._programs) >= self.max_programs:
            self._programs.popitem(last=False)
        self._programs[key] = program
        return outputs

    def _verify(
        self, program: Program, present: Dict[str, np.ndarray], outputs: Tuple[Tensor, ...]
    ) -> bool:
        """Replay once and require bitwise-equal outputs and gradients."""
        eager_grads = [parameter.grad for parameter in self.params]
        replayed = program.run(present)
        ok = all(_bitwise_equal(out.data, replay) for out, replay in zip(outputs, replayed))
        slab_grads = {id(tensor): grad for tensor, grad in program.grad_bindings}
        for parameter, eager_grad in zip(self.params, eager_grads):
            slab_grad = slab_grads.get(id(parameter))
            if (eager_grad is None) != (slab_grad is None):
                ok = False
            elif eager_grad is not None and not _bitwise_equal(eager_grad, slab_grad):
                ok = False
        # The eager gradients stay bound on the parameters either way.
        for parameter, eager_grad in zip(self.params, eager_grads):
            parameter.grad = eager_grad
        return ok

    # ------------------------------------------------------------------ #
    @property
    def supported(self) -> bool:
        """False once a trace hit an unsupported construct (eager-only)."""
        return not self._unsupported

    @property
    def program_count(self) -> int:
        """Number of cached per-signature programs."""
        return len(self._programs)

    def programs(self) -> List[Program]:
        """The cached programs (for tests and diagnostics)."""
        return list(self._programs.values())
