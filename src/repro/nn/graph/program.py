"""Flat replayable programs: preallocated buffers + a list of numpy kernels.

A :class:`Program` is what the :mod:`~repro.nn.graph.builder` produces from a
recorded tape: a ``values`` table (one entry per traced node, plus operand
slots), a list of zero-argument step closures that execute the captured
computation with ``out=`` numpy kernels into persistent buffers, and binding
tables describing which ``values`` entries must be refreshed per call
(parameters from ``tensor.data``, inputs from the call arguments).

Replay therefore allocates no per-step intermediate arrays on the steady-state
path; the few kernels that have no allocation-free numpy spelling (exotic
fancy indexing, reshapes of oddly-strided inputs) increment
:attr:`Program.allocations` so tests — and the perf harness — can assert the
hot paths stay clean.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Program:
    """A compiled forward(+backward) execution plan over persistent buffers."""

    def __init__(self) -> None:
        #: Runtime value table, one entry per slot; leaf slots are re-bound per
        #: call, op slots point at preallocated buffers (or views thereof).
        self.values: List[Optional[np.ndarray]] = []
        #: Zero-arg closures executed in order; each runs one (or one fused
        #: chain of) numpy kernels.
        self.steps: List[Callable[[], None]] = []
        #: ``(slot, tensor)`` pairs re-bound from ``tensor.data`` every call.
        self.param_bindings: List[Tuple[int, Tensor]] = []
        #: ``(slot, input_name)`` pairs filled from the call arguments.
        self.input_bindings: List[Tuple[int, str]] = []
        #: Slots whose values are returned (in traced-output order).
        self.output_slots: List[int] = []
        #: ``(parameter_tensor, grad_array)`` pairs published after backward.
        self.grad_bindings: List[Tuple[Tensor, np.ndarray]] = []
        #: Preallocated output/scratch buffers (for introspection/tests).
        self.buffers: List[np.ndarray] = []
        #: Number of per-call array allocations performed by fallback kernels.
        self.allocations = 0
        #: Number of completed replays.
        self.replays = 0

    # ------------------------------------------------------------------ #
    # Build-time helpers
    # ------------------------------------------------------------------ #
    def new_slot(self, value: Optional[np.ndarray] = None) -> int:
        """Append a slot (optionally pre-bound to a fixed array)."""
        self.values.append(value)
        return len(self.values) - 1

    def new_buffer(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Allocate a persistent output/scratch buffer."""
        buffer = np.empty(shape, dtype=dtype)
        self.buffers.append(buffer)
        return buffer

    def add_step(self, step: Callable[[], None]) -> None:
        self.steps.append(step)

    @property
    def buffer_bytes(self) -> int:
        """Total bytes held by the program's persistent buffers."""
        return sum(buffer.nbytes for buffer in self.buffers)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run(self, inputs: Optional[Dict[str, np.ndarray]] = None) -> List[np.ndarray]:
        """Execute all steps and return the arrays bound to the output slots.

        The returned arrays (and any published gradients) are the program's
        persistent buffers: they are overwritten by the next replay, so
        callers must consume or copy them before calling again.
        """
        values = self.values
        for slot, tensor in self.param_bindings:
            values[slot] = tensor.data
        if inputs is not None:
            for slot, name in self.input_bindings:
                values[slot] = inputs[name]
        for step in self.steps:
            step()
        self.replays += 1
        return [values[slot] for slot in self.output_slots]

    def publish_gradients(self) -> None:
        """Point each parameter's ``.grad`` at its slab view for this replay."""
        for tensor, grad in self.grad_bindings:
            tensor.grad = grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(steps={len(self.steps)}, buffers={len(self.buffers)}, "
            f"replays={self.replays}, allocations={self.allocations})"
        )
