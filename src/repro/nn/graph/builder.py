"""Compile a recorded tape into a flat :class:`~repro.nn.graph.program.Program`.

The builder walks the :class:`~repro.nn.graph.recorder.TraceRecorder` nodes in
recorded (i.e. topological) order and emits one numpy kernel per op, writing
into preallocated buffers via ``out=``.  Replayed results are **bit-identical**
to eager execution because every kernel performs the exact same numpy
operations in the exact same order as the eager implementation in
:mod:`repro.nn.tensor` — ``np.add(a, b, out=buf)`` produces the same bits as
``a + b``, and composite ops (sigmoid, softmax, matmul backward) are emitted
as the same step-by-step chains the eager closures evaluate.

For training programs the builder additionally derives the backward pass from
the graph structure: it reproduces the eager depth-first topological order,
then emits each op's gradient arithmetic mirroring the corresponding eager
backward closure (including ``_unbroadcast`` reduction chains and the
copy-then-add accumulation order).  Parameter gradients are carved out of one
contiguous slab per dtype so the optimizers can process every parameter with
a handful of whole-slab element-wise kernels.

Fusion: element-wise chains (scalar add/mul/neg/pow, sigmoid/tanh, softmax
family) re-use a single buffer in-place along the chain in forward-only
programs, so a deep stack of activations costs one buffer instead of one per
op.  Ops with no allocation-free spelling fall back to allocating kernels
that bump ``Program.allocations`` (asserted zero for the supported model zoo).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.graph.program import Program
from repro.nn.graph.recorder import TraceNode, TraceRecorder, TraceUnsupported
from repro.nn.tensor import Tensor

#: Ops whose output may share the (single-consumer) parent's buffer in
#: forward-only programs: element-wise with the same shape, evaluated by
#: kernels that read each input element before writing it.
_REUSABLE_ELEMENTWISE = {
    "add_scalar",
    "sub_scalar",
    "rsub_scalar",
    "mul_scalar",
    "div_scalar",
    "rdiv_scalar",
    "neg",
    "pow",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "clip",
    "softmax",
    "log_softmax",
}


def _dummy(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def _matmul_shape(shape_a: Tuple[int, ...], shape_b: Tuple[int, ...]) -> Tuple[int, ...]:
    return np.matmul(_dummy(shape_a), _dummy(shape_b)).shape


class GraphBuilder:
    """Single-use builder turning one recorded trace into one program."""

    def __init__(self, recorder: TraceRecorder, params: Sequence[Tensor]) -> None:
        self.recorder = recorder
        self.params = list(params)
        self.program = Program()
        #: node -> auxiliary fixed arrays produced by the forward kernel
        #: (relu/clip masks, log-softmax exp scratch) that backward reads.
        self._aux: Dict[int, Dict[str, np.ndarray]] = {}
        self._grad: Dict[int, np.ndarray] = {}
        self._contrib_total: Dict[int, int] = {}
        self._contrib_seen: Dict[int, int] = {}
        self._children: Dict[int, int] = {}
        self._output_ids: set[int] = set()
        self._forward_only = True

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def build(
        self,
        output_tensors: Sequence[Tensor],
        loss_tensor: Optional[Tensor] = None,
    ) -> Program:
        """Emit forward kernels for all nodes (and backward from ``loss_tensor``)."""
        self._forward_only = loss_tensor is None
        nodes = self.recorder.nodes
        output_nodes = [self._node_of(tensor) for tensor in output_tensors]
        output_ids = {node.index for node in output_nodes}
        self._output_ids = output_ids
        # Reserve one slot per node up front so operand slots (gather indices,
        # fancy-index components) allocated during emission never collide with
        # node indices.
        for _ in nodes:
            self.program.new_slot()
        for node in nodes:
            if node.kind == "op":
                for parent in node.parents:
                    self._children[parent.index] = self._children.get(parent.index, 0) + 1

        for node in nodes:
            if node.kind == "op":
                self._emit_forward(node, protected=node.index in output_ids)
            else:
                self._emit_leaf(node)

        if loss_tensor is not None:
            self._emit_backward(self._node_of(loss_tensor))

        self.program.output_slots = [node.index for node in output_nodes]
        return self.program

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _node_of(self, tensor: Tensor) -> TraceNode:
        node = self.recorder._by_tensor.get(id(tensor))
        if node is None:
            raise TraceUnsupported("output tensor was not produced by the traced call")
        return node

    def _emit(self, step: Callable[[], None]) -> None:
        self.program.add_step(step)

    def _scratch(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return self.program.new_buffer(tuple(shape), np.dtype(dtype))

    def _emit_leaf(self, node: TraceNode) -> None:
        if node.kind == "param":
            self.program.param_bindings.append((node.index, node.tensor))
        elif node.kind == "input":
            self.program.input_bindings.append((node.index, node.input_name))
        else:  # const
            self.program.values[node.index] = node.const_value

    def _operand(self, array: np.ndarray):
        """Bind an op operand array (indices, ...) as an input slot or constant.

        Returns a zero-arg callable producing the operand at replay time.
        """
        name = self.recorder.input_slot_name(array)
        if name is None:
            return lambda fixed=array: fixed
        slot = self.program.new_slot()
        self.program.input_bindings.append((slot, name))
        values = self.program.values
        return lambda values=values, slot=slot: values[slot]

    # ------------------------------------------------------------------ #
    # Forward emission
    # ------------------------------------------------------------------ #
    def _out_buffer(self, node: TraceNode, protected: bool) -> np.ndarray:
        """Allocate (or, in fused chains, re-use the parent's) output buffer."""
        if (
            self._forward_only
            and not protected
            and node.op in _REUSABLE_ELEMENTWISE
            and len(node.parents) == 1
        ):
            parent = node.parents[0]
            parent_value = self.program.values[parent.index]
            if (
                parent.kind == "op"
                and parent.index not in self._output_ids
                and self._children.get(parent.index, 0) == 1
                and isinstance(parent_value, np.ndarray)
                and parent_value.shape == node.shape
                and parent_value.dtype == node.dtype
                and parent_value.flags.c_contiguous
            ):
                return parent_value
        return self.program.new_buffer(node.shape, node.dtype)

    def _emit_forward(self, node: TraceNode, protected: bool = False) -> None:
        values = self.program.values
        op = node.op
        attrs = node.attrs
        parent_slots = [parent.index for parent in node.parents]

        # View ops: no buffer, re-derive the view from the parent each call.
        if op == "transpose":
            axes = attrs.get("axes")
            i = parent_slots[0]
            self._mark_dynamic(node)

            def step(values=values, i=i, o=node.index, axes=axes) -> None:
                values[o] = np.transpose(values[i], axes)

            self._emit(step)
            return
        if op == "reshape":
            self._emit_reshape(node, parent_slots[0], attrs["shape"])
            return
        if op == "getitem" and not _index_has_arrays(attrs["index"]):
            index = attrs["index"]
            i = parent_slots[0]
            self._mark_dynamic(node)

            def step(values=values, i=i, o=node.index, index=index) -> None:
                values[o] = values[i][index]

            self._emit(step)
            return

        buf = self._out_buffer(node, protected)
        values[node.index] = buf

        ew_binary = {"add": np.add, "mul": np.multiply, "div": np.divide}
        ew_scalar = {
            "add_scalar": np.add,
            "sub_scalar": np.subtract,
            "mul_scalar": np.multiply,
            "div_scalar": np.divide,
        }
        if op in ew_binary:
            ufunc = ew_binary[op]
            i, j = parent_slots

            def step(values=values, i=i, j=j, out=buf, ufunc=ufunc) -> None:
                ufunc(values[i], values[j], out=out)

            self._emit(step)
        elif op in ew_scalar:
            ufunc = ew_scalar[op]
            i = parent_slots[0]
            scalar = attrs["scalar"]

            def step(values=values, i=i, s=scalar, out=buf, ufunc=ufunc) -> None:
                ufunc(values[i], s, out=out)

            self._emit(step)
        elif op in ("rsub_scalar", "rdiv_scalar"):
            ufunc = np.subtract if op == "rsub_scalar" else np.divide
            i = parent_slots[0]
            scalar = attrs["scalar"]

            def step(values=values, i=i, s=scalar, out=buf, ufunc=ufunc) -> None:
                ufunc(s, values[i], out=out)

            self._emit(step)
        elif op == "neg":
            i = parent_slots[0]

            def step(values=values, i=i, out=buf) -> None:
                np.negative(values[i], out=out)

            self._emit(step)
        elif op == "pow":
            i = parent_slots[0]
            exponent = attrs["exponent"]

            def step(values=values, i=i, e=exponent, out=buf) -> None:
                np.power(values[i], e, out=out)

            self._emit(step)
        elif op in ("exp", "log", "tanh"):
            ufunc = {"exp": np.exp, "log": np.log, "tanh": np.tanh}[op]
            i = parent_slots[0]

            def step(values=values, i=i, out=buf, ufunc=ufunc) -> None:
                ufunc(values[i], out=out)

            self._emit(step)
        elif op == "sigmoid":
            # Mirrors eager 1.0 / (1.0 + np.exp(-x)) step by step.
            i = parent_slots[0]

            def step(values=values, i=i, out=buf) -> None:
                np.negative(values[i], out=out)
                np.exp(out, out=out)
                np.add(out, 1.0, out=out)
                np.divide(1.0, out, out=out)

            self._emit(step)
        elif op == "relu":
            i = parent_slots[0]
            mask = self._scratch(node.shape, np.dtype(bool))
            self._aux[node.index] = {"mask": mask}

            def step(values=values, i=i, out=buf, mask=mask) -> None:
                np.greater(values[i], 0, out=mask)
                np.multiply(values[i], mask, out=out)

            self._emit(step)
        elif op == "clip":
            i = parent_slots[0]
            minimum, maximum = attrs["minimum"], attrs["maximum"]
            mask = self._scratch(node.shape, np.dtype(bool))
            mask2 = self._scratch(node.shape, np.dtype(bool))
            self._aux[node.index] = {"mask": mask}

            def step(
                values=values, i=i, out=buf, mask=mask, mask2=mask2, lo=minimum, hi=maximum
            ) -> None:
                np.greater_equal(values[i], lo, out=mask)
                np.less_equal(values[i], hi, out=mask2)
                np.logical_and(mask, mask2, out=mask)
                np.clip(values[i], lo, hi, out=out)

            self._emit(step)
        elif op == "matmul":
            i, j = parent_slots
            if len(node.shape) == 0:

                def step(values=values, i=i, j=j, out=buf) -> None:
                    out[...] = values[i] @ values[j]

            else:

                def step(values=values, i=i, j=j, out=buf) -> None:
                    np.matmul(values[i], values[j], out=out)

            self._emit(step)
        elif op == "sum":
            i = parent_slots[0]
            axis, keepdims = attrs["axis"], attrs["keepdims"]

            def step(values=values, i=i, out=buf, axis=axis, keepdims=keepdims) -> None:
                np.sum(values[i], axis=axis, keepdims=keepdims, out=out)

            self._emit(step)
        elif op == "softmax":
            self._emit_softmax(node, parent_slots[0], buf, log=False)
        elif op == "log_softmax":
            self._emit_softmax(node, parent_slots[0], buf, log=True)
        elif op == "gather_rows":
            i = parent_slots[0]
            indices = self._operand(attrs["indices"])

            def step(values=values, i=i, idx=indices, out=buf) -> None:
                np.take(values[i], idx(), axis=0, out=out)

            self._emit(step)
        elif op == "getitem":
            self._emit_getitem_advanced(node, parent_slots[0], buf, attrs["index"])
        elif op == "concatenate":
            axis = attrs["axis"]
            slots = tuple(parent_slots)

            def step(values=values, slots=slots, axis=axis, out=buf) -> None:
                np.concatenate([values[s] for s in slots], axis=axis, out=out)

            self._emit(step)
        elif op == "stack":
            axis = attrs["axis"]
            slots = tuple(parent_slots)
            try:
                np.stack([_dummy(p.shape) for p in node.parents], axis=axis, out=_dummy(node.shape))

                def step(values=values, slots=slots, axis=axis, out=buf) -> None:
                    np.stack([values[s] for s in slots], axis=axis, out=out)

            except TypeError:  # pragma: no cover - very old numpy without out=
                program = self.program

                def step(values=values, slots=slots, axis=axis, out=buf, program=program) -> None:
                    program.allocations += 1
                    out[...] = np.stack([values[s] for s in slots], axis=axis)

            self._emit(step)
        else:
            raise TraceUnsupported(f"no compiled kernel for op {op!r}")

    def _mark_dynamic(self, node: TraceNode) -> None:
        self.program.values[node.index] = None

    def _emit_reshape(self, node: TraceNode, parent_slot: int, shape: Tuple[int, ...]) -> None:
        values = self.program.values
        parent_value = values[parent_slot]
        self._mark_dynamic(node)
        if isinstance(parent_value, np.ndarray):
            # Fixed-parent reshape: decide view vs copy once at build time.
            view = parent_value.reshape(shape)
            if np.shares_memory(view, parent_value):

                def step(values=values, o=node.index, view=view) -> None:
                    values[o] = view

                self._emit(step)
                return
            buf = self.program.new_buffer(tuple(shape), node.dtype)
            dst = buf.reshape(parent_value.shape)

            def step(values=values, o=node.index, dst=dst, src=parent_value, buf=buf) -> None:
                np.copyto(dst, src)
                values[o] = buf

            self._emit(step)
            return
        program = self.program

        def step(values=values, i=parent_slot, o=node.index, shape=shape, program=program) -> None:
            reshaped = values[i].reshape(shape)
            if reshaped.base is None:
                program.allocations += 1
            values[o] = reshaped

        self._emit(step)

    def _emit_softmax(self, node: TraceNode, parent_slot: int, buf: np.ndarray, log: bool) -> None:
        values = self.program.values
        axis = node.attrs["axis"]
        reduced_shape = list(node.shape)
        reduced_shape[axis] = 1
        reduced = self._scratch(tuple(reduced_shape), node.dtype)
        if log:
            exps = self._scratch(node.shape, node.dtype)
            self._aux[node.index] = {"exps": exps}

            def step(values=values, i=parent_slot, out=buf, red=reduced, exps=exps, axis=axis) -> None:
                np.amax(values[i], axis=axis, keepdims=True, out=red)
                np.subtract(values[i], red, out=out)  # shifted
                np.exp(out, out=exps)
                np.sum(exps, axis=axis, keepdims=True, out=red)
                np.log(red, out=red)
                np.subtract(out, red, out=out)

            self._emit(step)
        else:

            def step(values=values, i=parent_slot, out=buf, red=reduced, axis=axis) -> None:
                np.amax(values[i], axis=axis, keepdims=True, out=red)
                np.subtract(values[i], red, out=out)
                np.exp(out, out=out)
                np.sum(out, axis=axis, keepdims=True, out=red)
                np.divide(out, red, out=out)

            self._emit(step)

    def _emit_getitem_advanced(
        self, node: TraceNode, parent_slot: int, buf: np.ndarray, index: object
    ) -> None:
        values = self.program.values
        program = self.program
        parent = node.parents[0]
        if (
            isinstance(index, np.ndarray)
            and index.dtype != np.dtype(bool)
            and np.issubdtype(index.dtype, np.integer)
        ):
            idx = self._operand(index)

            def step(values=values, i=parent_slot, idx=idx, out=buf) -> None:
                np.take(values[i], idx(), axis=0, out=out)

            self._emit(step)
            return
        if (
            isinstance(index, tuple)
            and len(index) == 2
            and len(parent.shape) == 2
            and all(
                isinstance(part, np.ndarray) and np.issubdtype(part.dtype, np.integer)
                for part in index
            )
            and index[0].shape == index[1].shape
        ):
            # a[rows, cols] on a 2-D array: flatten to one allocation-free take.
            rows, cols = (self._operand(part) for part in index)
            columns = parent.shape[1]
            flat = self._scratch(index[0].shape, np.dtype(np.int64))

            def step(
                values=values,
                i=parent_slot,
                rows=rows,
                cols=cols,
                out=buf,
                flat=flat,
                c=columns,
                program=program,
            ) -> None:
                base = values[i]
                row_index, col_index = rows(), cols()
                # Flattening breaks python-style negative wrapping, and a
                # non-contiguous base ravels differently — both fall back to
                # the (allocating) fancy gather, which is always exact.
                if base.flags.c_contiguous and row_index.min() >= 0 and col_index.min() >= 0:
                    np.multiply(row_index, c, out=flat)
                    np.add(flat, col_index, out=flat)
                    np.take(base.reshape(-1), flat, out=out)
                else:  # pragma: no cover - cross-entropy indices are non-negative
                    program.allocations += 1
                    out[...] = base[row_index, col_index]

            self._emit(step)
            return

        # Generic fallback: correct for any index expression, but allocates.
        resolvers = _index_resolvers(index, self._operand)

        def step(values=values, i=parent_slot, out=buf, resolvers=resolvers, program=program) -> None:
            program.allocations += 1
            out[...] = values[i][_resolve_index(resolvers)]

        self._emit(step)

    # ------------------------------------------------------------------ #
    # Backward emission
    # ------------------------------------------------------------------ #
    def _emit_backward(self, loss: TraceNode) -> None:
        if int(np.prod(loss.shape)) != 1:
            raise TraceUnsupported("compiled backward requires a scalar loss")
        if not loss.requires_grad:
            raise TraceUnsupported("loss does not require grad; nothing to differentiate")
        order = self._toposort(loss)
        # Contribution counts: one per (child op, requires-grad parent) edge,
        # exactly matching one eager ``_accumulate`` call per edge.
        for node in order:
            if node.kind != "op":
                continue
            for parent in node.parents:
                if parent.requires_grad:
                    self._contrib_total[parent.index] = (
                        self._contrib_total.get(parent.index, 0) + 1
                    )
        self._allocate_grad_slab(order)
        self._grad[loss.index] = np.ones(loss.shape, dtype=loss.dtype)
        for node in reversed(order):
            if node.kind != "op":
                continue
            grad = self._grad.get(node.index)
            if grad is None:  # pragma: no cover - every ordered op receives grad
                raise TraceUnsupported(f"no gradient reached traced op {node.op!r}")
            self._emit_backward_op(node, grad)

    def _toposort(self, root: TraceNode) -> List[TraceNode]:
        """Depth-first topological order, byte-for-byte the eager algorithm."""
        order: List[TraceNode] = []
        visited: set[int] = set()
        stack = [(root, iter(root.parents))]
        seen_on_stack = {id(root)}
        while stack:
            current, parents = stack[-1]
            advanced = False
            for parent in parents:
                if id(parent) not in visited and parent.requires_grad:
                    if id(parent) in seen_on_stack:
                        continue
                    stack.append((parent, iter(parent.parents)))
                    seen_on_stack.add(id(parent))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                seen_on_stack.discard(id(current))
                if id(current) not in visited:
                    visited.add(id(current))
                    order.append(current)
        return order

    def _allocate_grad_slab(self, order: List[TraceNode]) -> None:
        """Carve parameter gradients out of one contiguous slab per dtype.

        Slab layout follows the declared parameter order so the optimizers can
        recognise the slab (``Optimizer._gradient_slab``) and run whole-slab
        element-wise updates.
        """
        param_nodes: Dict[int, TraceNode] = {}
        for node in order:
            if node.kind == "param" and self._contrib_total.get(node.index, 0) > 0:
                param_nodes[id(node.tensor)] = node
        by_dtype: Dict[np.dtype, List[Tensor]] = {}
        for tensor in self.params:
            node = param_nodes.get(id(tensor))
            if node is not None:
                by_dtype.setdefault(node.dtype, []).append(tensor)
        for dtype, tensors in by_dtype.items():
            total = sum(int(np.prod(t.data.shape)) for t in tensors)
            slab = self.program.new_buffer((total,), dtype)
            offset = 0
            for tensor in tensors:
                count = int(np.prod(tensor.data.shape))
                view = slab[offset : offset + count].reshape(tensor.data.shape)
                offset += count
                node = param_nodes[id(tensor)]
                self._grad[node.index] = view
                self.program.grad_bindings.append((tensor, view))

    def _grad_buffer(self, node: TraceNode) -> np.ndarray:
        buffer = self._grad.get(node.index)
        if buffer is None:
            buffer = self._scratch(node.shape, node.dtype)
            self._grad[node.index] = buffer
        return buffer

    def _accumulate(self, parent: TraceNode, src: np.ndarray) -> None:
        """Route one gradient contribution into ``parent``'s gradient storage.

        Mirrors eager ``Tensor._accumulate``: dtype cast, unbroadcast
        reduction, then copy-on-first / add-on-subsequent — with the copy
        elided (aliased) when this is the only contribution to a non-parameter
        node, which changes no values.
        """
        if not parent.requires_grad:
            return
        src = self._cast_fixed(src, parent.dtype)
        src = self._unbroadcast_emit(src, parent.shape)
        seen = self._contrib_seen.get(parent.index, 0)
        self._contrib_seen[parent.index] = seen + 1
        if seen == 0:
            if self._contrib_total.get(parent.index, 0) == 1 and parent.kind != "param":
                self._grad[parent.index] = src
                return
            dst = self._grad_buffer(parent)

            def step(dst=dst, src=src) -> None:
                np.copyto(dst, src)

            self._emit(step)
        else:
            dst = self._grad[parent.index]

            def step(dst=dst, src=src) -> None:
                np.add(dst, src, out=dst)

            self._emit(step)

    def _cast_fixed(self, src: np.ndarray, dtype: np.dtype) -> np.ndarray:
        if src.dtype == dtype:
            return src
        cast = self._scratch(src.shape, dtype)

        def step(dst=cast, src=src) -> None:
            np.copyto(dst, src, casting="unsafe")

        self._emit(step)
        return cast

    def _unbroadcast_emit(self, src: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        """Emit the eager ``_unbroadcast`` reduction chain over fixed arrays."""
        shape = tuple(shape)
        if src.shape == shape:
            return src
        current = src
        while current.ndim > len(shape):
            reduced = self._scratch(current.shape[1:], current.dtype)

            def step(dst=reduced, src=current) -> None:
                np.sum(src, axis=0, out=dst)

            self._emit(step)
            current = reduced
        for axis, size in enumerate(shape):
            if size == 1 and current.shape[axis] != 1:
                kept = list(current.shape)
                kept[axis] = 1
                reduced = self._scratch(tuple(kept), current.dtype)

                def step(dst=reduced, src=current, axis=axis) -> None:
                    np.sum(src, axis=axis, keepdims=True, out=dst)

                self._emit(step)
                current = reduced
        return self._reshape_fixed(current, shape)

    def _reshape_fixed(self, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        """Reshape a fixed array; emits a copy step when a view is impossible."""
        view = array.reshape(shape)
        if np.shares_memory(view, array):
            return view
        buffer = self._scratch(shape, array.dtype)
        dst = buffer.reshape(array.shape)

        def step(dst=dst, src=array) -> None:
            np.copyto(dst, src)

        self._emit(step)
        return buffer

    # -- per-op backward handlers -------------------------------------- #
    def _emit_backward_op(self, node: TraceNode, grad: np.ndarray) -> None:
        op = node.op
        parents = node.parents
        values = self.program.values
        attrs = node.attrs

        def fv(parent: TraceNode) -> Callable[[], np.ndarray]:
            return lambda values=values, i=parent.index: values[i]

        def out_value() -> Callable[[], np.ndarray]:
            return lambda values=values, i=node.index: values[i]

        def ew_scratch(*operands: Tuple[Tuple[int, ...], np.dtype]) -> np.ndarray:
            shape = np.broadcast_shapes(*(o[0] for o in operands))
            dtype = np.result_type(*(o[1] for o in operands))
            return self._scratch(shape, dtype)

        if op in ("add", "add_scalar", "sub_scalar"):
            for parent in parents:
                self._accumulate(parent, grad)
        elif op in ("neg", "rsub_scalar"):
            (parent,) = parents
            if parent.requires_grad:
                scratch = self._scratch(grad.shape, grad.dtype)

                def step(dst=scratch, g=grad) -> None:
                    np.negative(g, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "mul":
            pa, pb = parents
            if pa.requires_grad:
                scratch = ew_scratch((grad.shape, grad.dtype), (pb.shape, pb.dtype))

                def step(dst=scratch, g=grad, other=fv(pb)) -> None:
                    np.multiply(g, other(), out=dst)

                self._emit(step)
                self._accumulate(pa, scratch)
            if pb.requires_grad:
                scratch = ew_scratch((grad.shape, grad.dtype), (pa.shape, pa.dtype))

                def step(dst=scratch, g=grad, other=fv(pa)) -> None:
                    np.multiply(g, other(), out=dst)

                self._emit(step)
                self._accumulate(pb, scratch)
        elif op == "mul_scalar":
            (parent,) = parents
            if parent.requires_grad:
                scratch = self._scratch(grad.shape, grad.dtype)

                def step(dst=scratch, g=grad, s=attrs["scalar"]) -> None:
                    np.multiply(g, s, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "div":
            pa, pb = parents
            if pa.requires_grad:
                scratch = ew_scratch((grad.shape, grad.dtype), (pb.shape, pb.dtype))

                def step(dst=scratch, g=grad, other=fv(pb)) -> None:
                    np.divide(g, other(), out=dst)

                self._emit(step)
                self._accumulate(pa, scratch)
            if pb.requires_grad:
                # Eager: -grad * a / (b ** 2)
                numerator = ew_scratch((grad.shape, grad.dtype), (pa.shape, pa.dtype))
                squared = self._scratch(pb.shape, pb.dtype)
                result = ew_scratch(
                    (numerator.shape, numerator.dtype), (squared.shape, squared.dtype)
                )
                neg = self._scratch(grad.shape, grad.dtype)

                def step1(dst=neg, g=grad) -> None:
                    np.negative(g, out=dst)

                def step2(dst=numerator, src=neg, a=fv(pa)) -> None:
                    np.multiply(src, a(), out=dst)

                def step3(dst=squared, b=fv(pb)) -> None:
                    np.power(b(), 2, out=dst)

                def step4(dst=result, num=numerator, den=squared) -> None:
                    np.divide(num, den, out=dst)

                self._emit(step1)
                self._emit(step2)
                self._emit(step3)
                self._emit(step4)
                self._accumulate(pb, result)
        elif op == "div_scalar":
            (parent,) = parents
            if parent.requires_grad:
                scratch = self._scratch(grad.shape, grad.dtype)

                def step(dst=scratch, g=grad, s=attrs["scalar"]) -> None:
                    np.divide(g, s, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "rdiv_scalar":
            (parent,) = parents
            if parent.requires_grad:
                # Eager: -grad * out_data / x
                scratch = self._scratch(node.shape, node.dtype)

                def step1(dst=scratch, g=grad) -> None:
                    np.negative(g, out=dst)

                def step2(dst=scratch, out=out_value()) -> None:
                    np.multiply(dst, out(), out=dst)

                def step3(dst=scratch, x=fv(parent)) -> None:
                    np.divide(dst, x(), out=dst)

                self._emit(step1)
                self._emit(step2)
                self._emit(step3)
                self._accumulate(parent, scratch)
        elif op == "pow":
            (parent,) = parents
            if parent.requires_grad:
                exponent = attrs["exponent"]
                # Eager: grad * exponent * x ** (exponent - 1)
                scaled = self._scratch(grad.shape, grad.dtype)
                powered = self._scratch(parent.shape, parent.dtype)
                result = ew_scratch((scaled.shape, scaled.dtype), (powered.shape, powered.dtype))

                def step1(dst=scaled, g=grad, e=exponent) -> None:
                    np.multiply(g, e, out=dst)

                def step2(dst=powered, x=fv(parent), e=exponent) -> None:
                    np.power(x(), e - 1, out=dst)

                def step3(dst=result, a=scaled, b=powered) -> None:
                    np.multiply(a, b, out=dst)

                self._emit(step1)
                self._emit(step2)
                self._emit(step3)
                self._accumulate(parent, result)
        elif op == "matmul":
            self._emit_backward_matmul(node, grad)
        elif op == "sum":
            (parent,) = parents
            if parent.requires_grad:
                src = self._cast_fixed(grad, parent.dtype)
                axis, keepdims = attrs["axis"], attrs["keepdims"]
                if axis is None:
                    expanded = np.broadcast_to(src, parent.shape)
                else:
                    axes = (axis,) if isinstance(axis, int) else tuple(axis)
                    expanded = src
                    if not keepdims:
                        for ax in sorted(a % len(parent.shape) for a in axes):
                            expanded = np.expand_dims(expanded, ax)
                    expanded = np.broadcast_to(expanded, parent.shape)
                self._accumulate(parent, expanded)
        elif op == "reshape":
            (parent,) = parents
            if parent.requires_grad:
                self._accumulate(parent, self._reshape_fixed(grad, attrs["original_shape"]))
        elif op == "transpose":
            (parent,) = parents
            if parent.requires_grad:
                axes = attrs.get("axes")
                if axes is None:
                    self._accumulate(parent, np.transpose(grad))
                else:
                    inverse = np.argsort(axes)
                    self._accumulate(parent, np.transpose(grad, inverse))
        elif op in ("getitem", "gather_rows"):
            self._emit_backward_scatter(node, grad)
        elif op == "exp":
            (parent,) = parents
            if parent.requires_grad:
                scratch = self._scratch(node.shape, node.dtype)

                def step(dst=scratch, g=grad, out=out_value()) -> None:
                    np.multiply(g, out(), out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "log":
            (parent,) = parents
            if parent.requires_grad:
                scratch = ew_scratch((grad.shape, grad.dtype), (parent.shape, parent.dtype))

                def step(dst=scratch, g=grad, x=fv(parent)) -> None:
                    np.divide(g, x(), out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "tanh":
            (parent,) = parents
            if parent.requires_grad:
                # Eager: grad * (1.0 - out ** 2)
                scratch = self._scratch(node.shape, node.dtype)

                def step(dst=scratch, g=grad, out=out_value()) -> None:
                    np.power(out(), 2, out=dst)
                    np.subtract(1.0, dst, out=dst)
                    np.multiply(g, dst, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "sigmoid":
            (parent,) = parents
            if parent.requires_grad:
                # Eager: grad * out * (1.0 - out)
                first = self._scratch(node.shape, node.dtype)
                second = self._scratch(node.shape, node.dtype)

                def step(a=first, b=second, g=grad, out=out_value()) -> None:
                    np.multiply(g, out(), out=a)
                    np.subtract(1.0, out(), out=b)
                    np.multiply(a, b, out=a)

                self._emit(step)
                self._accumulate(parent, first)
        elif op in ("relu", "clip"):
            (parent,) = parents
            if parent.requires_grad:
                mask = self._aux[node.index]["mask"]
                scratch = self._scratch(node.shape, node.dtype)

                def step(dst=scratch, g=grad, mask=mask) -> None:
                    np.multiply(g, mask, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "softmax":
            (parent,) = parents
            if parent.requires_grad:
                axis = attrs["axis"]
                reduced_shape = list(node.shape)
                reduced_shape[axis] = 1
                prod = self._scratch(node.shape, node.dtype)
                dot = self._scratch(tuple(reduced_shape), node.dtype)

                def step(prod=prod, dot=dot, g=grad, out=out_value(), axis=axis) -> None:
                    np.multiply(g, out(), out=prod)
                    np.sum(prod, axis=axis, keepdims=True, out=dot)
                    np.subtract(g, dot, out=prod)
                    np.multiply(out(), prod, out=prod)

                self._emit(step)
                self._accumulate(parent, prod)
        elif op == "log_softmax":
            (parent,) = parents
            if parent.requires_grad:
                axis = attrs["axis"]
                exps = self._aux[node.index]["exps"]
                reduced_shape = list(node.shape)
                reduced_shape[axis] = 1
                gsum = self._scratch(tuple(reduced_shape), node.dtype)
                scratch = self._scratch(node.shape, node.dtype)

                def step(
                    dst=scratch, gsum=gsum, g=grad, out=out_value(), exps=exps, axis=axis
                ) -> None:
                    np.exp(out(), out=exps)  # lazy softmax, exactly eager's np.exp(out_data)
                    np.sum(g, axis=axis, keepdims=True, out=gsum)
                    np.multiply(exps, gsum, out=dst)
                    np.subtract(g, dst, out=dst)

                self._emit(step)
                self._accumulate(parent, scratch)
        elif op == "concatenate":
            axis = attrs["axis"]
            sizes = [parent.shape[axis] for parent in parents]
            offsets = np.cumsum([0] + sizes)
            for parent, start, stop in zip(parents, offsets[:-1], offsets[1:]):
                if not parent.requires_grad:
                    continue
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                self._accumulate(parent, grad[tuple(slicer)])
        elif op == "stack":
            axis = attrs["axis"]
            pieces = np.split(grad, len(parents), axis=axis)
            for parent, piece in zip(parents, pieces):
                if parent.requires_grad:
                    self._accumulate(parent, np.squeeze(piece, axis=axis))
        else:
            raise TraceUnsupported(f"no compiled backward for op {op!r}")

    def _emit_backward_matmul(self, node: TraceNode, grad: np.ndarray) -> None:
        pa, pb = node.parents
        values = self.program.values
        a_ndim, b_ndim = len(pa.shape), len(pb.shape)

        def fv(parent: TraceNode) -> Callable[[], np.ndarray]:
            return lambda values=values, i=parent.index: values[i]

        if a_ndim == 1 and b_ndim == 1:
            if pa.requires_grad:
                scratch = self._scratch(pb.shape, np.result_type(grad.dtype, pb.dtype))

                def step(dst=scratch, g=grad, b=fv(pb)) -> None:
                    np.multiply(g, b(), out=dst)

                self._emit(step)
                self._accumulate(pa, scratch)
            if pb.requires_grad:
                scratch = self._scratch(pa.shape, np.result_type(grad.dtype, pa.dtype))

                def step(dst=scratch, g=grad, a=fv(pa)) -> None:
                    np.multiply(g, a(), out=dst)

                self._emit(step)
                self._accumulate(pb, scratch)
            return
        if a_ndim == 1:
            grad2 = np.expand_dims(grad, axis=-2)
            swapped_b = tuple(pb.shape[:-2]) + (pb.shape[-1], pb.shape[-2])
            if pa.requires_grad:
                # Eager: (grad2 @ swapaxes(b, -1, -2)).reshape(-1, len_a).sum(axis=0)
                product = self._scratch(
                    _matmul_shape(grad2.shape, swapped_b), np.result_type(grad.dtype, pb.dtype)
                )

                def step(dst=product, g2=grad2, b=fv(pb)) -> None:
                    np.matmul(g2, np.swapaxes(b(), -1, -2), out=dst)

                self._emit(step)
                flat = self._reshape_fixed(
                    product, (int(np.prod(product.shape) // pa.shape[0]), pa.shape[0])
                )
                summed = self._scratch((pa.shape[0],), product.dtype)

                def step2(dst=summed, src=flat) -> None:
                    np.sum(src, axis=0, out=dst)

                self._emit(step2)
                self._accumulate(pa, summed)
            if pb.requires_grad:
                # Eager: _unbroadcast(swapaxes(a2, -1, -2) @ grad2, b.shape)
                product = self._scratch(
                    _matmul_shape((pa.shape[0], 1), grad2.shape), np.result_type(grad.dtype, pa.dtype)
                )

                def step(dst=product, g2=grad2, a=fv(pa)) -> None:
                    a2 = a().reshape(1, -1)
                    np.matmul(np.swapaxes(a2, -1, -2), g2, out=dst)

                self._emit(step)
                self._accumulate(pb, product)
            return
        if b_ndim == 1:
            grad2 = np.expand_dims(grad, axis=-1)
            if pa.requires_grad:
                # Eager: _unbroadcast(grad2 @ b2.T, a.shape)
                product = self._scratch(
                    _matmul_shape(grad2.shape, (1, pb.shape[0])), np.result_type(grad.dtype, pb.dtype)
                )

                def step(dst=product, g2=grad2, b=fv(pb)) -> None:
                    np.matmul(g2, b().reshape(-1, 1).T, out=dst)

                self._emit(step)
                self._accumulate(pa, product)
            if pb.requires_grad:
                dtype = np.result_type(grad.dtype, pa.dtype)
                if a_ndim > 2:
                    # Eager: (swapaxes(a, -1, -2) @ grad2).reshape(-1, len_b).sum(axis=0)
                    swapped_a = tuple(pa.shape[:-2]) + (pa.shape[-1], pa.shape[-2])
                    product = self._scratch(_matmul_shape(swapped_a, grad2.shape), dtype)

                    def step(dst=product, g2=grad2, a=fv(pa)) -> None:
                        np.matmul(np.swapaxes(a(), -1, -2), g2, out=dst)

                    self._emit(step)
                    flat = self._reshape_fixed(
                        product, (int(np.prod(product.shape) // pb.shape[0]), pb.shape[0])
                    )
                    summed = self._scratch((pb.shape[0],), dtype)

                    def step2(dst=summed, src=flat) -> None:
                        np.sum(src, axis=0, out=dst)

                    self._emit(step2)
                    self._accumulate(pb, summed)
                else:
                    # Eager: (a.T @ grad2).reshape(b.shape)
                    product = self._scratch(
                        _matmul_shape((pa.shape[1], pa.shape[0]), grad2.shape), dtype
                    )

                    def step(dst=product, g2=grad2, a=fv(pa)) -> None:
                        np.matmul(a().T, g2, out=dst)

                    self._emit(step)
                    self._accumulate(pb, self._reshape_fixed(product, pb.shape))
            return
        # General case: both operands >= 2-D.
        if pa.requires_grad:
            swapped_b = tuple(pb.shape[:-2]) + (pb.shape[-1], pb.shape[-2])
            product = self._scratch(
                _matmul_shape(grad.shape, swapped_b), np.result_type(grad.dtype, pb.dtype)
            )

            def step(dst=product, g=grad, b=fv(pb)) -> None:
                np.matmul(g, np.swapaxes(b(), -1, -2), out=dst)

            self._emit(step)
            self._accumulate(pa, self._unbroadcast_emit(product, pa.shape))
        if pb.requires_grad:
            swapped_a = tuple(pa.shape[:-2]) + (pa.shape[-1], pa.shape[-2])
            product = self._scratch(
                _matmul_shape(swapped_a, grad.shape), np.result_type(grad.dtype, pa.dtype)
            )

            def step(dst=product, g=grad, a=fv(pa)) -> None:
                np.matmul(np.swapaxes(a(), -1, -2), g, out=dst)

            self._emit(step)
            self._accumulate(pb, self._unbroadcast_emit(product, pb.shape))

    def _emit_backward_scatter(self, node: TraceNode, grad: np.ndarray) -> None:
        """getitem / gather_rows backward: zeroed full buffer + ``np.add.at``."""
        (parent,) = node.parents
        if not parent.requires_grad:
            return
        full = self._scratch(parent.shape, parent.dtype)
        if node.op == "gather_rows":
            indices = self._operand(node.attrs["indices"])
            width = parent.shape[-1]
            grad2 = self._reshape_fixed(grad, (int(np.prod(grad.shape) // width), width))

            def step(full=full, idx=indices, g2=grad2) -> None:
                np.copyto(full, 0.0)
                np.add.at(full, idx().reshape(-1), g2)

            self._emit(step)
        else:
            resolvers = _index_resolvers(node.attrs["index"], self._operand)

            def step(full=full, resolvers=resolvers, g=grad) -> None:
                np.copyto(full, 0.0)
                np.add.at(full, _resolve_index(resolvers), g)

            self._emit(step)
        self._accumulate(parent, full)


# ---------------------------------------------------------------------- #
# Index plumbing shared by getitem forward/backward
# ---------------------------------------------------------------------- #
def _index_has_arrays(index: object) -> bool:
    if isinstance(index, np.ndarray):
        return True
    if isinstance(index, tuple):
        return any(isinstance(part, np.ndarray) for part in index)
    return False


def _index_resolvers(index: object, operand) -> Tuple[bool, object]:
    """Precompile an index expression into per-call resolvable parts."""
    if isinstance(index, tuple):
        parts = tuple(
            operand(part) if isinstance(part, np.ndarray) else (lambda fixed=part: fixed)
            for part in index
        )
        return (True, parts)
    if isinstance(index, np.ndarray):
        return (False, operand(index))
    return (False, lambda fixed=index: fixed)


def _resolve_index(resolvers: Tuple[bool, object]):
    is_tuple, parts = resolvers
    if is_tuple:
        return tuple(part() for part in parts)
    return parts()


def build_program(
    recorder: TraceRecorder,
    output_tensors: Sequence[Tensor],
    params: Sequence[Tensor],
    loss_tensor: Optional[Tensor] = None,
) -> Program:
    """Compile ``recorder``'s tape into a program returning ``output_tensors``.

    When ``loss_tensor`` is given the program also contains the full backward
    pass from it, publishing parameter gradients as slab views.
    """
    unused = recorder.unused_inputs()
    if unused:
        raise TraceUnsupported(
            f"declared inputs {sorted(unused)} never reached the graph; "
            "their content would be baked in as constants"
        )
    return GraphBuilder(recorder, params).build(output_tensors, loss_tensor)
