"""Graph-captured tensor runtime: trace the tape once, replay a flat program.

The per-op closure autograd in :mod:`repro.nn.tensor` rebuilds its graph and
allocates fresh arrays on every training step.  This package removes that
steady-state cost Dr.Jit-style: one eager execution per (callable, input
signature) is recorded as a flat op tape, compiled into a program of numpy
kernels over preallocated buffers (in-place ``out=`` kernels, fused
element-wise chains, parameter-gradient slabs), and replayed for every
subsequent call — with results **bit-identical** to eager execution, enforced
by a bitwise verification replay at capture time and transparent eager
fallback on shape changes past the cache limit, unsupported ops, or
data-dependent values entering the tape.

Entry points: :meth:`repro.nn.module.Module.compile` for inference forwards,
:class:`CompiledTrainStep` for full forward+backward training steps, and
:func:`configure` / the ``REPRO_GRAPH`` environment variable to disable the
runtime globally.
"""

from repro.nn.graph.builder import build_program
from repro.nn.graph.compiled import CompiledModule, CompiledTrainStep, configure, is_enabled
from repro.nn.graph.program import Program
from repro.nn.graph.recorder import TraceRecorder, TraceUnsupported

__all__ = [
    "CompiledModule",
    "CompiledTrainStep",
    "Program",
    "TraceRecorder",
    "TraceUnsupported",
    "build_program",
    "configure",
    "is_enabled",
]
