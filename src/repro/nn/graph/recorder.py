"""Tape capture for the graph runtime: one eager run recorded as flat nodes.

A :class:`TraceRecorder` hooks into :mod:`repro.nn.tensor` (via
``set_trace_recorder``) and receives every tensor operation as it executes
eagerly.  The result is a list of :class:`TraceNode` records in execution
order — already a valid topological order of the dataflow graph — that the
builder compiles into a replayable :class:`~repro.nn.graph.program.Program`.

Leaves (tensors that enter the graph without being produced by a recorded op)
are classified at record time:

``param``
    A tensor that requires grad (module parameters).  Replay re-binds the
    slot from ``tensor.data`` on every call, so optimizer updates,
    ``load_state_dict`` and ``to_dtype`` are all picked up.
``input``
    An array the caller declared as varying per call (matched by the identity
    of the underlying buffer).  Replay fills these from the call arguments.
``const``
    Anything else — assumed call-invariant and captured by reference.
    Call sites that feed *content-derived* numpy values into the tape
    (attention mask fills, dropout masks) flag them via
    :func:`repro.nn.tensor.note_data_dependent`, which aborts the trace with
    :class:`TraceUnsupported` so the caller falls back to eager execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class TraceUnsupported(Exception):
    """Raised when a trace cannot be soundly captured; callers fall back to eager."""


class TraceNode:
    """One recorded tensor (leaf or op output) of a captured execution."""

    __slots__ = (
        "index",
        "op",
        "parents",
        "attrs",
        "shape",
        "dtype",
        "requires_grad",
        "kind",
        "input_name",
        "const_value",
        "tensor",
    )

    def __init__(
        self,
        index: int,
        op: Optional[str],
        parents: Tuple["TraceNode", ...],
        attrs: Optional[dict],
        tensor: Tensor,
        kind: str = "op",
    ) -> None:
        self.index = index
        self.op = op
        self.parents = parents
        self.attrs = attrs or {}
        self.shape = tensor.data.shape
        self.dtype = tensor.data.dtype
        self.requires_grad = tensor.requires_grad
        self.kind = kind  # "op" | "param" | "input" | "const"
        self.input_name: Optional[str] = None
        self.const_value: Optional[np.ndarray] = None
        # Strong reference: keeps ids stable for the duration of the trace and
        # lets the builder bind param slots to the live tensor object.
        self.tensor = tensor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceNode({self.index}, {self.kind}:{self.op}, shape={self.shape})"


class TraceRecorder:
    """Collects :class:`TraceNode` records while installed as the active trace.

    Parameters
    ----------
    inputs:
        Mapping of input name to the exact array object the traced callable
        will consume.  Arrays are matched by buffer identity, so the traced
        code must use these objects directly (the integration points
        canonicalize dtype/shape before declaring them).
    params:
        Tensors whose values persist across calls (module parameters).
    """

    def __init__(
        self,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        params: Optional[List[Tensor]] = None,
    ) -> None:
        self.nodes: List[TraceNode] = []
        self._by_tensor: Dict[int, TraceNode] = {}
        self._input_by_data: Dict[int, str] = {}
        self._inputs: Dict[str, np.ndarray] = dict(inputs or {})
        for name, array in self._inputs.items():
            self._input_by_data[id(array)] = name
        self._param_ids = {id(p) for p in (params or [])}
        self.used_inputs: set[str] = set()

    # ------------------------------------------------------------------ #
    # Hooks called from repro.nn.tensor
    # ------------------------------------------------------------------ #
    def record_op(
        self,
        op: Optional[str],
        parents: Tuple[Tensor, ...],
        out: Tensor,
        attrs: Optional[dict],
    ) -> None:
        if op is None:
            raise TraceUnsupported("tensor op executed without trace metadata")
        parent_nodes = tuple(self._node_for(parent) for parent in parents)
        node = TraceNode(len(self.nodes), op, parent_nodes, attrs, out)
        self.nodes.append(node)
        self._by_tensor[id(out)] = node
        if attrs:
            for value in attrs.values():
                self._classify_operand(value)

    def check_data_dependent(self, array: np.ndarray) -> None:
        raise TraceUnsupported(
            "forward pass feeds input-derived numpy data into the graph "
            "(mask, sampled noise, ...); this module cannot be captured"
        )

    # ------------------------------------------------------------------ #
    # Node lookup / leaf classification
    # ------------------------------------------------------------------ #
    def _node_for(self, tensor: Tensor) -> TraceNode:
        node = self._by_tensor.get(id(tensor))
        if node is not None:
            return node
        node = TraceNode(len(self.nodes), None, (), None, tensor, kind="const")
        if id(tensor) in self._param_ids or tensor.requires_grad:
            node.kind = "param"
        else:
            name = self._input_by_data.get(id(tensor.data))
            if name is not None:
                node.kind = "input"
                node.input_name = name
                self.used_inputs.add(name)
            else:
                node.const_value = tensor.data
        self.nodes.append(node)
        self._by_tensor[id(tensor)] = node
        return node

    def _classify_operand(self, value: object) -> None:
        """Mark inputs referenced through op attrs (e.g. gather indices) as used."""
        if isinstance(value, np.ndarray):
            name = self._input_by_data.get(id(value))
            if name is not None:
                self.used_inputs.add(name)
        elif isinstance(value, tuple):
            for item in value:
                self._classify_operand(item)

    def input_slot_name(self, array: np.ndarray) -> Optional[str]:
        """Name of the declared input backing ``array``, if any."""
        return self._input_by_data.get(id(array))

    def unused_inputs(self) -> set[str]:
        """Declared inputs the trace never consumed.

        A non-empty result means per-call data leaked into the program as a
        captured constant (e.g. the caller copied an input before use), so
        replay would be unsound; callers treat this as :class:`TraceUnsupported`.
        """
        return set(self._inputs) - self.used_inputs
