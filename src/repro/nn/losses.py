"""Loss functions for training the semantic codecs and selectors."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of identical shape."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    if prediction.shape != target.shape:
        raise ShapeError(f"shape mismatch {prediction.shape} vs {target.shape}")
    difference = prediction - target.detach()
    return (difference * difference).mean()


def cross_entropy_parts(
    targets: np.ndarray, ignore_index: Optional[int] = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-batch index/weight arrays of the cross-entropy gather.

    Returns ``(rows, safe_targets, weights)`` — the plain-numpy values
    :func:`cross_entropy_loss` derives from the integer targets.  Splitting
    them out lets the graph runtime declare them as per-call inputs of a
    compiled training step (they change with every batch) while the tensor
    arithmetic in :func:`cross_entropy_from_parts` is traced once.
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not np.any(keep):
            raise ValueError("all targets are ignore_index; loss undefined")
    else:
        keep = np.ones_like(flat_targets, dtype=bool)
    rows = np.arange(flat_targets.shape[0])
    safe_targets = np.where(keep, flat_targets, 0)
    weights = keep.astype(np.float64) / keep.sum()
    return rows, safe_targets, weights


def cross_entropy_from_parts(
    logits: Tensor,
    rows: np.ndarray,
    safe_targets: np.ndarray,
    weights: np.ndarray,
) -> Tensor:
    """Tensor half of the cross entropy, fed by :func:`cross_entropy_parts`.

    Identical op sequence (reshape → log-softmax → gather → weighted sum) to
    the historical inline implementation, so losses and gradients are
    bit-identical however the two halves are combined.
    """
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    log_probs = flat_logits.log_softmax(axis=-1)
    picked = log_probs[rows, safe_targets]
    return -(picked * Tensor(weights)).sum()


def cross_entropy_loss(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Cross entropy between ``logits`` and integer class ``targets``.

    ``logits`` is shaped ``(..., num_classes)`` and ``targets`` holds integer
    class indices of shape ``(...)``.  Positions equal to ``ignore_index`` are
    excluded from the average (used for padding tokens).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[:-1] != targets.shape:
        raise ShapeError(
            f"logits batch shape {logits.shape[:-1]} does not match targets shape {targets.shape}"
        )
    rows, safe_targets, weights = cross_entropy_parts(targets, ignore_index)
    return cross_entropy_from_parts(logits, rows, safe_targets, weights)


def nll_accuracy(logits: Tensor, targets: np.ndarray, ignore_index: Optional[int] = None) -> float:
    """Fraction of positions whose argmax matches the target (no gradient)."""
    targets = np.asarray(targets, dtype=np.int64)
    predictions = np.argmax(logits.data, axis=-1)
    if ignore_index is not None:
        keep = targets != ignore_index
        if not np.any(keep):
            return 0.0
        return float((predictions[keep] == targets[keep]).mean())
    return float((predictions == targets).mean())


def cosine_embedding_loss(prediction: Tensor, target: Tensor, eps: float = 1e-8) -> Tensor:
    """``1 - cos(prediction, target)`` averaged over the batch.

    Encourages the reconstructed semantic features to point in the same
    direction as the originals, which is the metric the semantic-similarity
    evaluation uses.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    dot = (prediction * target.detach()).sum(axis=-1)
    norm_p = ((prediction * prediction).sum(axis=-1) + eps) ** 0.5
    norm_t = ((target.detach() * target.detach()).sum(axis=-1) + eps) ** 0.5
    cosine = dot / (norm_p * norm_t)
    return (1.0 - cosine).mean()


def kl_divergence_loss(log_probs: Tensor, target_probs: np.ndarray, eps: float = 1e-12) -> Tensor:
    """KL(target || prediction) where ``log_probs`` are predicted log-probabilities."""
    target = np.clip(np.asarray(target_probs, dtype=np.float64), eps, 1.0)
    target_tensor = Tensor(target)
    return (target_tensor * (Tensor(np.log(target)) - log_probs)).sum(axis=-1).mean()
