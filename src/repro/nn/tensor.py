"""A small reverse-mode automatic-differentiation engine on numpy arrays.

The paper's knowledge bases (KB encoders/decoders) are deep-learning models.
PyTorch is not available in the offline environment, so this module provides
the minimal autograd machinery those models need: a :class:`Tensor` wrapping a
``numpy.ndarray`` that records the operations applied to it and can compute
gradients of a scalar loss with respect to every parameter by reverse-mode
differentiation.

Only the operations used by the semantic codecs are implemented (element-wise
arithmetic, matmul, reductions, indexing/embedding gather, common activations,
softmax/log-softmax, concatenation and stacking), which keeps the engine small
enough to read in one sitting while still training real encoder/decoder
networks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GradientError, ShapeError

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]

#: Dtypes a tensor may hold; anything else is converted to the default dtype.
_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

#: Dtype non-float input data is converted to (see :func:`set_default_dtype`).
_DEFAULT_DTYPE = np.dtype(np.float64)

#: Whether new operations record the autograd tape (see :class:`no_grad`).
_GRAD_ENABLED = True

#: Active graph-capture recorder (see :mod:`repro.nn.graph`).  When set, every
#: tensor operation additionally records ``(op, parents, output, attrs)`` so
#: the graph runtime can compile the tape into a replayable flat program.
_TRACE = None


def set_trace_recorder(recorder) -> object:
    """Install ``recorder`` as the active op-trace sink; returns the previous one.

    The recorder only needs two methods: ``record_op(op, parents, out, attrs)``
    called for every tensor operation, and ``check_data_dependent(array)``
    called for arrays flagged via :func:`note_data_dependent`.  Pass ``None``
    to stop tracing.
    """
    global _TRACE
    previous = _TRACE
    _TRACE = recorder
    return previous


def note_data_dependent(array: np.ndarray) -> np.ndarray:
    """Flag ``array`` as derived from input *content* (masks, sampled noise).

    Graph capture assumes arrays entering the tape from outside are
    call-invariant constants; call sites that compute per-call values with
    plain numpy (attention mask fills, dropout masks, pooling weights) flag
    them here so an active trace aborts and the caller transparently falls
    back to eager execution instead of replaying stale data.  A no-op when no
    trace is active.
    """
    if _TRACE is not None:
        _TRACE.check_data_dependent(array)
    return array


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


class no_grad:  # noqa: N801 - torch-style lowercase context manager
    """Context manager that disables autograd tape construction.

    Inside the block every :class:`Tensor` operation computes its value but
    records no parents and no backward closure, so inference passes pay no
    graph-building cost and retain no activation memory.  Re-entrant: nested
    blocks restore the previous state on exit.

    >>> with no_grad():
    ...     features = encoder(token_ids)   # no tape, not backpropagable
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def set_default_dtype(dtype: Union[str, np.dtype, type]) -> np.dtype:
    """Set the dtype non-float input data is converted to; returns the previous one.

    Only ``float32`` and ``float64`` are supported.  Float arrays passed to
    :class:`Tensor` keep their dtype either way — this governs conversions of
    ints, lists and python scalars.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {resolved}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload.  ``float32``/``float64`` arrays keep their dtype
        (which is how the opt-in float32 inference path propagates end to
        end); everything else is converted to the default dtype (``float64``
        unless changed via :func:`set_default_dtype`).  An explicit ``dtype``
        overrides both.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
        dtype: Optional[Union[str, np.dtype, type]] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            array = np.asarray(data, dtype=np.dtype(dtype))
        else:
            array = np.asarray(data)
            if array.dtype not in _FLOAT_DTYPES:
                array = array.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward = _backward
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Number of elements in the underlying array."""
        return int(self.data.size)

    def item(self) -> float:
        """Return the single scalar value stored in this tensor."""
        return float(self.data.reshape(-1)[0]) if self.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return (a reference to) the underlying numpy array."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype: Union[str, np.dtype, type]) -> "Tensor":
        """Return a detached copy cast to ``dtype`` (float32/float64)."""
        resolved = np.dtype(dtype)
        if resolved not in _FLOAT_DTYPES:
            raise ValueError(f"tensor dtype must be float32 or float64, got {resolved}")
        return Tensor(self.data.astype(resolved, copy=True), requires_grad=False)

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying array."""
        return self.data.dtype

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_tensor(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        if _TRACE is not None:
            _TRACE.record_op(op, parents, out, attrs)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            # Scalar fast path: no peer tensor, and numpy's weak scalar
            # promotion keeps a float32 chain float32.
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(grad)

            return self._make(self.data + other, (self,), backward_scalar, "add_scalar", {"scalar": other})
        other = self._as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(grad)

            return self._make(self.data - other, (self,), backward_scalar, "sub_scalar", {"scalar": other})
        return self + (-self._as_tensor(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(-grad)

            return self._make(other - self.data, (self,), backward_scalar, "rsub_scalar", {"scalar": other})
        return self._as_tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(grad * other)

            return self._make(self.data * other, (self,), backward_scalar, "mul_scalar", {"scalar": other})
        other = self._as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(grad / other)

            return self._make(self.data / other, (self,), backward_scalar, "div_scalar", {"scalar": other})
        other = self._as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, (int, float)):
            out_data = other / self.data

            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(-grad * out_data / self.data)

            return self._make(out_data, (self,), backward_scalar, "rdiv_scalar", {"scalar": other})
        return self._as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow", {"exponent": exponent})

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._as_tensor(other)
        if self.data.ndim < 1 or other.data.ndim < 1:
            raise ShapeError("matmul requires tensors with at least 1 dimension")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                a2 = a.reshape(1, -1)
                grad2 = np.expand_dims(grad, axis=-2)
                grad_a = (grad2 @ np.swapaxes(b, -1, -2)).reshape(-1, a.shape[0]).sum(axis=0)
                self._accumulate(grad_a)
                other._accumulate(_unbroadcast(np.swapaxes(a2, -1, -2) @ grad2, b.shape))
                return
            if b.ndim == 1:
                b2 = b.reshape(-1, 1)
                grad2 = np.expand_dims(grad, axis=-1)
                self._accumulate(_unbroadcast(grad2 @ b2.T, a.shape))
                other._accumulate((np.swapaxes(a, -1, -2) @ grad2).reshape(-1, b.shape[0]).sum(axis=0) if a.ndim > 2 else (a.T @ grad2).reshape(b.shape))
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------ #
    # Reductions and reshaping
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                if not keepdims:
                    for ax in sorted(a % self.data.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make(out_data, (self,), backward, "sum", {"axis": axis, "keepdims": keepdims})

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Return a tensor viewing the same data with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward, "reshape", {"shape": out_data.shape, "original_shape": original_shape})

    def transpose(self, *axes: int) -> "Tensor":
        """Permute dimensions; with no arguments reverses them."""
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        else:
            axes_tuple = tuple(axes)
        out_data = np.transpose(self.data, axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if axes_tuple is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(np.transpose(grad, inverse))

        return self._make(out_data, (self,), backward, "transpose", {"axes": axes_tuple})

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        """Transpose of a 2-D tensor."""
        return self.transpose()

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem", {"index": index})

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        """Element-wise rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "relu")

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        """Clamp values to ``[minimum, maximum]`` (gradient is 1 inside)."""
        mask = (self.data >= minimum) & (self.data <= maximum)
        out_data = np.clip(self.data, minimum, maximum)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "clip", {"minimum": minimum, "maximum": maximum})

    # ------------------------------------------------------------------ #
    # Softmax family
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward, "softmax", {"axis": axis})

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``.

        The forward pass takes a single exponential pass (over the shifted
        logits, for the log-sum term); the softmax needed by the backward pass
        is derived lazily as ``exp(out)`` only when gradients actually flow,
        so inference (``no_grad`` / ``eval()``) never pays for it.  Training
        results are bit-identical to the historical two-pass implementation
        because the backward term is the exact same ``np.exp(out_data)``.
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum

        def backward(grad: np.ndarray) -> None:
            softmax = np.exp(out_data)
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward, "log_softmax", {"axis": axis})

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = [Tensor._as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            offsets = np.cumsum([0] + sizes)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(tensors)
            out._backward = backward
        if _TRACE is not None:
            _TRACE.record_op("concatenate", tuple(tensors), out, {"axis": axis})
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new ``axis`` with gradient routing."""
        tensors = [Tensor._as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(tensors)
            out._backward = backward
        if _TRACE is not None:
            _TRACE.record_op("stack", tuple(tensors), out, {"axis": axis})
        return out

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self[indices]`` used for embedding tables.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (embedding_dim,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.data.shape[-1]))
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "gather_rows", {"indices": indices})

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1 and therefore requires ``self`` to be a scalar,
        matching the usual "call backward on the loss" workflow.
        """
        if not self.requires_grad:
            raise GradientError(
                "backward() called on a tensor that does not require grad "
                "(was the forward pass run under no_grad() or through a module "
                "in eval() mode? call .train() or compute outside no_grad() to "
                "build the tape)"
            )
        if grad is None:
            if self.size != 1:
                raise GradientError(
                    f"backward() without an explicit gradient requires a scalar, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        if id(parent) in seen_on_stack:
                            continue
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        order.append(current)

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(
    shape: Union[int, Tuple[int, ...]],
    requires_grad: bool = False,
    dtype: Optional[Union[str, np.dtype, type]] = None,
) -> Tensor:
    """A tensor of zeros with the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad, dtype=dtype)


def ones(
    shape: Union[int, Tuple[int, ...]],
    requires_grad: bool = False,
    dtype: Optional[Union[str, np.dtype, type]] = None,
) -> Tensor:
    """A tensor of ones with the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad, dtype=dtype)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Module-level alias of :meth:`Tensor.concatenate`."""
    return Tensor.concatenate(list(tensors), axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Module-level alias of :meth:`Tensor.stack`."""
    return Tensor.stack(list(tensors), axis=axis)
