"""Parameter initialization schemes for the neural substrate."""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng

ShapeLike = Union[int, Tuple[int, ...]]


def _as_shape(shape: ShapeLike) -> Tuple[int, ...]:
    return (shape,) if isinstance(shape, int) else tuple(shape)


def zeros(shape: ShapeLike) -> Tensor:
    """Zero-initialized trainable parameter."""
    return Tensor(np.zeros(_as_shape(shape)), requires_grad=True)


def ones(shape: ShapeLike) -> Tensor:
    """One-initialized trainable parameter."""
    return Tensor(np.ones(_as_shape(shape)), requires_grad=True)


def uniform(shape: ShapeLike, low: float = -0.1, high: float = 0.1, seed: SeedLike = None) -> Tensor:
    """Uniformly initialized trainable parameter in ``[low, high)``."""
    rng = new_rng(seed)
    return Tensor(rng.uniform(low, high, size=_as_shape(shape)), requires_grad=True)


def normal(shape: ShapeLike, mean: float = 0.0, std: float = 0.02, seed: SeedLike = None) -> Tensor:
    """Gaussian-initialized trainable parameter."""
    rng = new_rng(seed)
    return Tensor(rng.normal(mean, std, size=_as_shape(shape)), requires_grad=True)


def xavier_uniform(shape: ShapeLike, gain: float = 1.0, seed: SeedLike = None) -> Tensor:
    """Glorot/Xavier uniform initialization for weight matrices.

    Keeps the variance of activations roughly constant across layers, which
    matters for the deeper transformer-style codecs.
    """
    shape = _as_shape(shape)
    if len(shape) < 2:
        raise ValueError(f"xavier initialization requires >= 2 dimensions, got {shape}")
    fan_in, fan_out = shape[-2], shape[-1]
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    rng = new_rng(seed)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def kaiming_uniform(shape: ShapeLike, seed: SeedLike = None) -> Tensor:
    """He/Kaiming uniform initialization suited to ReLU networks."""
    shape = _as_shape(shape)
    if len(shape) < 2:
        raise ValueError(f"kaiming initialization requires >= 2 dimensions, got {shape}")
    fan_in = shape[-2]
    bound = math.sqrt(6.0 / fan_in)
    rng = new_rng(seed)
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)
