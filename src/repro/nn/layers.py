"""Core feed-forward layers used by the semantic encoders and decoders."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Tensor, note_data_dependent
from repro.utils.rng import SeedLike, new_rng, spawn_rng


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    seed:
        Seed controlling the Xavier initialization.
    dtype:
        Optional parameter dtype; ``"float32"`` opts the layer into the
        reduced-precision inference path (initial values are drawn in float64
        and then cast, so a float32 layer starts from the same weights as its
        float64 twin).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
        dtype: object = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), seed=seed)
        self.bias = init.zeros(out_features) if bias else None
        if dtype is not None:
            self.to_dtype(dtype)

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dimension {self.in_features}, got {inputs.shape[-1]}"
            )
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class Embedding(Module):
    """Token-id to dense-vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        seed: SeedLike = None,
        dtype: object = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = init.normal((num_embeddings, embedding_dim), std=0.05, seed=seed)
        if dtype is not None:
            self.to_dtype(dtype)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.num_embeddings):
            raise ShapeError(
                f"token ids must be in [0, {self.num_embeddings}), got range "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        return self.weight.gather_rows(token_ids)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = init.ones(dim)
        self.shift = init.zeros(dim)

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / ((variance + self.eps) ** 0.5)
        return normalized * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.1, seed: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = new_rng(seed)

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return inputs
        keep = 1.0 - self.rate
        # Freshly sampled per call: graph capture must not replay one mask.
        # Abort any active capture BEFORE touching the rng — a trace that dies
        # here is re-run eagerly, and that re-run must draw exactly the mask
        # an uncaptured call would have drawn (the stream must not shift).
        note_data_dependent(inputs.data)
        mask = self._rng.random(inputs.shape) < keep
        return inputs * Tensor((mask / keep).astype(inputs.data.dtype, copy=False))


class Sequential(Module):
    """Apply modules in order, feeding each output to the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._sequence: list[Module] = []
        for index, module in enumerate(modules):
            self._sequence.append(module)
            self._modules[str(index)] = module
            object.__setattr__(self, str(index), module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._sequence:
            output = module(output)
        return output

    def __len__(self) -> int:
        return len(self._sequence)

    def __getitem__(self, index: int) -> Module:
        return self._sequence[index]


class ReLU(Module):
    """Rectified linear activation as a module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Module):
    """Hyperbolic tangent activation as a module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation as a module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, inputs: Tensor) -> Tensor:
        cubic = inputs * inputs * inputs
        inner = (inputs + cubic * 0.044715) * 0.7978845608028654
        return inputs * 0.5 * (inner.tanh() + 1.0)


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden-layer stack.

    A convenience wrapper used throughout the semantic codecs for projection
    heads and classifier heads.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "relu",
        dropout: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        activations = {"relu": ReLU, "tanh": Tanh, "gelu": GELU, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(activations)}")
        rng = new_rng(seed)
        dims = [in_features, *hidden_features, out_features]
        seeds = spawn_rng(rng, max(len(dims) - 1, 1))
        modules: list[Module] = []
        for index, (dim_in, dim_out) in enumerate(zip(dims[:-1], dims[1:])):
            modules.append(Linear(dim_in, dim_out, seed=seeds[index]))
            if index < len(dims) - 2:
                modules.append(activations[activation]())
                if dropout > 0.0:
                    modules.append(Dropout(dropout, seed=seeds[index]))
        self.network = Sequential(*modules)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding added to token embeddings."""

    def __init__(self, dim: int, max_length: int = 512) -> None:
        super().__init__()
        if dim % 2 != 0:
            raise ValueError(f"positional encoding dimension must be even, got {dim}")
        position = np.arange(max_length)[:, None]
        div_term = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
        table = np.zeros((max_length, dim))
        table[:, 0::2] = np.sin(position * div_term)
        table[:, 1::2] = np.cos(position * div_term)
        self._table = table
        self.dim = dim
        self.max_length = max_length

    def _cast_extras(self, dtype: np.dtype) -> None:
        self._table = self._table.astype(dtype, copy=False)

    def forward(self, inputs: Tensor) -> Tensor:
        length = inputs.shape[-2]
        if length > self.max_length:
            raise ShapeError(f"sequence length {length} exceeds max_length {self.max_length}")
        table = self._table[:length]
        if table.dtype != inputs.data.dtype:
            # Keep the float32 path float32 even if to_dtype was not routed
            # through this module (e.g. a hand-assembled model).
            table = table.astype(inputs.data.dtype)
        return inputs + Tensor(table)
