"""Minimal deep-learning substrate (numpy autograd) for the semantic codecs.

PyTorch is not available in the offline reproduction environment, so this
package provides the pieces the paper's knowledge-base models need: a
reverse-mode autograd :class:`~repro.nn.tensor.Tensor`, layer primitives,
transformer blocks, recurrent cells, losses and optimizers.
"""

from repro.nn.attention import MultiHeadAttention, causal_mask, padding_mask, scaled_dot_product_attention
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    PositionalEncoding,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    cosine_embedding_loss,
    cross_entropy_from_parts,
    cross_entropy_loss,
    cross_entropy_parts,
    kl_divergence_loss,
    mse_loss,
    nll_accuracy,
)
from repro.nn.module import Module, ModuleList
from repro.nn.optim import SGD, Adam, LearningRateSchedule, Optimizer
from repro.nn.recurrent import GRU, GRUCell, RecurrentClassifier
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    note_data_dependent,
    ones,
    set_default_dtype,
    stack,
    zeros,
)
from repro.nn.transformer import FeedForward, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "no_grad",
    "is_grad_enabled",
    "note_data_dependent",
    "set_default_dtype",
    "stack",
    "zeros",
    "ones",
    "Module",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "MLP",
    "PositionalEncoding",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "causal_mask",
    "padding_mask",
    "GRU",
    "GRUCell",
    "RecurrentClassifier",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "FeedForward",
    "mse_loss",
    "cross_entropy_loss",
    "cross_entropy_parts",
    "cross_entropy_from_parts",
    "cosine_embedding_loss",
    "kl_divergence_loss",
    "nll_accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "LearningRateSchedule",
]
