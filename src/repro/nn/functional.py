"""Stateless numpy helpers shared by models and metrics (no autograd)."""

from __future__ import annotations

import numpy as np


def softmax(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a plain numpy array.

    One exponential pass: the shifted exponentials are normalized in place
    (bit-identical to the historical out-of-place divide, one fewer
    full-width temporary).
    """
    values = np.asarray(values, dtype=np.float64)
    shifted = values - values.max(axis=axis, keepdims=True)
    exps = np.exp(shifted, out=shifted)
    np.divide(exps, exps.sum(axis=axis, keepdims=True), out=exps)
    return exps


def log_softmax(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on a plain numpy array.

    A single pass of ``np.exp`` over the shifted logits feeds the log-sum
    term, and the final subtraction happens in place on the (owned) shifted
    array — same bits as the historical expression, two fewer full-width
    temporaries per call.
    """
    values = np.asarray(values, dtype=np.float64)
    shifted = values - values.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    np.subtract(shifted, log_sum, out=shifted)
    return shifted


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Logistic sigmoid on a plain numpy array."""
    return 1.0 / (1.0 + np.exp(-np.asarray(values, dtype=np.float64)))


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer ``indices`` into ``num_classes`` columns."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError(f"indices must be in [0, {num_classes})")
    encoded = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(encoded, indices[..., None], 1.0, axis=-1)
    return encoded


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity between two flattened vectors."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    denom = (np.linalg.norm(a) * np.linalg.norm(b)) + eps
    return float(a @ b / denom)


def pairwise_cosine_similarity(matrix_a: np.ndarray, matrix_b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise cosine similarity matrix between two 2-D arrays."""
    matrix_a = np.asarray(matrix_a, dtype=np.float64)
    matrix_b = np.asarray(matrix_b, dtype=np.float64)
    norms_a = np.linalg.norm(matrix_a, axis=1, keepdims=True) + eps
    norms_b = np.linalg.norm(matrix_b, axis=1, keepdims=True) + eps
    return (matrix_a / norms_a) @ (matrix_b / norms_b).T


def normalize(values: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize along ``axis``."""
    values = np.asarray(values, dtype=np.float64)
    norms = np.linalg.norm(values, axis=axis, keepdims=True) + eps
    return values / norms
