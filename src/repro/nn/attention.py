"""Scaled dot-product and multi-head attention for transformer codecs."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, note_data_dependent
from repro.utils.rng import SeedLike, new_rng, spawn_rng

_NEGATIVE_FILL = -1e9


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, np.ndarray]:
    """Compute attention ``softmax(QK^T / sqrt(d)) V``.

    Parameters
    ----------
    query, key, value:
        Tensors shaped ``(..., length, dim)``; the leading dimensions must be
        broadcast-compatible.
    mask:
        Optional boolean array broadcastable to ``(..., q_len, k_len)``;
        positions where the mask is ``False`` are excluded from attention.

    Returns
    -------
    (output, weights):
        ``output`` keeps the query shape; ``weights`` is the (detached)
        attention matrix useful for diagnostics.
    """
    dim = query.shape[-1]
    if key.shape[-1] != dim:
        raise ShapeError(f"query dim {dim} does not match key dim {key.shape[-1]}")
    scores = (query @ key.transpose(*range(key.ndim - 2), key.ndim - 1, key.ndim - 2)) * (
        1.0 / math.sqrt(dim)
    )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        # Build the additive fill in the scores' dtype so a float32 forward
        # pass is not silently promoted back to float64.  The fill depends on
        # the *content* of the mask, so graph capture must not bake it in as
        # a constant: flag it and let tracing fall back to eager.
        fill = np.where(mask, 0.0, _NEGATIVE_FILL).astype(scores.data.dtype, copy=False)
        scores = scores + Tensor(note_data_dependent(fill))
    weights = scores.softmax(axis=-1)
    output = weights @ value
    return output, weights.data.copy()


class MultiHeadAttention(Module):
    """Multi-head attention with learned projections.

    Operates on inputs shaped ``(batch, length, model_dim)``.
    """

    def __init__(
        self, model_dim: int, num_heads: int, seed: SeedLike = None, dtype: object = None
    ) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} must be divisible by num_heads {num_heads}")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        seeds = spawn_rng(new_rng(seed), 4)
        self.query_projection = Linear(model_dim, model_dim, seed=seeds[0])
        self.key_projection = Linear(model_dim, model_dim, seed=seeds[1])
        self.value_projection = Linear(model_dim, model_dim, seed=seeds[2])
        self.output_projection = Linear(model_dim, model_dim, seed=seeds[3])
        self.last_attention_weights: Optional[np.ndarray] = None
        if dtype is not None:
            self.to_dtype(dtype)

    def _split_heads(self, tensor: Tensor) -> Tensor:
        batch, length, _ = tensor.shape
        reshaped = tensor.reshape(batch, length, self.num_heads, self.head_dim)
        return reshaped.transpose(0, 2, 1, 3)

    def _merge_heads(self, tensor: Tensor) -> Tensor:
        batch, heads, length, head_dim = tensor.shape
        return tensor.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        if query.ndim != 3:
            raise ShapeError(f"expected (batch, length, dim) input, got shape {query.shape}")

        q = self._split_heads(self.query_projection(query))
        k = self._split_heads(self.key_projection(key))
        v = self._split_heads(self.value_projection(value))

        head_mask = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim == 2:
                head_mask = mask[:, None, None, :]
            elif mask.ndim == 3:
                head_mask = mask[:, None, :, :]
            else:
                head_mask = mask

        attended, weights = scaled_dot_product_attention(q, k, v, mask=head_mask)
        self.last_attention_weights = weights
        return self.output_projection(self._merge_heads(attended))


def causal_mask(length: int) -> np.ndarray:
    """Lower-triangular mask preventing attention to future positions."""
    return np.tril(np.ones((length, length), dtype=bool))


def padding_mask(token_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Boolean mask that is ``True`` for real tokens and ``False`` for padding."""
    return np.asarray(token_ids) != pad_id
