"""Metrics and reporting: fidelity, bandwidth, latency, cache, result tables."""

from repro.metrics.reporting import ResultTable, compare_column, merge_tables
from repro.metrics.semantic import (
    FidelitySummary,
    fidelity_by_domain,
    fidelity_over_time,
    summarize_fidelity,
)
from repro.metrics.system import (
    BandwidthSummary,
    LatencySummary,
    cache_summary,
    compression_ratio,
    summarize_bandwidth,
    summarize_latency,
)

__all__ = [
    "ResultTable",
    "merge_tables",
    "compare_column",
    "FidelitySummary",
    "summarize_fidelity",
    "fidelity_by_domain",
    "fidelity_over_time",
    "BandwidthSummary",
    "LatencySummary",
    "summarize_bandwidth",
    "summarize_latency",
    "cache_summary",
    "compression_ratio",
]
