"""Result tables: the uniform output format of every experiment and benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.utils.serialization import to_json_file


@dataclass
class ResultTable:
    """A named table of result rows (dictionaries sharing a column set).

    Experiments return these; benchmarks print them; EXPERIMENTS.md quotes
    them.  Columns are ordered by first appearance.
    """

    name: str
    description: str = ""
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row of named values."""
        self.rows.append(dict(values))

    def columns(self) -> List[str]:
        """Column names in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
                return f"{value:.3e}"
            return f"{value:.4f}"
        return str(value)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        columns = self.columns()
        if not columns:
            return f"## {self.name}\n\n(empty)\n"
        header = "| " + " | ".join(columns) + " |"
        separator = "| " + " | ".join("---" for _ in columns) + " |"
        body = [
            "| " + " | ".join(self._format_cell(row.get(column, "")) for column in columns) + " |"
            for row in self.rows
        ]
        title = f"## {self.name}\n\n" + (f"{self.description}\n\n" if self.description else "")
        return title + "\n".join([header, separator, *body]) + "\n"

    def to_text(self) -> str:
        """Render the table as aligned plain text for terminal output."""
        columns = self.columns()
        if not columns:
            return f"{self.name}: (empty)"
        formatted_rows = [[self._format_cell(row.get(column, "")) for column in columns] for row in self.rows]
        widths = [
            max(len(column), *(len(row[i]) for row in formatted_rows)) if formatted_rows else len(column)
            for i, column in enumerate(columns)
        ]
        lines = [self.name]
        if self.description:
            lines.append(self.description)
        lines.append("  ".join(column.ljust(width) for column, width in zip(columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in formatted_rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def save_json(self, path: str) -> None:
        """Persist the table (name, description, rows) as JSON."""
        to_json_file({"name": self.name, "description": self.description, "rows": self.rows}, path)


def merge_tables(name: str, tables: Iterable[ResultTable], description: str = "") -> ResultTable:
    """Concatenate the rows of several tables, tagging each row with its source."""
    merged = ResultTable(name=name, description=description)
    for table in tables:
        for row in table.rows:
            merged.add_row(source=table.name, **row)
    return merged


def compare_column(
    table: ResultTable,
    key_column: str,
    value_column: str,
    baseline_key: Any,
) -> Dict[Any, float]:
    """Ratio of ``value_column`` for each row against the row whose key equals ``baseline_key``.

    Convenience for "how many times better than the baseline" statements in
    EXPERIMENTS.md.
    """
    baseline_value: Optional[float] = None
    for row in table.rows:
        if row.get(key_column) == baseline_key:
            baseline_value = float(row[value_column])
            break
    if baseline_value is None:
        raise KeyError(f"no row with {key_column}={baseline_key!r}")
    ratios: Dict[Any, float] = {}
    for row in table.rows:
        value = float(row[value_column])
        ratios[row.get(key_column)] = value / baseline_value if baseline_value else float("inf")
    return ratios
