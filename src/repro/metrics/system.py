"""System-level metrics: bandwidth, latency and cache effectiveness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.caching.cache import SemanticModelCache
from repro.core.messages import DeliveryReport


@dataclass
class BandwidthSummary:
    """Bytes moved for payloads and synchronization over a set of deliveries."""

    deliveries: int
    total_payload_bytes: float
    mean_payload_bytes: float
    total_sync_bytes: float
    payload_bytes_per_delivery: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for result tables."""
        return {
            "deliveries": float(self.deliveries),
            "total_payload_bytes": self.total_payload_bytes,
            "mean_payload_bytes": self.mean_payload_bytes,
            "total_sync_bytes": self.total_sync_bytes,
            "payload_bytes_per_delivery": self.payload_bytes_per_delivery,
        }


def summarize_bandwidth(reports: Sequence[DeliveryReport]) -> BandwidthSummary:
    """Aggregate payload/synchronization bytes over deliveries."""
    if not reports:
        return BandwidthSummary(0, 0.0, 0.0, 0.0, 0.0)
    payload = [report.payload_bytes for report in reports]
    sync = [report.sync_bytes for report in reports]
    total_payload = float(np.sum(payload))
    total_sync = float(np.sum(sync))
    return BandwidthSummary(
        deliveries=len(reports),
        total_payload_bytes=total_payload,
        mean_payload_bytes=float(np.mean(payload)),
        total_sync_bytes=total_sync,
        payload_bytes_per_delivery=(total_payload + total_sync) / len(reports),
    )


@dataclass
class LatencySummary:
    """Latency statistics (seconds) over a set of deliveries."""

    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float
    mean_breakdown: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form for result tables."""
        flattened = {f"breakdown_{k}": v for k, v in self.mean_breakdown.items()}
        return {"mean_s": self.mean_s, "p50_s": self.p50_s, "p95_s": self.p95_s, "max_s": self.max_s, **flattened}


def summarize_latency(reports: Sequence[DeliveryReport]) -> LatencySummary:
    """Aggregate the latency breakdowns of deliveries."""
    if not reports:
        return LatencySummary(0.0, 0.0, 0.0, 0.0, {})
    totals = [report.latency.total_s for report in reports]
    keys = reports[0].latency.as_dict().keys()
    mean_breakdown = {
        key: float(np.mean([report.latency.as_dict()[key] for report in reports])) for key in keys
    }
    return LatencySummary(
        mean_s=float(np.mean(totals)),
        p50_s=float(np.percentile(totals, 50)),
        p95_s=float(np.percentile(totals, 95)),
        max_s=float(np.max(totals)),
        mean_breakdown=mean_breakdown,
    )


def cache_summary(cache: SemanticModelCache) -> Dict[str, float]:
    """Hit-ratio and occupancy summary of a semantic model cache."""
    statistics = cache.statistics
    return {
        "hits": float(statistics.hits),
        "misses": float(statistics.misses),
        "hit_ratio": statistics.hit_ratio,
        "evictions": float(statistics.evictions),
        "used_bytes": float(cache.used_bytes),
        "capacity_bytes": float(cache.capacity_bytes),
        "occupancy": cache.used_bytes / cache.capacity_bytes if cache.capacity_bytes else 0.0,
        "miss_cost_s": statistics.miss_cost_s,
    }


def compression_ratio(semantic_bytes: float, traditional_bytes: float) -> float:
    """How many times smaller the semantic payload is than the traditional one."""
    if semantic_bytes <= 0:
        return float("inf")
    return traditional_bytes / semantic_bytes
