"""Aggregate semantic-fidelity metrics over message deliveries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.messages import DeliveryReport


@dataclass
class FidelitySummary:
    """Average fidelity metrics over a batch of deliveries."""

    count: int
    token_accuracy: float
    bleu: float
    semantic_similarity: Optional[float]
    mismatch: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for result tables."""
        return {
            "count": float(self.count),
            "token_accuracy": self.token_accuracy,
            "bleu": self.bleu,
            "semantic_similarity": float("nan") if self.semantic_similarity is None else self.semantic_similarity,
            "mismatch": self.mismatch,
        }


def summarize_fidelity(reports: Sequence[DeliveryReport]) -> FidelitySummary:
    """Average the fidelity metrics carried by :class:`DeliveryReport` objects."""
    if not reports:
        return FidelitySummary(count=0, token_accuracy=0.0, bleu=0.0, semantic_similarity=None, mismatch=0.0)
    similarities = [r.semantic_similarity for r in reports if r.semantic_similarity is not None]
    return FidelitySummary(
        count=len(reports),
        token_accuracy=float(np.mean([r.token_accuracy for r in reports])),
        bleu=float(np.mean([r.bleu for r in reports])),
        semantic_similarity=float(np.mean(similarities)) if similarities else None,
        mismatch=float(np.mean([r.mismatch for r in reports])),
    )


def fidelity_by_domain(reports: Iterable[DeliveryReport]) -> Dict[str, FidelitySummary]:
    """Group deliveries by selected domain and summarize each group."""
    groups: Dict[str, List[DeliveryReport]] = {}
    for report in reports:
        groups.setdefault(report.selected_domain, []).append(report)
    return {domain: summarize_fidelity(group) for domain, group in groups.items()}


def fidelity_over_time(reports: Sequence[DeliveryReport], window: int = 10) -> List[float]:
    """Sliding-window mean token accuracy, showing learning effects over a session."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    accuracies = [report.token_accuracy for report in reports]
    smoothed: List[float] = []
    for index in range(len(accuracies)):
        start = max(0, index - window + 1)
        smoothed.append(float(np.mean(accuracies[start : index + 1])))
    return smoothed
