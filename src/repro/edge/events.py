"""A small discrete-event simulation engine.

The edge-computing experiments (E7, E8) need to account for queueing at edge
servers, link transfer times, and model-loading delays.  A discrete-event
engine keeps that accounting exact without real-time sleeping: events are
(time, action) pairs processed in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.exceptions import SimulationError

EventAction = Callable[["Simulation"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: EventAction = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


@dataclass
class EventRecord:
    """A processed event, kept for tracing and assertions in tests."""

    time: float
    label: str


class Simulation:
    """Event queue with a virtual clock.

    Actions scheduled with :meth:`schedule` receive the simulation instance
    and may schedule further events; :meth:`run` processes events until the
    queue is empty or a time/step limit is hit.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.processed: List[EventRecord] = []
        self._running = False

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(time=self.now + delay, sequence=next(self._sequence), action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: EventAction, label: str = "") -> _ScheduledEvent:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before current time {self.now}")
        return self.schedule(time - self.now, action, label=label)

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[EventRecord]:
        """Process the next event; returns its record or ``None`` when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue became unordered")
            self.now = event.time
            event.action(self)
            record = EventRecord(time=event.time, label=event.label)
            self.processed.append(record)
            return record
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number processed."""
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        count = 0
        try:
            while self._queue:
                if max_events is not None and count >= max_events:
                    break
                next_time = self._queue[0].time
                if until is not None and next_time > until:
                    self.now = until
                    break
                if self.step() is not None:
                    count += 1
        finally:
            self._running = False
        return count

    def pending(self) -> int:
        """Number of events still queued (including cancelled placeholders)."""
        return sum(1 for event in self._queue if not event.cancelled)
