"""Backward-compatible home of the discrete-event engine.

The engine moved to :mod:`repro.sim.engine` when the multi-cell request
simulator was built on top of it; this module re-exports it so existing
imports (``from repro.edge.events import Simulation``) keep working.
"""

from repro.sim.engine import EventAction, EventRecord, Simulation

__all__ = ["EventAction", "EventRecord", "Simulation"]
