"""Deprecated alias of :mod:`repro.sim.engine`.

The discrete-event engine moved to :mod:`repro.sim.engine` when the
multi-cell request simulator was built on top of it.  This module now only
exists so very old imports (``from repro.edge.events import Simulation``)
keep resolving; importing it warns, and in-repo code imports from
:mod:`repro.sim.engine` directly.
"""

import warnings

from repro.sim.engine import EventAction, EventRecord, Simulation

warnings.warn(
    "repro.edge.events is deprecated; import Simulation, EventRecord and "
    "EventAction from repro.sim.engine instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["EventAction", "EventRecord", "Simulation"]
