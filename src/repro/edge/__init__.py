"""Edge-computing substrate: event simulation, nodes, network, scheduling, offloading."""

from repro.edge.network import LinkSpec, NetworkTopology, build_linear_topology
from repro.edge.offloading import (
    AdaptiveOffloadingPolicy,
    AlwaysDevicePolicy,
    AlwaysEdgePolicy,
    OffloadingContext,
    OffloadingDecision,
    OffloadingPolicy,
    compare_policies,
    offloading_registry,
)
from repro.edge.resources import (
    ComputeResource,
    StorageResource,
    decode_flops,
    encode_flops,
    train_step_flops,
)
from repro.edge.scheduler import (
    ClusterScheduler,
    FastestFinishPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ScheduledTask,
    SchedulingPolicy,
    scheduler_registry,
)
from repro.edge.server import ComputeNode, EdgeCluster, EdgeServer, MobileDevice, TaskResult

# The event engine lives in repro.sim; re-exported here because the edge
# substrate (cluster scheduler, offloading) predates the move and external
# callers import it from either package.
from repro.sim.engine import EventRecord, Simulation

__all__ = [
    "Simulation",
    "EventRecord",
    "ComputeResource",
    "StorageResource",
    "encode_flops",
    "decode_flops",
    "train_step_flops",
    "LinkSpec",
    "NetworkTopology",
    "build_linear_topology",
    "EdgeServer",
    "MobileDevice",
    "ComputeNode",
    "EdgeCluster",
    "TaskResult",
    "ScheduledTask",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "FastestFinishPolicy",
    "ClusterScheduler",
    "scheduler_registry",
    "OffloadingContext",
    "OffloadingDecision",
    "OffloadingPolicy",
    "AlwaysDevicePolicy",
    "AlwaysEdgePolicy",
    "AdaptiveOffloadingPolicy",
    "compare_policies",
    "offloading_registry",
]
