"""Network topology and link model connecting devices and edge servers.

Links carry bytes with a bandwidth + propagation-delay cost model; the
topology is a :mod:`networkx` graph so multi-hop paths (device → base station
→ edge server → peer edge server) are routed with shortest-path latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link characteristics.

    Attributes
    ----------
    bandwidth_bps:
        Usable throughput in bits per second.
    propagation_delay_s:
        One-way propagation latency in seconds.
    """

    bandwidth_bps: float
    propagation_delay_s: float = 0.001

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be positive, got {self.bandwidth_bps}")
        if self.propagation_delay_s < 0:
            raise ValueError(f"propagation_delay_s must be non-negative, got {self.propagation_delay_s}")

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to push ``num_bytes`` through the link (store-and-forward)."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.propagation_delay_s + (num_bytes * 8.0) / self.bandwidth_bps


class NetworkTopology:
    """Undirected weighted graph of nodes (devices, base stations, edge servers)."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self.total_bytes_transferred: float = 0.0
        self.transfer_log: List[Tuple[str, str, float, float]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, kind: str = "node") -> None:
        """Add a node labelled with its ``kind`` (device / edge / cloud)."""
        self._graph.add_node(name, kind=kind)

    def add_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Connect two nodes with a :class:`LinkSpec` (adds nodes if missing)."""
        if a == b:
            raise SimulationError("self-links are not allowed")
        for node in (a, b):
            if node not in self._graph:
                self.add_node(node)
        self._graph.add_edge(a, b, spec=spec, latency=spec.propagation_delay_s)

    def nodes(self, kind: Optional[str] = None) -> List[str]:
        """All node names, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._graph.nodes)
        return [name for name, data in self._graph.nodes(data=True) if data.get("kind") == kind]

    def has_link(self, a: str, b: str) -> bool:
        """Whether a direct link exists between ``a`` and ``b``."""
        return self._graph.has_edge(a, b)

    def link(self, a: str, b: str) -> LinkSpec:
        """The :class:`LinkSpec` of the direct link between ``a`` and ``b``."""
        if not self._graph.has_edge(a, b):
            raise SimulationError(f"no link between {a!r} and {b!r}")
        return self._graph.edges[a, b]["spec"]

    # ------------------------------------------------------------------ #
    # Routing and transfers
    # ------------------------------------------------------------------ #
    def path(self, source: str, destination: str) -> List[str]:
        """Minimum-propagation-latency path between two nodes."""
        if source not in self._graph or destination not in self._graph:
            raise SimulationError(f"unknown node in path request {source!r} -> {destination!r}")
        try:
            return nx.shortest_path(self._graph, source, destination, weight="latency")
        except nx.NetworkXNoPath as error:
            raise SimulationError(f"no path from {source!r} to {destination!r}") from error

    def transfer_time(self, source: str, destination: str, num_bytes: float) -> float:
        """End-to-end time to move ``num_bytes`` from ``source`` to ``destination``.

        Uses store-and-forward over the minimum-latency path.  The transfer is
        recorded so experiments can total bytes moved across the network.
        """
        if source == destination:
            return 0.0
        hops = self.path(source, destination)
        total = 0.0
        for a, b in zip(hops[:-1], hops[1:]):
            total += self._graph.edges[a, b]["spec"].transfer_time(num_bytes)
        self.total_bytes_transferred += num_bytes
        self.transfer_log.append((source, destination, num_bytes, total))
        return total

    def reset_accounting(self) -> None:
        """Clear accumulated transfer statistics."""
        self.total_bytes_transferred = 0.0
        self.transfer_log.clear()


def build_linear_topology(
    num_edge_servers: int = 2,
    devices_per_server: int = 2,
    wireless_bandwidth_bps: float = 20e6,
    backhaul_bandwidth_bps: float = 1e9,
    wireless_delay_s: float = 0.005,
    backhaul_delay_s: float = 0.002,
) -> NetworkTopology:
    """Standard experiment topology: devices attach to edge servers connected by backhaul.

    ``edge_0 … edge_{n-1}`` form a chain over the backhaul; each edge server
    serves ``devices_per_server`` devices over a wireless link.
    """
    if num_edge_servers <= 0:
        raise ValueError("num_edge_servers must be positive")
    if devices_per_server < 0:
        raise ValueError("devices_per_server must be non-negative")
    topology = NetworkTopology()
    wireless = LinkSpec(bandwidth_bps=wireless_bandwidth_bps, propagation_delay_s=wireless_delay_s)
    backhaul = LinkSpec(bandwidth_bps=backhaul_bandwidth_bps, propagation_delay_s=backhaul_delay_s)
    for server_index in range(num_edge_servers):
        server_name = f"edge_{server_index}"
        topology.add_node(server_name, kind="edge")
        if server_index > 0:
            topology.add_link(f"edge_{server_index - 1}", server_name, backhaul)
        for device_index in range(devices_per_server):
            device_name = f"device_{server_index}_{device_index}"
            topology.add_node(device_name, kind="device")
            topology.add_link(device_name, server_name, wireless)
    return topology
