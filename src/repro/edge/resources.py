"""Compute and storage resource models for edge servers and mobile devices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exceptions import SchedulingError


@dataclass
class ComputeResource:
    """A processing resource measured in floating-point operations per second.

    The semantic encode/decode tasks carry FLOP estimates derived from their
    model sizes; dividing by ``flops_per_second`` gives the service time used
    by the discrete-event scheduler.
    """

    name: str
    flops_per_second: float
    utilization_window: float = 1.0
    busy_until: float = 0.0
    completed_tasks: int = 0
    busy_time: float = 0.0

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError(f"flops_per_second must be positive, got {self.flops_per_second}")

    def service_time(self, flops: float) -> float:
        """Time in seconds to execute ``flops`` operations."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return flops / self.flops_per_second

    def enqueue(self, now: float, flops: float) -> tuple[float, float]:
        """Reserve the resource for a task arriving at ``now``.

        Returns ``(start_time, finish_time)`` accounting for queueing behind
        earlier tasks (single-server FIFO discipline).
        """
        start = max(now, self.busy_until)
        duration = self.service_time(flops)
        finish = start + duration
        self.busy_until = finish
        self.completed_tasks += 1
        self.busy_time += duration
        return start, finish

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds the resource spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


@dataclass
class StorageResource:
    """Byte-budgeted storage tracking named allocations (cached models)."""

    name: str
    capacity_bytes: int
    _allocations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {self.capacity_bytes}")

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def can_fit(self, size_bytes: int) -> bool:
        """Whether an allocation of ``size_bytes`` would fit right now."""
        return size_bytes <= self.free_bytes

    def allocate(self, key: str, size_bytes: int) -> None:
        """Reserve ``size_bytes`` under ``key``; raises if it does not fit."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        if key in self._allocations:
            raise SchedulingError(f"allocation {key!r} already exists")
        if not self.can_fit(size_bytes):
            raise SchedulingError(
                f"storage {self.name!r} cannot fit {size_bytes} bytes (free={self.free_bytes})"
            )
        self._allocations[key] = size_bytes

    def release(self, key: str) -> int:
        """Free the allocation under ``key`` and return its size."""
        if key not in self._allocations:
            raise SchedulingError(f"allocation {key!r} does not exist")
        return self._allocations.pop(key)

    def holds(self, key: str) -> bool:
        """Whether an allocation named ``key`` exists."""
        return key in self._allocations

    def allocations(self) -> Dict[str, int]:
        """Copy of the current allocation map."""
        return dict(self._allocations)


#: Rough FLOPs required per model parameter for one forward pass of one token.
FLOPS_PER_PARAMETER_FORWARD = 2.0
#: Training (forward + backward) costs roughly 3x the forward pass.
FLOPS_PER_PARAMETER_TRAIN = 6.0


def encode_flops(num_parameters: int, num_tokens: int) -> float:
    """FLOPs to run a semantic encoder of ``num_parameters`` over ``num_tokens``."""
    return FLOPS_PER_PARAMETER_FORWARD * num_parameters * max(num_tokens, 1)


def decode_flops(num_parameters: int, num_tokens: int) -> float:
    """FLOPs to run a semantic decoder of ``num_parameters`` over ``num_tokens``."""
    return FLOPS_PER_PARAMETER_FORWARD * num_parameters * max(num_tokens, 1)


def train_step_flops(num_parameters: int, num_tokens: int) -> float:
    """FLOPs for one gradient step of a codec over ``num_tokens``."""
    return FLOPS_PER_PARAMETER_TRAIN * num_parameters * max(num_tokens, 1)
