"""Offloading decisions: run semantic encode/decode on the device or the edge?

Experiment E8 compares always-local, always-edge, and latency-aware adaptive
offloading.  The decision trades device compute time against the wireless
round trip needed to ship the raw message up and the features back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.edge.network import NetworkTopology
from repro.edge.resources import encode_flops
from repro.edge.server import EdgeServer, MobileDevice
from repro.utils.registry import Registry

offloading_registry: Registry["OffloadingPolicy"] = Registry("offloading-policy")


@dataclass
class OffloadingContext:
    """Everything a policy may inspect when deciding where to encode."""

    device: MobileDevice
    edge: EdgeServer
    topology: NetworkTopology
    message_bytes: int
    feature_bytes: int
    num_tokens: int
    encoder_parameters: int
    now: float = 0.0


@dataclass
class OffloadingDecision:
    """The outcome of an offloading decision with its predicted latency."""

    location: str  # "device" or "edge"
    predicted_latency_s: float
    device_latency_s: float
    edge_latency_s: float


class OffloadingPolicy:
    """Base class for offloading policies."""

    name = "base"

    def decide(self, context: OffloadingContext) -> OffloadingDecision:
        """Return where the encode step should run."""
        raise NotImplementedError

    @staticmethod
    def _device_latency(context: OffloadingContext) -> float:
        flops = encode_flops(context.encoder_parameters, context.num_tokens)
        compute = context.device.compute
        start = max(compute.busy_until, context.now)
        wait = start - context.now
        compute_time = compute.service_time(flops)
        # Features still have to reach the edge server for onward transmission.
        uplink = context.topology.transfer_time(context.device.name, context.edge.name, context.feature_bytes)
        return wait + compute_time + uplink

    @staticmethod
    def _edge_latency(context: OffloadingContext) -> float:
        flops = encode_flops(context.encoder_parameters, context.num_tokens)
        compute = context.edge.compute
        start = max(compute.busy_until, context.now)
        wait = start - context.now
        compute_time = compute.service_time(flops)
        # The raw message must be uploaded before the edge can encode it.
        uplink = context.topology.transfer_time(context.device.name, context.edge.name, context.message_bytes)
        return uplink + wait + compute_time


@offloading_registry.register("always-device")
class AlwaysDevicePolicy(OffloadingPolicy):
    """Never offload: encode on the device."""

    name = "always-device"

    def decide(self, context: OffloadingContext) -> OffloadingDecision:
        device_latency = self._device_latency(context)
        edge_latency = self._edge_latency(context)
        return OffloadingDecision("device", device_latency, device_latency, edge_latency)


@offloading_registry.register("always-edge")
class AlwaysEdgePolicy(OffloadingPolicy):
    """Always offload: encode on the edge server."""

    name = "always-edge"

    def decide(self, context: OffloadingContext) -> OffloadingDecision:
        device_latency = self._device_latency(context)
        edge_latency = self._edge_latency(context)
        return OffloadingDecision("edge", edge_latency, device_latency, edge_latency)


@offloading_registry.register("adaptive")
class AdaptiveOffloadingPolicy(OffloadingPolicy):
    """Pick whichever location has the lower predicted latency.

    ``edge_bias`` (0-1) discounts the predicted edge latency to reflect that
    edge execution also saves device battery; 0 means a pure latency race.
    """

    name = "adaptive"

    def __init__(self, edge_bias: float = 0.0) -> None:
        if not 0.0 <= edge_bias < 1.0:
            raise ValueError(f"edge_bias must be in [0, 1), got {edge_bias}")
        self.edge_bias = edge_bias

    def decide(self, context: OffloadingContext) -> OffloadingDecision:
        device_latency = self._device_latency(context)
        edge_latency = self._edge_latency(context)
        effective_edge = edge_latency * (1.0 - self.edge_bias)
        if effective_edge <= device_latency:
            return OffloadingDecision("edge", edge_latency, device_latency, edge_latency)
        return OffloadingDecision("device", device_latency, device_latency, edge_latency)


def compare_policies(
    context: OffloadingContext,
    policy_names: Optional[list[str]] = None,
) -> Dict[str, OffloadingDecision]:
    """Evaluate several offloading policies on the same context.

    Note that latency *prediction* does not mutate compute queues, so the
    comparison is apples-to-apples; actually executing the decision is the
    caller's job.
    """
    policy_names = policy_names or ["always-device", "always-edge", "adaptive"]
    return {name: offloading_registry.create(name).decide(context) for name in policy_names}
