"""Task scheduling across the compute nodes of an edge cluster."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.edge.server import ComputeNode, EdgeCluster, TaskResult
from repro.exceptions import SchedulingError
from repro.utils.registry import Registry

scheduler_registry: Registry["SchedulingPolicy"] = Registry("scheduling-policy")


@dataclass
class ScheduledTask:
    """A task to be placed on some node by a scheduling policy."""

    task_id: str
    flops: float
    arrival_time: float
    preferred_node: Optional[str] = None


class SchedulingPolicy:
    """Chooses which node runs each task."""

    name = "base"

    def select_node(self, task: ScheduledTask, candidates: Sequence[ComputeNode]) -> ComputeNode:
        """Return the node that should execute ``task``."""
        raise NotImplementedError


@scheduler_registry.register("round-robin")
class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through candidate nodes in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next_index = 0

    def select_node(self, task: ScheduledTask, candidates: Sequence[ComputeNode]) -> ComputeNode:
        if not candidates:
            raise SchedulingError("no candidate nodes to schedule on")
        node = candidates[self._next_index % len(candidates)]
        self._next_index += 1
        return node


@scheduler_registry.register("least-loaded")
class LeastLoadedPolicy(SchedulingPolicy):
    """Pick the node whose queue drains earliest (minimum ``busy_until``)."""

    name = "least-loaded"

    def select_node(self, task: ScheduledTask, candidates: Sequence[ComputeNode]) -> ComputeNode:
        if not candidates:
            raise SchedulingError("no candidate nodes to schedule on")
        return min(candidates, key=lambda node: max(node.compute.busy_until, task.arrival_time))


@scheduler_registry.register("fastest-finish")
class FastestFinishPolicy(SchedulingPolicy):
    """Pick the node that would finish the task earliest (queue + speed)."""

    name = "fastest-finish"

    def select_node(self, task: ScheduledTask, candidates: Sequence[ComputeNode]) -> ComputeNode:
        if not candidates:
            raise SchedulingError("no candidate nodes to schedule on")

        def finish_time(node: ComputeNode) -> float:
            start = max(node.compute.busy_until, task.arrival_time)
            return start + node.compute.service_time(task.flops)

        return min(candidates, key=finish_time)


class ClusterScheduler:
    """Places tasks on an :class:`EdgeCluster` according to a policy.

    The scheduler is failure-aware: nodes marked failed via
    :meth:`mark_failed` are excluded from every placement (including
    ``preferred_node`` pins — a dead preference falls through to the policy's
    choice among the survivors) until :meth:`mark_recovered` brings them back.
    """

    def __init__(self, cluster: EdgeCluster, policy: SchedulingPolicy | str = "fastest-finish") -> None:
        self.cluster = cluster
        self.policy = scheduler_registry.create(policy) if isinstance(policy, str) else policy
        self.results: List[TaskResult] = []
        self._failed: set = set()

    def mark_failed(self, name: str) -> None:
        """Exclude ``name`` from scheduling until :meth:`mark_recovered`."""
        self.cluster.node(name)  # validates the name
        self._failed.add(name)

    def mark_recovered(self, name: str) -> None:
        """Return a failed node to the candidate pool (no-op if not failed)."""
        self._failed.discard(name)

    def failed_nodes(self) -> List[str]:
        """Names of the nodes currently excluded from scheduling."""
        return sorted(self._failed)

    def submit(self, task: ScheduledTask, candidates: Optional[Sequence[str]] = None) -> TaskResult:
        """Schedule and execute ``task`` on one of the candidate nodes.

        ``candidates`` defaults to every server in the cluster; a task with a
        ``preferred_node`` that is among the (alive) candidates is pinned
        there.  Failed nodes are never chosen; if every candidate is failed a
        :class:`SchedulingError` is raised.
        """
        if candidates is None:
            candidate_nodes: List[ComputeNode] = list(self.cluster.servers.values())
        else:
            candidate_nodes = [self.cluster.node(name) for name in candidates]
        if not candidate_nodes:
            raise SchedulingError("no candidate nodes available")
        if self._failed:
            candidate_nodes = [node for node in candidate_nodes if node.name not in self._failed]
            if not candidate_nodes:
                raise SchedulingError("every candidate node is marked failed")
        if task.preferred_node is not None:
            for node in candidate_nodes:
                if node.name == task.preferred_node:
                    chosen = node
                    break
            else:
                chosen = self.policy.select_node(task, candidate_nodes)
        else:
            chosen = self.policy.select_node(task, candidate_nodes)
        result = chosen.execute(task.arrival_time, task.flops, task_id=task.task_id)
        self.results.append(result)
        return result

    def latency_summary(self) -> Dict[str, float]:
        """Mean/95th-percentile latency over all scheduled tasks."""
        if not self.results:
            return {"mean": 0.0, "p95": 0.0, "count": 0}
        latencies = sorted(result.total_latency for result in self.results)
        index_95 = min(len(latencies) - 1, int(round(0.95 * (len(latencies) - 1))))
        return {
            "mean": sum(latencies) / len(latencies),
            "p95": latencies[index_95],
            "count": len(latencies),
        }
