"""Edge server and mobile device models.

An :class:`EdgeServer` owns a compute resource, a storage resource (where the
semantic cache lives) and a task queue; a :class:`MobileDevice` is a much
weaker compute node attached to a serving edge server.  These are the physical
homes of the paper's KB-encoders/decoders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.edge.resources import ComputeResource, StorageResource
from repro.exceptions import SchedulingError


@dataclass
class TaskResult:
    """Timing of one task executed on a compute node."""

    task_id: str
    node: str
    arrival_time: float
    start_time: float
    finish_time: float
    flops: float

    @property
    def queueing_delay(self) -> float:
        """Seconds the task waited before starting."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Seconds the task spent executing."""
        return self.finish_time - self.start_time

    @property
    def total_latency(self) -> float:
        """Arrival-to-finish latency in seconds."""
        return self.finish_time - self.arrival_time


class ComputeNode:
    """Common behaviour of edge servers and devices: run FLOP-costed tasks."""

    def __init__(self, name: str, compute: ComputeResource, storage: StorageResource) -> None:
        self.name = name
        self.compute = compute
        self.storage = storage
        self.task_log: List[TaskResult] = []
        self._task_counter = 0

    def execute(self, now: float, flops: float, task_id: Optional[str] = None) -> TaskResult:
        """Run a task of ``flops`` operations arriving at time ``now``."""
        if task_id is None:
            self._task_counter += 1
            task_id = f"{self.name}-task-{self._task_counter}"
        start, finish = self.compute.enqueue(now, flops)
        result = TaskResult(
            task_id=task_id,
            node=self.name,
            arrival_time=now,
            start_time=start,
            finish_time=finish,
            flops=flops,
        )
        self.task_log.append(result)
        return result

    def mean_latency(self) -> float:
        """Average total latency over all executed tasks (0 when idle)."""
        if not self.task_log:
            return 0.0
        return sum(result.total_latency for result in self.task_log) / len(self.task_log)

    def reset_statistics(self) -> None:
        """Clear the task log and compute accounting."""
        self.task_log.clear()
        self.compute.busy_until = 0.0
        self.compute.busy_time = 0.0
        self.compute.completed_tasks = 0


class EdgeServer(ComputeNode):
    """An edge server hosting cached semantic models.

    Parameters
    ----------
    name:
        Node name matching its name in the :class:`~repro.edge.network.NetworkTopology`.
    flops_per_second:
        Compute capacity (default 200 GFLOP/s, a small edge GPU).
    storage_bytes:
        Cache storage capacity (default 8 GiB).
    """

    def __init__(
        self,
        name: str,
        flops_per_second: float = 200e9,
        storage_bytes: int = 8 * 1024**3,
    ) -> None:
        compute = ComputeResource(name=f"{name}-cpu", flops_per_second=flops_per_second)
        storage = StorageResource(name=f"{name}-storage", capacity_bytes=storage_bytes)
        super().__init__(name, compute, storage)
        self.attached_devices: List[str] = []
        #: Models resident in storage, keyed by model identifier.
        self.resident_models: Dict[str, int] = {}

    def attach_device(self, device_name: str) -> None:
        """Record that ``device_name`` is served by this edge server."""
        if device_name not in self.attached_devices:
            self.attached_devices.append(device_name)

    def load_model(self, model_id: str, size_bytes: int) -> None:
        """Place a model in storage (used by the semantic cache)."""
        if model_id in self.resident_models:
            return
        self.storage.allocate(model_id, size_bytes)
        self.resident_models[model_id] = size_bytes

    def evict_model(self, model_id: str) -> int:
        """Remove a model from storage and return its size."""
        if model_id not in self.resident_models:
            raise SchedulingError(f"model {model_id!r} is not resident on {self.name}")
        size = self.storage.release(model_id)
        del self.resident_models[model_id]
        return size

    def has_model(self, model_id: str) -> bool:
        """Whether ``model_id`` is resident in this server's storage."""
        return model_id in self.resident_models


class MobileDevice(ComputeNode):
    """A user-held device with limited compute and storage.

    Default capacity (5 GFLOP/s, 512 MiB available to the application) is
    roughly two orders of magnitude below the edge server, which is what makes
    offloading the encode/decode step attractive (experiment E8).
    """

    def __init__(
        self,
        name: str,
        flops_per_second: float = 5e9,
        storage_bytes: int = 512 * 1024**2,
        serving_edge: Optional[str] = None,
    ) -> None:
        compute = ComputeResource(name=f"{name}-cpu", flops_per_second=flops_per_second)
        storage = StorageResource(name=f"{name}-storage", capacity_bytes=storage_bytes)
        super().__init__(name, compute, storage)
        self.serving_edge = serving_edge


@dataclass
class EdgeCluster:
    """A named collection of edge servers and devices used by the experiments."""

    servers: Dict[str, EdgeServer] = field(default_factory=dict)
    devices: Dict[str, MobileDevice] = field(default_factory=dict)

    def add_server(self, server: EdgeServer) -> None:
        """Register an edge server."""
        self.servers[server.name] = server

    def add_device(self, device: MobileDevice) -> None:
        """Register a device and attach it to its serving edge server."""
        self.devices[device.name] = device
        if device.serving_edge and device.serving_edge in self.servers:
            self.servers[device.serving_edge].attach_device(device.name)

    def node(self, name: str) -> ComputeNode:
        """Look up a node (server or device) by name."""
        if name in self.servers:
            return self.servers[name]
        if name in self.devices:
            return self.devices[name]
        raise SchedulingError(f"unknown node {name!r}")
