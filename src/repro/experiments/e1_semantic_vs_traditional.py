"""E1 — Semantic vs traditional communication across channel conditions.

Paper claim (Section I): semantic communication departs from bit-by-bit
transmission by sending the meaning, which should (a) keep payloads compact
and (b) degrade gracefully as the channel worsens, while a conventional
source-coded bitstream falls apart once bit errors corrupt it.

The experiment sweeps the channel SNR and reports, for each SNR, payload size
and reconstruction fidelity of (i) the semantic codec with feature
quantization and (ii) a Huffman + Hamming(7,4) bit-level baseline, both over
the same AWGN channel and message set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.traditional import TraditionalCommunicationSystem
from repro.channel import PhysicalChannel, QuantizationSpec
from repro.core.pipeline import SemanticTransmissionPipeline
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, SemanticCodec
from repro.text import bleu_score, token_accuracy
from repro.text.tokenizer import simple_tokenize
from repro.utils.rng import new_rng
from repro.workloads import generate_all_corpora

DEFAULT_SNRS_DB: Sequence[float] = (-5.0, 0.0, 5.0, 10.0, 15.0)


def _train_codec(config: ExperimentConfig, sentences: Sequence[str]) -> SemanticCodec:
    codec_config = CodecConfig(
        architecture=config.codec_architecture,
        embedding_dim=24,
        feature_dim=4,
        hidden_dim=48,
        max_length=16,
        seed=config.seed,
    )
    codec = SemanticCodec.from_corpus(sentences, config=codec_config, domain="pooled")
    # Noise-aware training: the codec sees Gaussian feature perturbations that
    # stand in for quantization error and channel noise, which is what makes
    # semantic transmission degrade gracefully at low SNR.
    codec.train(list(sentences), epochs=max(25, config.train_epochs), noise_std=0.1, seed=config.seed)
    return codec


def _evaluate_semantic(
    codec: SemanticCodec,
    sentences: Sequence[str],
    snr_db: float,
    quantization_bits: int,
    seed: int,
    channel_code=None,
) -> dict:
    channel = PhysicalChannel(modulation="qpsk", snr_db=snr_db, seed=seed)
    pipeline = SemanticTransmissionPipeline(
        quantization=QuantizationSpec(bits_per_value=quantization_bits),
        channel=channel,
        channel_code=channel_code,
    )
    accuracies: List[float] = []
    bleus: List[float] = []
    payloads: List[float] = []
    for sentence in sentences:
        encoded = codec.encode_message(sentence)
        result = pipeline.transmit_features(encoded.features)
        restored = codec.decode_features(result.received_features)
        reference = simple_tokenize(sentence)
        hypothesis = simple_tokenize(restored)
        accuracies.append(token_accuracy(reference, hypothesis))
        bleus.append(bleu_score(reference, hypothesis))
        payloads.append(result.payload_bytes)
    return {
        "token_accuracy": float(np.mean(accuracies)),
        "bleu": float(np.mean(bleus)),
        "payload_bytes": float(np.mean(payloads)),
    }


def _evaluate_traditional(
    corpus: Sequence[str],
    sentences: Sequence[str],
    snr_db: float,
    seed: int,
) -> dict:
    channel = PhysicalChannel(modulation="qpsk", snr_db=snr_db, seed=seed)
    baseline = TraditionalCommunicationSystem(corpus, channel=channel)
    metrics = baseline.evaluate(list(sentences))
    return {
        "token_accuracy": metrics["token_accuracy"],
        "bleu": metrics["bleu"],
        "payload_bytes": metrics["mean_payload_bytes"],
    }


def _snr_rows(payload) -> list:
    """All three system rows of one SNR point — one unit of the E1 fan-out.

    Each worker builds its own seeded channels and the Huffman baseline from
    the shipped corpus, so the rows are identical no matter where they run.
    """
    codec, pooled, test_sentences, snr_db, quantization_bits, seed = payload
    from repro.channel import HammingCode

    semantic = _evaluate_semantic(codec, test_sentences, snr_db, quantization_bits, seed)
    semantic_fec = _evaluate_semantic(
        codec, test_sentences, snr_db, quantization_bits, seed, channel_code=HammingCode()
    )
    traditional = _evaluate_traditional(pooled, test_sentences, snr_db, seed)
    return [
        dict(snr_db=snr_db, system="semantic", payload_bytes=semantic["payload_bytes"],
             token_accuracy=semantic["token_accuracy"], bleu=semantic["bleu"]),
        dict(snr_db=snr_db, system="semantic+fec", payload_bytes=semantic_fec["payload_bytes"],
             token_accuracy=semantic_fec["token_accuracy"], bleu=semantic_fec["bleu"]),
        dict(snr_db=snr_db, system="traditional", payload_bytes=traditional["payload_bytes"],
             token_accuracy=traditional["token_accuracy"], bleu=traditional["bleu"]),
    ]


@register_experiment("e1")
def run(
    config: Optional[ExperimentConfig] = None,
    snrs_db: Sequence[float] = DEFAULT_SNRS_DB,
    num_test_sentences: int = 40,
    quantization_bits: int = 4,
) -> ResultTable:
    """Run E1 and return the SNR-sweep comparison table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    corpora = generate_all_corpora(config.scaled(config.sentences_per_domain), seed=config.seed)
    pooled = [sentence for corpus in corpora.values() for sentence in corpus.sentences]
    codec = _train_codec(config, pooled)

    test_count = config.scaled(num_test_sentences, minimum=8)
    test_indices = rng.choice(len(pooled), size=min(test_count, len(pooled)), replace=False)
    test_sentences = [pooled[int(i)] for i in test_indices]

    table = ResultTable(
        name="e1_semantic_vs_traditional",
        description=(
            "Information payload size and reconstruction fidelity over an AWGN channel (QPSK): "
            "semantic codec without FEC, semantic codec with Hamming(7,4) FEC, and the "
            "Huffman + Hamming(7,4) bit-level baseline."
        ),
    )
    payloads = [
        (codec, pooled, test_sentences, snr_db, quantization_bits, config.seed)
        for snr_db in snrs_db
    ]
    for rows in config.runner().map(_snr_rows, payloads):
        for row in rows:
            table.add_row(**row)
    return table
