"""E10 — Scenario stress: every cache policy under the adversarial catalog.

E7 compares eviction policies on a stationary trace through a healthy, warm
deployment; the paper's caching claims matter most precisely when those
assumptions break.  E10 replays the full scenario catalog
(:mod:`repro.scenarios.catalog` — flash crowds, cell outages, cache
cold-restarts, popularity flips, mobility storms, churn waves, link brownouts,
capacity crunches, plus the steady-state control) under each cache eviction
policy, through the fault-injecting multi-cell simulator.

Reported per (scenario x policy): end-to-end latency percentiles, drop and
failover counts, hit ratio and fetch mix — plus the per-phase breakdown, so a
policy's behaviour *during* the degraded window is visible separately from its
recovery.  Every (scenario, policy) pair replays the identical trace through
the identical deployment (the workload/deployment seeds exclude the policy),
so the comparison is paired, and the tables are byte-identical at any
``--jobs``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.scenarios.catalog import catalog
from repro.scenarios.runner import run_catalog
from repro.sim.backend import resolve_backend_name

#: The eviction policies every scenario is replayed under.
POLICIES: Sequence[str] = ("lru", "lfu", "semantic-popularity")


@register_experiment("e10")
def run(
    config: Optional[ExperimentConfig] = None,
    policies: Sequence[str] = POLICIES,
) -> Dict[str, ResultTable]:
    """Run E10 and return the stress summary plus the per-phase breakdown.

    ``config.scale`` multiplies the arrival rate of every scenario (the
    timeline — phase boundaries and fault times — never moves), so the default
    settings replay the whole catalog, about 464k requests, once per policy.
    """
    config = config or ExperimentConfig()
    resolved = resolve_backend_name(config.backend)
    suffix = "" if resolved == "serial" else f"_{resolved}"
    tables = run_catalog(
        list(catalog().values()),
        seed=config.seed,
        scale=config.scale,
        jobs=config.jobs,
        policies=list(policies),
        table_prefix="e10_scenario",
        backend=resolved,
        shards=config.shards,
        worker_timeout=config.worker_timeout,
    )
    stress = tables["summary"]
    stress.name = f"e10_scenario_stress{suffix}"
    stress.description = (
        "Every cache policy replaying the full stress-scenario catalog "
        f"(scale={config.scale}) through the fault-injecting multi-cell simulator: "
        "latency percentiles, drops, failovers and cache behaviour per "
        "(scenario, policy) row."
    )
    phases = tables["phases"]
    phases.name = f"e10_scenario_phases{suffix}"
    phases.description = (
        "Per-phase measurement windows of every E10 row: degraded and recovered "
        "regimes reported separately."
    )
    return {"stress": stress, "phases": phases}
