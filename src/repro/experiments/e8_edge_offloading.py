"""E8 — Edge offloading of the semantic encode/decode computation.

Paper claim (Sections I and III-C): semantic coding "requires a certain level
of computing power and storage capabilities", so edge computing should host it
for weak mobile devices, reducing processing latency.  The experiment places
the semantic encoder either on the device or on the edge server under three
offloading policies (always-device, always-edge, adaptive) across a sweep of
device compute capabilities, and reports the end-to-end latency decomposition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.edge import (
    EdgeServer,
    MobileDevice,
    OffloadingContext,
    build_linear_topology,
    encode_flops,
    offloading_registry,
)
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.utils.rng import new_rng
from repro.workloads import MessageGenerator, build_user_population


@register_experiment("e8")
def run(
    config: Optional[ExperimentConfig] = None,
    device_gflops: Sequence[float] = (1.0, 5.0, 20.0, 100.0),
    edge_gflops: float = 200.0,
    encoder_parameters: int = 4_000_000,
    num_messages: int = 80,
    feature_bytes: float = 48.0,
    raw_payload_bytes: float = 2048.0,
    policies: Sequence[str] = ("always-device", "always-edge", "adaptive"),
) -> ResultTable:
    """Run E8 and return the offloading-latency table.

    ``raw_payload_bytes`` models the raw multimodal payload (voice clip, scene
    update) that accompanies the text in the Metaverse scenario: offloading the
    encode step means that raw payload must be uploaded to the edge first,
    whereas local encoding only uploads the compact semantic features.
    """
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    users = build_user_population(2, seed=config.seed)
    generator = MessageGenerator(users, seed=config.seed + 1)
    messages = generator.generate("user_0", config.scaled(num_messages, minimum=20))
    arrival_gaps = rng.exponential(0.05, size=len(messages))

    table = ResultTable(
        name="e8_edge_offloading",
        description=(
            "Mean end-to-end encode latency (ms) per offloading policy across device compute "
            "capabilities; the adaptive policy should track the better of the two static choices."
        ),
    )

    for gflops in device_gflops:
        for policy_name in policies:
            topology = build_linear_topology(num_edge_servers=1, devices_per_server=1)
            device = MobileDevice("device_0_0", flops_per_second=gflops * 1e9, serving_edge="edge_0")
            edge = EdgeServer("edge_0", flops_per_second=edge_gflops * 1e9)
            policy = offloading_registry.create(policy_name)
            latencies: List[float] = []
            edge_choices = 0
            now = 0.0
            for message, gap in zip(messages, arrival_gaps):
                now += float(gap)
                message_bytes = len(message.text.encode("utf-8")) + raw_payload_bytes
                num_tokens = max(len(message.text.split()), 1)
                context = OffloadingContext(
                    device=device,
                    edge=edge,
                    topology=topology,
                    message_bytes=message_bytes,
                    feature_bytes=feature_bytes,
                    num_tokens=num_tokens,
                    encoder_parameters=encoder_parameters,
                    now=now,
                )
                decision = policy.decide(context)
                flops = encode_flops(encoder_parameters, num_tokens)
                if decision.location == "edge":
                    edge_choices += 1
                    edge.execute(now, flops)
                else:
                    device.execute(now, flops)
                latencies.append(decision.predicted_latency_s)
            table.add_row(
                device_gflops=gflops,
                policy=policy_name,
                mean_latency_ms=float(np.mean(latencies)) * 1000.0,
                p95_latency_ms=float(np.percentile(latencies, 95)) * 1000.0,
                edge_fraction=edge_choices / len(messages),
            )
    return table
