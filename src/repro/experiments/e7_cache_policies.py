"""E7 — Semantic model caching vs re-establishing knowledge bases on demand.

Paper claim (Sections I and II): "establishing knowledge bases for
domain-oriented communication can be time-consuming"; caching the
domain-specialized general models and the user-specific individual models at
the edge "has the potential to reduce the time and resources required to
establish individual KBs".

The experiment replays a Zipf-skewed model-request trace against a
byte-budgeted semantic model cache under several eviction policies and cache
sizes, and against the no-cache baseline, reporting hit ratio and the mean
KB-establishment delay each request experiences.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.no_cache import EstablishmentCostModel, NoCacheBaseline
from repro.caching import CacheEntry, SemanticModelCache, general_model_key, individual_model_key
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.utils.rng import new_rng
from repro.workloads import ZipfTraceGenerator


def _model_catalogue(num_domains: int, rng: np.random.Generator) -> Dict[str, Dict[str, float]]:
    """Synthetic per-domain model sizes (bytes) and establishment costs (seconds)."""
    catalogue: Dict[str, Dict[str, float]] = {}
    for index in range(num_domains):
        domain = f"domain_{index}"
        size_mb = float(rng.uniform(2.0, 12.0))
        catalogue[domain] = {
            "size_bytes": size_mb * 1024 * 1024,
            "fetch_seconds": float(rng.uniform(2.0, 8.0)),
        }
    return catalogue


def _replay(
    cache: SemanticModelCache,
    trace,
    catalogue: Dict[str, Dict[str, float]],
    individual_fraction: float,
    individual_size_bytes: float,
    rng: np.random.Generator,
) -> Dict[str, float]:
    """Replay the trace against ``cache`` and account establishment delay."""
    total_delay = 0.0
    for request in trace:
        now = request.timestamp
        is_individual = rng.random() < individual_fraction
        if is_individual:
            key = individual_model_key(request.user_id, request.domain)
            size = individual_size_bytes
            cost = catalogue[request.domain]["fetch_seconds"] * 0.25
            kind_kwargs = {"kind": "individual", "user_id": request.user_id}
        else:
            key = general_model_key(request.domain)
            size = catalogue[request.domain]["size_bytes"]
            cost = catalogue[request.domain]["fetch_seconds"]
            kind_kwargs = {"kind": "general", "user_id": None}

        def build() -> CacheEntry:
            return CacheEntry(
                key=key,
                domain=request.domain,
                size_bytes=int(size),
                build_cost_s=cost,
                payload=None,
                **kind_kwargs,
            )

        _, hit = cache.get_or_build(key, build, now=now)
        if not hit:
            total_delay += cost
    return {
        "hit_ratio": cache.statistics.hit_ratio,
        "mean_delay_s": total_delay / max(len(trace), 1),
        "evictions": float(cache.statistics.evictions),
    }


def _run_row(payload) -> Dict[str, float]:
    """One independent (cache size x policy) replay row.

    Module-level so the parallel runtime can dispatch it; the columnar trace
    pickles as three arrays, and the replay RNG is re-derived from the
    explicit seed, so every row is identical no matter which process runs it.
    """
    trace, catalogue, policy, cache_size_mb, individual_fraction, individual_size_bytes, seed = payload
    cache = SemanticModelCache(int(cache_size_mb * 1024 * 1024), policy=policy)
    replay_rng = new_rng(seed + 7)
    metrics = _replay(cache, trace, catalogue, individual_fraction, individual_size_bytes, replay_rng)
    return dict(
        policy=policy,
        cache_size_mb=float(cache_size_mb),
        hit_ratio=metrics["hit_ratio"],
        mean_delay_s=metrics["mean_delay_s"],
        evictions=metrics["evictions"],
    )


@register_experiment("e7")
def run(
    config: Optional[ExperimentConfig] = None,
    num_domains: int = 10,
    num_requests: int = 2000,
    zipf_exponent: float = 1.0,
    cache_sizes_mb: Sequence[float] = (16, 32, 64, 96),
    policies: Sequence[str] = ("fifo", "lru", "lfu", "size-aware", "semantic-popularity"),
    individual_fraction: float = 0.3,
) -> ResultTable:
    """Run E7 and return the cache-size x policy sweep table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    catalogue = _model_catalogue(num_domains, rng)
    generator = ZipfTraceGenerator(
        list(catalogue),
        num_users=20,
        exponent=zipf_exponent,
        arrival_rate=2.0,
        seed=config.seed,
    )
    trace = generator.generate(config.scaled(num_requests, minimum=200))
    individual_size_bytes = 2.0 * 1024 * 1024

    table = ResultTable(
        name="e7_cache_policies",
        description=(
            "Hit ratio and mean KB-establishment delay per request for a Zipf-skewed model-request "
            "trace, across cache sizes and eviction policies, against the no-cache baseline."
        ),
    )

    # No-cache baseline (single resident slot, every switch re-establishes).
    baseline = NoCacheBaseline(EstablishmentCostModel(fetch_seconds=float(np.mean([c["fetch_seconds"] for c in catalogue.values()]))))
    baseline_result = baseline.serve(trace)
    table.add_row(
        policy="no-cache",
        cache_size_mb=0.0,
        hit_ratio=1.0 - baseline_result.establishment_rate,
        mean_delay_s=baseline_result.mean_delay_seconds,
        evictions=float("nan"),
    )

    payloads = [
        (trace, catalogue, policy, size_mb, individual_fraction, individual_size_bytes, config.seed)
        for size_mb in cache_sizes_mb
        for policy in policies
    ]
    for row in config.runner().map(_run_row, payloads):
        table.add_row(**row)
    return table
