"""E9 — Multi-cell scale: event-driven replay of high-volume request traces.

The paper argues the semantic-model cache belongs at the edge because that is
where "heavy traffic" of user requests lands (Sections I and III).  This
experiment stresses that claim at scale: a deployment of several cells (edge
server + semantic model cache + batch queue each, joined by a backhaul ring
with a WAN fallback to the cloud) replays Poisson and diurnal arrival traces
of tens of thousands of requests through the discrete-event engine, with user
mobility/handover and cooperative cache fetches between cells.

Reported per (arrival profile x batching policy): p50/p95/p99 end-to-end
latency, throughput, aggregate and per-cell cache hit ratios, and the compute
seconds spent — quantifying how much request batching and cooperative caching
buy under load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.runtime import ParallelRunner
from repro.sim.backend import SimBackend, create_backend, resolve_backend_name
from repro.sim.batching import BatchingConfig
from repro.sim.multicell import CellConfig, default_catalogue
from repro.sim.simulator import SimulatorConfig
from repro.workloads.generator import ArrivalTraceGenerator

#: The two batching policies every profile is replayed under.
BATCHING_POLICIES: Dict[str, BatchingConfig] = {
    "unbatched": BatchingConfig(max_batch_size=1, max_wait_s=0.0, amortization=1.0),
    "batch-8": BatchingConfig(max_batch_size=8, max_wait_s=0.005, amortization=0.4),
}


def _build_simulator(
    num_cells: int,
    domain_names: Sequence[str],
    batching: BatchingConfig,
    seed: int,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
) -> SimBackend:
    cells = [CellConfig(name=f"cell_{index}") for index in range(num_cells)]
    catalogue = default_catalogue(domain_names, seed=seed)
    # Reports are built from incremental counters, so the per-request objects
    # need not be retained — memory stays flat at --scale 10 and beyond.
    config = SimulatorConfig(batching=batching, retain_requests=False)
    return create_backend(backend, cells, catalogue, config=config, seed=seed, shards=shards)


def _run_row(payload: Dict[str, object]) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """One independent (profile x batching) simulation row.

    Module-level and fully determined by the payload's explicit seed, so the
    parallel runtime can dispatch it to any worker process: the trace is
    generated *inside* the row (never pickled), and the returned plain dicts
    are what the tables record.
    """
    profile = str(payload["profile"])
    policy_name = str(payload["policy"])
    seed = int(payload["seed"])
    requests_per_row = int(payload["requests_per_row"])
    arrival_rate = float(payload["arrival_rate"])
    domain_names = list(payload["domain_names"])
    generator = ArrivalTraceGenerator(
        domain_names,
        num_users=int(payload["num_users"]),
        zipf_exponent=float(payload["zipf_exponent"]),
        profile=profile,
        rate=arrival_rate if profile == "poisson" else 0.5 * arrival_rate,
        peak_rate=None if profile == "poisson" else 1.5 * arrival_rate,
        period_s=max(requests_per_row / arrival_rate, 1.0),
        seed=seed,
    )
    trace = generator.generate(requests_per_row)
    shards = payload.get("shards")
    simulator = _build_simulator(
        int(payload["num_cells"]),
        domain_names,
        BATCHING_POLICIES[policy_name],
        seed=seed,
        backend=str(payload.get("backend") or "serial"),
        shards=None if shards is None else int(shards),
    )
    report = simulator.replay(trace)
    latency = report.latency
    scale_row: Dict[str, object] = dict(
        profile=profile,
        batching=policy_name,
        completed=report.completed,
        requests_per_sec=report.requests_per_sec,
        p50_ms=latency["p50_s"] * 1000.0,
        p95_ms=latency["p95_s"] * 1000.0,
        p99_ms=latency["p99_s"] * 1000.0,
        mean_ms=latency["mean_s"] * 1000.0,
        hit_ratio=report.hit_ratio,
        mean_batch_size=report.mean_batch_size,
        compute_busy_s=report.total_compute_busy_s,
        backhaul_mb=report.backhaul_bytes / 1024**2,
        cloud_mb=report.cloud_bytes / 1024**2,
    )
    per_cell_rows: List[Dict[str, object]] = [
        dict(
            profile=profile,
            batching=policy_name,
            cell=cell_name,
            completed=stats.completed,
            hit_ratio=stats.hit_ratio,
            neighbor_fetches=stats.neighbor_fetches,
            cloud_fetches=stats.cloud_fetches,
            coalesced=stats.coalesced,
            handovers_in=stats.handovers_in,
            mean_batch_size=stats.mean_batch_size,
        )
        for cell_name, stats in sorted(report.cells.items())
    ]
    return scale_row, per_cell_rows


@register_experiment("e9")
def run(
    config: Optional[ExperimentConfig] = None,
    num_cells: int = 4,
    num_domains: int = 12,
    num_users: int = 500,
    num_requests: int = 50_000,
    arrival_rate: float = 5000.0,
    zipf_exponent: float = 0.9,
    profiles: Sequence[str] = ("poisson", "diurnal"),
) -> Dict[str, ResultTable]:
    """Run E9 and return the scale table plus the per-cell breakdown.

    ``num_requests`` is per (profile, batching) row, so the default settings
    replay ``4 * 50k = 200k`` requests through the event engine in one
    process.  The diurnal profile oscillates between ``0.5x`` and ``1.5x``
    the nominal arrival rate over one compressed "day", so its rush hour
    transiently overloads the unbatched deployment — which is exactly where
    amortized batching pays off.
    """
    config = config or ExperimentConfig()
    requests_per_row = config.scaled(num_requests, minimum=1000)
    domain_names = [f"domain_{index}" for index in range(num_domains)]
    # Non-serial backends publish under suffixed table names so their goldens
    # never collide with the serial bit-identity reference tables.
    resolved = resolve_backend_name(config.backend)
    suffix = "" if resolved == "serial" else f"_{resolved}"

    scale_table = ResultTable(
        name=f"e9_multicell_scale{suffix}",
        description=(
            "End-to-end latency percentiles, throughput and cache behaviour of a "
            f"{num_cells}-cell edge deployment replaying {requests_per_row} requests per row "
            "through the discrete-event engine, per arrival profile and batching policy."
        ),
    )
    per_cell_table = ResultTable(
        name=f"e9_multicell_per_cell{suffix}",
        description="Per-cell hit ratio, fetch mix and handover counts for every E9 row.",
    )

    payloads = [
        {
            "profile": profile,
            "policy": policy_name,
            "seed": config.seed,
            "requests_per_row": requests_per_row,
            "arrival_rate": arrival_rate,
            "domain_names": domain_names,
            "num_users": num_users,
            "zipf_exponent": zipf_exponent,
            "num_cells": num_cells,
            "backend": resolved,
            "shards": config.shards,
        }
        for profile in profiles
        for policy_name in BATCHING_POLICIES
    ]
    # Each row is an independent, seed-determined work unit; the runner merges
    # results in submission order, so the tables are identical for any --jobs.
    # Backends that parallelize internally (sharded) run the rows sequentially:
    # their own workers are the parallelism, and worker pools must not nest.
    runner = config.runner() if resolved == "serial" else ParallelRunner(jobs=1)
    for scale_row, per_cell_rows in runner.map(_run_row, payloads):
        scale_table.add_row(**scale_row)
        for row in per_cell_rows:
            per_cell_table.add_row(**row)
    return {"scale": scale_table, "per_cell": per_cell_table}
