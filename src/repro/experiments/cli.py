"""Command-line front end for the experiment registry.

Installed as the ``repro-experiment`` console script::

    repro-experiment --list
    repro-experiment e9 --scale 0.2
    repro-experiment e7 --seed 3 --output-dir results/

Runs one experiment by registry name, prints every result table, and
optionally persists them as JSON.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.harness import (
    ExperimentConfig,
    available_experiments,
    run_experiment,
    tables_of,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-experiment`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run one of the paper-reproduction experiments by name.",
    )
    parser.add_argument("name", nargs="?", help="experiment name, e.g. e1 .. e9 or fig1")
    parser.add_argument("--list", action="store_true", help="list registered experiments and exit")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor (default 1.0)")
    parser.add_argument(
        "--sentences-per-domain", type=int, default=120, help="corpus size per domain (default 120)"
    )
    parser.add_argument("--train-epochs", type=int, default=15, help="codec training epochs (default 15)")
    parser.add_argument("--output-dir", default=None, help="directory to persist result tables as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # Importing the package registers every experiment.
    import repro.experiments  # noqa: F401

    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if args.name is None:
        parser.error("an experiment name is required (or use --list)")
    if args.name not in available_experiments():
        parser.error(f"unknown experiment {args.name!r}; use --list to see the registry")

    config = ExperimentConfig(
        seed=args.seed,
        scale=args.scale,
        sentences_per_domain=args.sentences_per_domain,
        train_epochs=args.train_epochs,
        output_dir=args.output_dir,
    )
    output = run_experiment(args.name, config)
    for table in tables_of(output):
        print(table.to_text())
        print()
    if args.output_dir:
        print(f"tables saved under {args.output_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
