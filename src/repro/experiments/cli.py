"""Command-line front end for the experiment registry.

Installed as the ``repro-experiment`` console script::

    repro-experiment --list
    repro-experiment e9 --scale 0.2
    repro-experiment e9 --jobs 4 --scale 10
    repro-experiment e7 --seed 3 --output-dir results/
    repro-experiment all --jobs 4

Runs one experiment by registry name (or ``all`` for the whole suite in
registry order), prints every result table, and optionally persists them as
JSON.  ``--jobs N`` fans each experiment's independent work units across a
process pool; results are bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.experiments.harness import (
    ExperimentConfig,
    available_experiments,
    run_experiment,
    tables_of,
)
from repro.sim.backend import BACKEND_ENV, available_backends
from repro.sim.placement import PLACEMENT_POLICY_NAMES, PlacementSpec

#: Pseudo-name running every registered experiment in registry order.
ALL = "all"


def add_shared_arguments(
    parser: argparse.ArgumentParser,
    scale_help: str = "workload scale factor (default 1.0)",
    jobs_help: str = (
        "worker processes for independent work units; 0 = all cores; "
        "results are bit-identical to --jobs 1 (default 1)"
    ),
) -> argparse._ArgumentGroup:
    """The flag set every repro console script shares, as one argument group.

    ``repro-experiment`` and ``repro-scenario`` both accept ``--seed``,
    ``--scale``, ``--jobs``, ``--backend``, ``--shards`` and
    ``--worker-timeout`` with identical semantics; defining them here keeps
    the commands drift-free.  ``--backend`` defaults to ``None`` so the
    ``REPRO_BACKEND`` environment variable is honoured (explicit flag >
    environment > serial); validation beyond simple types is the caller's job
    via :func:`validate_shared_arguments`.
    """
    group = parser.add_argument_group("shared options")
    group.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    group.add_argument("--scale", type=float, default=1.0, help=scale_help)
    group.add_argument("--jobs", type=int, default=1, help=jobs_help)
    group.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="simulator backend; default honours the "
        f"{BACKEND_ENV} environment variable, then 'serial'",
    )
    group.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker shards for backends that partition one replay "
        "(sharded backend default: 2)",
    )
    group.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="seconds a sharded-backend worker may stay silent before the "
        "replay aborts with a diagnosis instead of hanging (default: wait "
        "forever); ignored by the serial backend",
    )
    group.add_argument(
        "--placement",
        choices=PLACEMENT_POLICY_NAMES,
        default=None,
        help="global request-placement policy applied to every replay "
        "(default: none; see docs/scheduling.md)",
    )
    group.add_argument(
        "--prewarm",
        action="store_true",
        help="pre-load each cell's cache from the offline cache-placement "
        "optimizer before the replay (implies --placement naive when no "
        "policy is given)",
    )
    return group


def placement_from_args(args: argparse.Namespace) -> Optional[dict]:
    """The shared ``--placement``/``--prewarm`` flags as a PlacementSpec payload."""
    if args.placement is None and not args.prewarm:
        return None
    return PlacementSpec(
        policy=args.placement or "naive", prewarm=bool(args.prewarm)
    ).to_dict()


def validate_shared_arguments(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject out-of-range shared-flag values with a uniform parser error."""
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    if args.scale <= 0:
        parser.error(f"--scale must be positive, got {args.scale}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.worker_timeout is not None and args.worker_timeout <= 0:
        parser.error(f"--worker-timeout must be positive, got {args.worker_timeout}")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-experiment`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run one of the paper-reproduction experiments by name.",
    )
    parser.add_argument("name", nargs="?", help="experiment name, e.g. e1 .. e9 or fig1, or 'all'")
    parser.add_argument("--list", action="store_true", help="list registered experiments and exit")
    parser.add_argument(
        "--sentences-per-domain", type=int, default=120, help="corpus size per domain (default 120)"
    )
    parser.add_argument("--train-epochs", type=int, default=15, help="codec training epochs (default 15)")
    parser.add_argument("--output-dir", default=None, help="directory to persist result tables as JSON")
    add_shared_arguments(
        parser,
        jobs_help="worker processes for each experiment's independent work units; "
        "0 = all cores; results are bit-identical to --jobs 1 (default 1)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # Importing the package registers every experiment.
    import repro.experiments  # noqa: F401

    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if args.name is None:
        parser.error("an experiment name is required (or use --list)")
    if args.name != ALL and args.name not in available_experiments():
        parser.error(f"unknown experiment {args.name!r}; use --list to see the registry")
    validate_shared_arguments(parser, args)

    config = ExperimentConfig(
        seed=args.seed,
        scale=args.scale,
        sentences_per_domain=args.sentences_per_domain,
        train_epochs=args.train_epochs,
        output_dir=args.output_dir,
        jobs=args.jobs,
        backend=args.backend,
        shards=args.shards,
        worker_timeout=args.worker_timeout,
        placement=args.placement,
        prewarm=args.prewarm,
    )
    names = available_experiments() if args.name == ALL else [args.name]
    suite_started = time.perf_counter()
    for name in names:
        if args.name == ALL:
            print(f"=== {name} ===")
        started = time.perf_counter()
        output = run_experiment(name, config)
        elapsed = time.perf_counter() - started
        for table in tables_of(output):
            print(table.to_text())
            print()
        if args.name == ALL:
            print(f"({name} finished in {elapsed:.1f}s)")
            print()
    if args.name == ALL:
        print(f"suite finished in {time.perf_counter() - suite_started:.1f}s with --jobs {args.jobs}")
    if args.output_dir:
        print(f"tables saved under {args.output_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
