"""Common experiment infrastructure.

Every experiment module exposes a ``run(config) -> ResultTable`` (or a dict of
tables) function.  The harness provides the shared configuration object, an
experiment registry (so ``run_experiment("e1")`` works by name), and helpers
to persist tables for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.metrics.reporting import ResultTable
from repro.runtime import ParallelRunner, SeedTree
from repro.utils.registry import Registry

ExperimentOutput = Union[ResultTable, Dict[str, ResultTable]]
experiment_registry: Registry[ExperimentOutput] = Registry("experiment")


@dataclass
class ExperimentConfig:
    """Size/seed knobs shared by all experiments.

    ``scale`` multiplies workload sizes: benchmarks run at ``scale=1.0``
    (fast); the EXPERIMENTS.md numbers were produced at the same scale so the
    recorded and regenerated tables are directly comparable.

    ``jobs`` fans each experiment's independent work units (per-domain codec
    training, per-row simulations) across a process pool via
    :class:`~repro.runtime.ParallelRunner`.  Results are **bit-identical** for
    every ``jobs`` value — each unit is fully determined by its explicit seed
    and results merge in submission order — so parallelism is purely a
    wall-clock knob.  ``0`` means "all available cores".

    ``backend`` selects the simulator engine for simulator-driven experiments
    through the :mod:`repro.sim.backend` registry (``None`` honours the
    ``REPRO_BACKEND`` environment variable and defaults to ``serial``);
    ``shards`` and ``worker_timeout`` are forwarded to backends that
    partition one replay across workers (``worker_timeout`` bounds how long
    the sharded coordinator waits on any one worker's window step).
    Non-serial backends publish their tables under suffixed names
    (``*_sharded``) so the serial bit-identity reference tables never mix
    with backend-specific goldens.
    """

    seed: int = 0
    scale: float = 1.0
    sentences_per_domain: int = 120
    train_epochs: int = 15
    codec_architecture: str = "mlp"
    output_dir: Optional[str] = None
    jobs: int = 1
    backend: Optional[str] = None
    shards: Optional[int] = None
    worker_timeout: Optional[float] = None
    #: Global request-placement policy name (``--placement``); experiments
    #: that replay scenarios honour it (e12 restricts its mode matrix to the
    #: named policy), others ignore it.
    placement: Optional[str] = None
    #: Offline cache-placement prewarm (``--prewarm``), same audience.
    prewarm: bool = False

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an integer workload knob, keeping it at least ``minimum``."""
        return max(minimum, int(round(value * self.scale)))

    def runner(self) -> ParallelRunner:
        """The process-pool runner experiments fan their work units through."""
        return ParallelRunner(jobs=self.jobs)

    def seed_tree(self) -> SeedTree:
        """Path-addressed seed derivation rooted at this config's seed."""
        return SeedTree(self.seed)


def register_experiment(name: str) -> Callable:
    """Decorator registering an experiment ``run`` function under ``name``."""
    return experiment_registry.register(name)


def run_experiment(name: str, config: Optional[ExperimentConfig] = None) -> ExperimentOutput:
    """Run the experiment registered under ``name``."""
    config = config or ExperimentConfig()
    output = experiment_registry.create(name, config)
    if config.output_dir:
        save_output(name, output, config.output_dir)
    return output


def available_experiments() -> List[str]:
    """Names of all registered experiments."""
    return experiment_registry.names()


def tables_of(output: ExperimentOutput) -> List[ResultTable]:
    """Normalize an experiment output to a list of tables."""
    if isinstance(output, ResultTable):
        return [output]
    return list(output.values())


def save_output(name: str, output: ExperimentOutput, output_dir: str) -> List[Path]:
    """Persist every table of ``output`` as JSON under ``output_dir``."""
    paths: List[Path] = []
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for table in tables_of(output):
        path = directory / f"{name}_{table.name}.json"
        table.save_json(str(path))
        paths.append(path)
    return paths


@dataclass
class ExperimentSuite:
    """Runs a list of experiments and collects their tables."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    results: Dict[str, ExperimentOutput] = field(default_factory=dict)

    def run(self, names: Optional[List[str]] = None) -> Dict[str, ExperimentOutput]:
        """Run ``names`` (default: every registered experiment) in order."""
        for name in names or available_experiments():
            self.results[name] = run_experiment(name, self.config)
        return self.results

    def report(self) -> str:
        """Markdown report of all collected tables."""
        sections: List[str] = []
        for name, output in self.results.items():
            sections.append(f"# Experiment {name}\n")
            for table in tables_of(output):
                sections.append(table.to_markdown())
        return "\n".join(sections)
