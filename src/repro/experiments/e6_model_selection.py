"""E6 — Model-selection strategies on topic-drifting conversations.

Paper claim (Section III-A): a plain per-message classification network "may
not take into account the context of the message"; context-aware selectors
(recurrent networks, reinforcement learning) should select the right
domain-specialized model more often.  The experiment generates conversations
whose latent topic persists over several turns, trains the supervised
selectors on a disjoint set of conversations, and measures online selection
accuracy (and regret) on held-out conversations for: random, keyword overlap,
per-message classifier, contextual GRU, epsilon-greedy bandit, and LinUCB.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.selection import (
    ClassifierProbabilityFeaturizer,
    ClassifierSelectionPolicy,
    ContextualDomainSelector,
    ContextualSelectionPolicy,
    DomainClassifier,
    EpsilonGreedyPolicy,
    KeywordSelectionPolicy,
    LinUcbPolicy,
    RandomPolicy,
    build_featurizer,
    evaluate_policy,
)
from repro.utils.rng import new_rng
from repro.workloads import default_domains, generate_topic_drift_trace


def _ambiguous_sentence(rng: np.random.Generator) -> str:
    """A sentence built only from cross-domain (polysemous) words.

    Such a message carries essentially no per-message domain evidence — the
    paper's "bus" example taken to the extreme — so only the conversational
    context can reveal which domain model should handle it.
    """
    from repro.workloads.domains import POLYSEMOUS_WORDS

    picks = rng.choice(len(POLYSEMOUS_WORDS), size=3, replace=False)
    first, second, third = (POLYSEMOUS_WORDS[int(i)] for i in picks)
    return f"the {first} and the {second} use the {third}"


def _conversation(
    domains, trace, rng: np.random.Generator, noise_probability: float = 0.15
) -> Tuple[List[str], List[str]]:
    """Materialize a topic-drift trace into (messages, true_domains).

    With probability ``noise_probability`` a turn is an ambiguous,
    polysemous-words-only sentence whose true domain is only inferable from
    context — these are the turns where context-aware selection beats a
    per-message classifier.
    """
    texts: List[str] = []
    labels: List[str] = []
    for domain in trace.domains:
        if rng.random() < noise_probability:
            texts.append(_ambiguous_sentence(rng))
        else:
            texts.append(domains[domain].sample_sentence(rng))
        labels.append(domain)
    return texts, labels


def _policy_row(payload) -> dict:
    """Evaluate one selection policy on the held-out conversations.

    Policies are stateful (bandits learn online), but each unit carries its
    own freshly pickled policy, so the feedback sequence each policy sees is
    exactly the serial one regardless of worker placement.
    """
    name, policy, test_conversations = payload
    accuracies = []
    regrets = []
    for texts, labels in test_conversations:
        outcome = evaluate_policy(policy, texts, labels, provide_feedback=True)
        accuracies.append(outcome.accuracy)
        regrets.append(outcome.cumulative_regret[-1] if outcome.cumulative_regret else 0)
    return dict(
        policy=name,
        accuracy=float(np.mean(accuracies)),
        final_regret=float(np.mean(regrets)),
        conversations=len(test_conversations),
        turns_per_conversation=len(test_conversations[0][0]),
    )


@register_experiment("e6")
def run(
    config: Optional[ExperimentConfig] = None,
    num_train_conversations: int = 10,
    turns_per_conversation: int = 60,
    num_test_conversations: int = 4,
    persistence: float = 0.9,
    noise_probability: float = 0.25,
) -> ResultTable:
    """Run E6 and return the per-policy selection-accuracy table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    domains = default_domains()
    domain_names = list(domains)

    def make_conversations(count: int, seed_offset: int) -> List[Tuple[List[str], List[str]]]:
        conversations = []
        for index in range(count):
            trace = generate_topic_drift_trace(
                domain_names,
                config.scaled(turns_per_conversation, minimum=20),
                persistence=persistence,
                seed=config.seed + seed_offset + index,
            )
            conversations.append(_conversation(domains, trace, rng, noise_probability))
        return conversations

    train_conversations = make_conversations(num_train_conversations, seed_offset=100)
    test_conversations = make_conversations(num_test_conversations, seed_offset=900)

    train_texts = [text for conversation, _ in train_conversations for text in conversation]
    train_labels = [label for _, labels in train_conversations for label in labels]
    featurizer = build_featurizer(train_texts)

    classifier = DomainClassifier(featurizer, domain_names, seed=config.seed)
    classifier.fit(train_texts, train_labels, epochs=20, seed=config.seed)

    # The contextual selector consumes the classifier's per-message domain
    # posterior and smooths it over the conversation with a GRU (Section III-A's
    # "LSTM-based classification network" taking context into account).
    probability_featurizer = ClassifierProbabilityFeaturizer(classifier)
    contextual = ContextualDomainSelector(
        probability_featurizer, domain_names, context_window=6, hidden_dim=24, seed=config.seed
    )
    contextual.fit(
        [texts for texts, _ in train_conversations],
        [labels for _, labels in train_conversations],
        epochs=30,
        learning_rate=1e-2,
        seed=config.seed,
    )

    domain_vocabularies = {name: spec.vocabulary() for name, spec in domains.items()}

    policies = {
        "random": RandomPolicy(domain_names, seed=config.seed),
        "keyword": KeywordSelectionPolicy(domain_vocabularies, seed=config.seed),
        "classifier": ClassifierSelectionPolicy(classifier),
        "contextual-gru": ContextualSelectionPolicy(contextual),
        "epsilon-greedy": EpsilonGreedyPolicy(domain_names, epsilon=0.1, seed=config.seed),
        "linucb": LinUcbPolicy(featurizer, domain_names, alpha=0.4),
    }

    table = ResultTable(
        name="e6_model_selection",
        description=(
            "Online domain-selection accuracy on held-out topic-drifting conversations "
            "(ambiguous turns included); higher is better, oracle = 1.0."
        ),
    )
    payloads = [(name, policy, test_conversations) for name, policy in policies.items()]
    for row in config.runner().map(_policy_row, payloads):
        table.add_row(**row)
    return table
