"""E11 — Resilience: request-level failure handling under adversarial load.

The scenario engine (E10) measures what the deployment *suffers* under
faults; E11 measures what a request-level resilience policy *recovers*.  A
slice of the stress catalog — the steady-state control, the flash crowd, the
capacity crunch — plus a total-blackout scenario (every cell dark for a
third of the run, the regime where baseline behaviour is mass drops) is
replayed under five policy modes of increasing machinery:

``none``
    The resilience layer disabled: byte-identical to the pre-resilience
    engine, the baseline every other mode is compared against.
``deadline``
    Per-request completion deadlines only: slow requests convert to
    ``DEADLINE_EXCEEDED`` instead of occupying batch slots indefinitely.
``retry``
    Bounded retries with exponential backoff and deterministic jitter,
    re-homing each attempt via the failover scan.
``retry_hedge``
    Retries plus hedged duplicates: after a hedge delay a twin launches on
    the next-nearest alive cell and the first completion wins.
``full``
    Everything at once: deadlines, retries, hedging, per-cell circuit
    breakers and queue-depth load shedding.

Every (scenario, mode) pair replays the identical trace through the
identical deployment — the resilience policy lives outside every seed path —
so mode comparisons are paired.  The headline claims the committed table
pins: retry converts ≥90% of the blackout's baseline drops into
completions, and shedding improves the completed-request p95 during the
capacity crunch over the unprotected baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.runtime import ParallelRunner
from repro.scenarios.catalog import get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import FaultEvent, ScenarioSpec, WorkloadPhase
from repro.sim.backend import resolve_backend_name
from repro.sim.resilience import ResiliencePolicy

#: Catalog scenarios E11 replays (the blackout is E11's own, below).
CATALOG_SLICE: Sequence[str] = ("steady_state", "flash_crowd", "capacity_crunch")

#: The five policy modes, in increasing order of machinery.  Timings are
#: sized to the simulator's latency scale (p50 ~10-45ms, p95 ~0.5-1.4s on
#: the catalog): the 2s deadline only cuts the pathological tail, the 0.25s
#: hedge delay fires on requests already past p90, and the 0.5s backoff base
#: rides out the 4s blackout within six doubling attempts.
MODES: Dict[str, Optional[ResiliencePolicy]] = {
    "none": None,
    "deadline": ResiliencePolicy(deadline_s=2.0),
    "retry": ResiliencePolicy(
        max_retries=6,
        backoff_base_s=0.5,
        backoff_multiplier=2.0,
        backoff_jitter=0.25,
    ),
    "retry_hedge": ResiliencePolicy(
        max_retries=6,
        backoff_base_s=0.5,
        backoff_multiplier=2.0,
        backoff_jitter=0.25,
        hedge_delay_s=0.25,
    ),
    # The full policy is the strict-SLA stance: the 6s deadline sits just
    # above the worst useful retry horizon (a blackout-start arrival's fourth
    # attempt), so retries can still rescue outage traffic while anything
    # slower terminates explicitly; the 384-deep admission queue sheds the
    # recovery stampede instead of letting it queue without bound — trading
    # a few percent of completions for a p95 *below* the unprotected
    # baseline on every overload scenario.
    "full": ResiliencePolicy(
        deadline_s=6.0,
        max_retries=6,
        backoff_base_s=0.5,
        backoff_multiplier=2.0,
        backoff_jitter=0.25,
        hedge_delay_s=0.25,
        breaker_window=50,
        breaker_failure_threshold=0.5,
        breaker_min_volume=20,
        breaker_open_s=1.0,
        breaker_half_open_probes=5,
        shed_queue_depth=384,
    ),
}

#: Summary columns that exist only on policy-bearing rows; zero-filled on the
#: ``none`` row so the table stays rectangular.
_RESILIENCE_COLUMNS = (
    "shed",
    "deadline_exceeded",
    "retries",
    "hedges",
    "hedge_wins",
    "breaker_transitions",
)


def total_blackout() -> ScenarioSpec:
    """Every cell dark for the middle third of the run.

    The catalog's ``cell_outage`` fails one cell of four — its users re-home
    and nothing drops.  This spec fails *all four*, so for 4 simulated
    seconds there is nowhere to fail over to: without a resilience policy
    every blackout-window arrival terminates ``DROPPED``.  Retries with a
    0.5s backoff base and six doubling attempts straddle the 4s outage, so
    the retry modes convert those drops back into (late) completions.
    """
    return ScenarioSpec(
        name="total_blackout",
        description=(
            "All four cells fail simultaneously mid-run and recover together "
            "one phase later: the only scenario where baseline behaviour is "
            "mass drops, hence the resilience layer's headline regime."
        ),
        phases=(
            WorkloadPhase("healthy", duration_s=4.0),
            WorkloadPhase("blackout", duration_s=4.0),
            WorkloadPhase("recovered", duration_s=4.0),
        ),
        events=tuple(
            FaultEvent(time_s=4.0, kind="cell_fail", cell=f"cell_{index}")
            for index in range(4)
        )
        + tuple(
            FaultEvent(time_s=8.0, kind="cell_recover", cell=f"cell_{index}")
            for index in range(4)
        ),
    )


def _specs() -> List[ScenarioSpec]:
    return [get_scenario(name) for name in CATALOG_SLICE] + [total_blackout()]


def _run_mode_row(
    payload: Dict[str, object],
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """One independent (scenario x mode) work unit for the process pool."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    mode = str(payload["mode"])
    policy = payload.get("policy")
    spec = spec.with_resilience(
        None if policy is None else ResiliencePolicy.from_dict(dict(policy))
    )
    shards = payload.get("shards")
    worker_timeout = payload.get("worker_timeout")
    result = run_scenario(
        spec,
        seed=int(payload["seed"]),
        scale=float(payload["scale"]),
        backend=payload.get("backend"),
        shards=None if shards is None else int(shards),
        worker_timeout=None if worker_timeout is None else float(worker_timeout),
    )
    # Rectangularize: the `none` row reports the same columns as every other
    # mode (all-zero resilience counters, incomplete_ratio = drop fraction).
    summary = dict(result.summary)
    summary["mode"] = mode
    for column in _RESILIENCE_COLUMNS:
        summary.setdefault(column, 0)
    if "incomplete_ratio" not in summary:
        terminal = int(summary["completed"]) + int(summary["dropped"])
        summary["incomplete_ratio"] = (
            int(summary["dropped"]) / terminal if terminal else 0.0
        )
    phases = []
    for row in result.phases:
        row = dict(row)
        row["mode"] = mode
        row.setdefault("shed", 0)
        row.setdefault("deadline_exceeded", 0)
        phases.append(row)
    return summary, phases


@register_experiment("e11")
def run(
    config: Optional[ExperimentConfig] = None,
    modes: Optional[Dict[str, Optional[ResiliencePolicy]]] = None,
) -> Dict[str, ResultTable]:
    """Run E11 and return the resilience summary plus the per-phase breakdown.

    ``config.scale`` multiplies every scenario's arrival rate (fault times and
    phase boundaries never move); rows fan across the process pool on the
    serial backend and run sequentially on backends that parallelize
    internally, byte-identically either way.
    """
    config = config or ExperimentConfig()
    modes = MODES if modes is None else modes
    resolved = resolve_backend_name(config.backend)
    suffix = "" if resolved == "serial" else f"_{resolved}"
    jobs = config.jobs if resolved == "serial" else 1
    payloads: List[Dict[str, object]] = [
        {
            "spec": spec.to_dict(),
            "mode": mode,
            "policy": None if policy is None else policy.to_dict(),
            "seed": config.seed,
            "scale": config.scale,
            "backend": resolved,
            "shards": config.shards,
            "worker_timeout": config.worker_timeout,
        }
        for spec in _specs()
        for mode, policy in modes.items()
    ]
    summary = ResultTable(
        name=f"e11_resilience{suffix}",
        description=(
            "Each stress scenario replayed under five resilience modes "
            f"(scale={config.scale}): terminal outcome mix (completed / dropped "
            "/ shed / deadline_exceeded), retry/hedge/breaker activity and "
            "completed-request latency percentiles per (scenario, mode) row."
        ),
    )
    phases = ResultTable(
        name=f"e11_resilience_phases{suffix}",
        description=(
            "Per-phase measurement windows of every E11 row: the blackout and "
            "crunch regimes reported separately from the healthy phases "
            "around them."
        ),
    )
    for row, phase_rows in ParallelRunner(jobs=jobs).map(_run_mode_row, payloads):
        summary.add_row(**row)
        for phase_row in phase_rows:
            phases.add_row(**phase_row)
    return {"resilience": summary, "phases": phases}
