"""E4 — Decoder copies on the sender edge vs sending restorations back.

Paper claim (Section II-C): computing the encoder/decoder mismatch needs both
the input and the output; "sending the output back to the sender would defeat
the purpose of the semantic communication system".  Caching decoder copies at
the sender edge trades a one-off storage cost for eliminating that per-message
feedback traffic.

The experiment streams a message workload through the system twice — once with
the decoder-copy design and once with an output-feedback design — and compares
backhaul bytes, per-message overhead, and the storage the copies occupy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import SemanticEdgeSystem, SystemConfig
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig
from repro.workloads import MessageGenerator, build_user_population


def _build_system(config: ExperimentConfig) -> SemanticEdgeSystem:
    system_config = SystemConfig(
        codec=CodecConfig(
            architecture=config.codec_architecture,
            embedding_dim=24,
            feature_dim=6,
            hidden_dim=48,
            max_length=16,
            seed=config.seed,
        ),
        channel_snr_db=None,
        auto_update=False,
        account_compute=False,
    )
    return SemanticEdgeSystem.pretrained(
        sentences_per_domain=config.scaled(config.sentences_per_domain),
        train_epochs=config.train_epochs,
        config=system_config,
        seed=config.seed,
    )


@register_experiment("e4")
def run(config: Optional[ExperimentConfig] = None, num_messages: int = 60) -> ResultTable:
    """Run E4 and return the feedback-traffic comparison table."""
    config = config or ExperimentConfig()
    system = _build_system(config)
    session = system.open_session("user_0", "user_1")
    users = build_user_population(1, seed=config.seed)
    generator = MessageGenerator(users, seed=config.seed + 1)
    messages = generator.generate("user_0", config.scaled(num_messages, minimum=10))

    restored_sizes = []
    payload_sizes = []
    for item in messages:
        report = session.send_text("user_0", "user_1", item.text, domain_hint=item.domain)
        payload_sizes.append(report.payload_bytes)
        restored_sizes.append(len(report.restored_text.encode("utf-8")))

    count = len(messages)
    mean_payload = float(np.mean(payload_sizes))
    mean_restored = float(np.mean(restored_sizes))
    decoder_copy_bytes = sum(codec.decoder.num_parameters() * 4 for _, codec in system.knowledge_bases.items())

    table = ResultTable(
        name="e4_decoder_copy",
        description=(
            "Backhaul traffic needed to compute sender-side mismatch: caching decoder copies at the "
            "sender edge (one-off storage) vs sending every restored message back (per-message traffic)."
        ),
    )
    table.add_row(
        design="decoder-copy-at-sender",
        messages=count,
        feedback_bytes_total=0.0,
        feedback_bytes_per_message=0.0,
        extra_storage_bytes=float(decoder_copy_bytes),
        payload_bytes_per_message=mean_payload,
        feedback_overhead_fraction=0.0,
    )
    feedback_total = mean_restored * count
    table.add_row(
        design="send-output-back",
        messages=count,
        feedback_bytes_total=feedback_total,
        feedback_bytes_per_message=mean_restored,
        extra_storage_bytes=0.0,
        payload_bytes_per_message=mean_payload,
        feedback_overhead_fraction=mean_restored / mean_payload if mean_payload else float("inf"),
    )
    # Break-even: after how many messages does feedback traffic exceed the storage cost?
    break_even = decoder_copy_bytes / mean_restored if mean_restored else float("inf")
    table.add_row(
        design="break-even-messages",
        messages=count,
        feedback_bytes_total=float("nan"),
        feedback_bytes_per_message=float("nan"),
        extra_storage_bytes=float(decoder_copy_bytes),
        payload_bytes_per_message=mean_payload,
        feedback_overhead_fraction=break_even,
    )
    return table
