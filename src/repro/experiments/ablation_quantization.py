"""Ablation — feature width and quantization depth of the semantic codec.

DESIGN.md calls out the two design choices that set the semantic payload size:
the per-token feature dimension of the KB codecs and the number of bits each
feature value is quantized to.  This ablation sweeps both and reports payload
size and end-to-end fidelity through a moderate-SNR channel, showing the
compression/fidelity frontier the default configuration sits on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel import PhysicalChannel, QuantizationSpec
from repro.core.pipeline import SemanticTransmissionPipeline
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, SemanticCodec
from repro.text import token_accuracy
from repro.text.tokenizer import simple_tokenize
from repro.utils.rng import new_rng
from repro.workloads import generate_all_corpora


@register_experiment("ablation_quantization")
def run(
    config: Optional[ExperimentConfig] = None,
    feature_dims: Sequence[int] = (2, 4, 8),
    quantization_bits: Sequence[int] = (2, 4, 6, 8),
    snr_db: float = 10.0,
    num_test_sentences: int = 30,
) -> ResultTable:
    """Run the feature-dim x quantization-bits ablation and return its table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    corpora = generate_all_corpora(config.scaled(config.sentences_per_domain), seed=config.seed)
    pooled = [sentence for corpus in corpora.values() for sentence in corpus.sentences]
    test_count = config.scaled(num_test_sentences, minimum=8)
    test_indices = rng.choice(len(pooled), size=min(test_count, len(pooled)), replace=False)
    test_sentences = [pooled[int(i)] for i in test_indices]

    table = ResultTable(
        name="ablation_quantization",
        description=(
            "Semantic payload (bytes/message) and end-to-end token accuracy at "
            f"{snr_db:.0f} dB AWGN for different feature widths and quantization depths."
        ),
    )

    for feature_dim in feature_dims:
        codec_config = CodecConfig(
            architecture=config.codec_architecture,
            embedding_dim=24,
            feature_dim=feature_dim,
            hidden_dim=48,
            max_length=16,
            seed=config.seed,
        )
        codec = SemanticCodec.from_corpus(pooled, config=codec_config, domain="pooled")
        codec.train(pooled, epochs=config.train_epochs, noise_std=0.1, seed=config.seed)
        for bits in quantization_bits:
            pipeline = SemanticTransmissionPipeline(
                quantization=QuantizationSpec(bits_per_value=bits),
                channel=PhysicalChannel("qpsk", snr_db=snr_db, seed=config.seed),
            )
            accuracies = []
            payloads = []
            for sentence in test_sentences:
                encoded = codec.encode_message(sentence)
                result = pipeline.transmit_features(encoded.features)
                restored = codec.decode_features(result.received_features)
                accuracies.append(token_accuracy(simple_tokenize(sentence), simple_tokenize(restored)))
                payloads.append(result.payload_bytes)
            table.add_row(
                feature_dim=feature_dim,
                quantization_bits=bits,
                payload_bytes=float(np.mean(payloads)),
                token_accuracy=float(np.mean(accuracies)),
            )
    return table
