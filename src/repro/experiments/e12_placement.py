"""E12 — Global placement: flow-network scheduling across the e10 catalog.

Two questions, two tables, both asked over the full nine-scenario stress
catalog (:mod:`repro.scenarios.catalog`):

**Request placement** (``e12_placement``) — every scenario replayed under the
placement policy family of :mod:`repro.sim.placement`:

``none``
    Placement disabled: byte-identical to the unplaced engine, the baseline
    every other mode is compared against.
``naive``
    The placement machinery on, routing every request to its serving cell —
    metric-identical to ``none`` by construction; prices the machinery.
``shortest-queue``
    Greedy queue balancing: each arrival goes to the least-loaded reachable
    cell.  Balances compute but scatters each domain across cells, diluting
    cache locality.
``max-flow``
    Windowed min-cost-flow routing of demand over the cell flow network.
    Consolidating domains onto few cells preserves locality *and* respects
    capacity, which is the headline claim the committed table pins:
    ``max-flow`` beats ``shortest-queue`` mean latency on ``capacity_crunch``
    and ``flash_crowd``.

**Cache placement** (``e12_cache_placement``) — the offline cache-placement
optimizer (min-cost flow over the trace's demand matrix, prewarming every
cell before the first arrival) against the online eviction policies.  The
``offline`` row runs semantic-popularity eviction on top of the optimizer's
prewarmed plan; the committed table pins its hit ratio at or above the best
cold-started online policy (LRU/LFU/semantic-popularity) on every scenario.

Placement lives outside every seed path, so mode comparisons are paired:
each (scenario, mode) pair replays the identical trace through the identical
deployment.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.runtime import ParallelRunner
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.backend import resolve_backend_name
from repro.sim.placement import PlacementSpec

#: The request-placement policy modes, in increasing order of machinery.
PLACEMENT_MODES: Dict[str, Optional[PlacementSpec]] = {
    "none": None,
    "naive": PlacementSpec(policy="naive"),
    "shortest-queue": PlacementSpec(policy="shortest-queue"),
    "max-flow": PlacementSpec(policy="max-flow"),
}

#: The cache-placement arms: three online eviction policies cold-started,
#: plus the offline optimizer's prewarmed plan (the paper's own
#: semantic-popularity eviction on top, so the bound is on the *start state*).
CACHE_MODES: Dict[str, Tuple[str, Optional[PlacementSpec]]] = {
    "lru": ("lru", None),
    "lfu": ("lfu", None),
    "semantic-popularity": ("semantic-popularity", None),
    "offline": ("semantic-popularity", PlacementSpec(policy="naive", prewarm=True)),
}

#: Summary columns that exist only on placement-bearing rows; filled on the
#: unplaced rows so each table stays rectangular.
_PLACEMENT_COLUMNS = ("placed_remote", "placement_solves", "prewarmed_models")


def _run_mode_row(payload: Dict[str, object]) -> Dict[str, object]:
    """One independent (scenario x mode) work unit for the process pool."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    cache_policy = payload.get("cache_policy")
    if cache_policy:
        spec = spec.with_policy(str(cache_policy))
    placement = payload.get("placement")
    spec = spec.with_placement(
        None if placement is None else PlacementSpec.from_dict(dict(placement))
    )
    shards = payload.get("shards")
    worker_timeout = payload.get("worker_timeout")
    result = run_scenario(
        spec,
        seed=int(payload["seed"]),
        scale=float(payload["scale"]),
        backend=payload.get("backend"),
        shards=None if shards is None else int(shards),
        worker_timeout=None if worker_timeout is None else float(worker_timeout),
    )
    summary = dict(result.summary)
    summary["mode"] = str(payload["mode"])
    summary.setdefault("placement", "none")
    for column in _PLACEMENT_COLUMNS:
        summary.setdefault(column, 0)
    return summary


def _placement_modes(config: ExperimentConfig) -> Dict[str, Optional[PlacementSpec]]:
    """The request-placement matrix, honouring ``--placement``/``--prewarm``."""
    if config.placement is not None:
        spec = PlacementSpec(policy=config.placement, prewarm=config.prewarm)
        return {"none": None, config.placement: spec}
    if config.prewarm:
        return {
            mode: None if spec is None else PlacementSpec.from_dict(
                {**spec.to_dict(), "prewarm": True}
            )
            for mode, spec in PLACEMENT_MODES.items()
        }
    return dict(PLACEMENT_MODES)


@register_experiment("e12")
def run(config: Optional[ExperimentConfig] = None) -> Dict[str, ResultTable]:
    """Run E12 and return the placement and cache-placement tables.

    ``config.scale`` multiplies every scenario's arrival rate (fault times
    and phase boundaries never move); rows fan across the process pool on the
    serial backend and run sequentially on backends that parallelize
    internally, byte-identically either way.  ``config.placement`` restricts
    the request-placement matrix to the named policy (plus the ``none``
    baseline) — the CI smoke path.
    """
    config = config or ExperimentConfig()
    resolved = resolve_backend_name(config.backend)
    suffix = "" if resolved == "serial" else f"_{resolved}"
    jobs = config.jobs if resolved == "serial" else 1
    specs = [get_scenario(name) for name in scenario_names()]

    def payload(
        spec: ScenarioSpec,
        mode: str,
        placement: Optional[PlacementSpec],
        cache_policy: Optional[str] = None,
    ) -> Dict[str, object]:
        return {
            "spec": spec.to_dict(),
            "mode": mode,
            "placement": None if placement is None else placement.to_dict(),
            "cache_policy": cache_policy,
            "seed": config.seed,
            "scale": config.scale,
            "backend": resolved,
            "shards": config.shards,
            "worker_timeout": config.worker_timeout,
        }

    placement_payloads = [
        payload(spec, mode, spec_placement)
        for spec in specs
        for mode, spec_placement in _placement_modes(config).items()
    ]
    cache_payloads = [
        payload(spec, mode, placement, cache_policy=policy)
        for spec in specs
        for mode, (policy, placement) in CACHE_MODES.items()
    ]
    runner = ParallelRunner(jobs=jobs)
    placement_rows = runner.map(_run_mode_row, placement_payloads)
    cache_rows = runner.map(_run_mode_row, cache_payloads)

    placement_table = ResultTable(
        name=f"e12_placement{suffix}",
        description=(
            "Each stress scenario replayed under the request-placement policy "
            f"family (scale={config.scale}): latency percentiles, hit ratio, "
            "forwarded-request and flow-solve counts per (scenario, mode) row. "
            "The headline claim: max-flow beats shortest-queue mean latency "
            "on capacity_crunch and flash_crowd."
        ),
    )
    for row in placement_rows:
        placement_table.add_row(**row)
    cache_table = ResultTable(
        name=f"e12_cache_placement{suffix}",
        description=(
            "The offline cache-placement optimizer (min-cost flow over the "
            "demand matrix, prewarmed at t=0) against the online eviction "
            f"policies across the catalog (scale={config.scale}).  The "
            "headline claim: the offline plan's hit ratio >= the best online "
            "policy on every scenario."
        ),
    )
    for row in cache_rows:
        cache_table.add_row(**row)
    return {"placement": placement_table, "cache_placement": cache_table}
