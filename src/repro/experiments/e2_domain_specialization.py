"""E2 — Domain-specialized general models vs a single shared general model.

Paper claim (Section II-A): "Using only general models for all users can lead
to severe mismatches between senders and receivers" — the word "bus" means
different things in IT and in the news; one model for all domains blurs those
senses.  With an equal parameter budget, four domain-specialized codecs should
reconstruct their own domains better than one codec trained on everything, and
applying the *wrong* domain's codec should be much worse still.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.general_only import GeneralOnlyBaseline
from repro.channel import PhysicalChannel, QuantizationSpec
from repro.core.pipeline import SemanticTransmissionPipeline
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, SemanticCodec
from repro.text import bleu_score, token_accuracy
from repro.text.tokenizer import simple_tokenize
from repro.workloads import generate_all_corpora


def _codec_config(config: ExperimentConfig) -> CodecConfig:
    # The feature bottleneck is deliberately tight (3 values per token): with an
    # equal parameter budget, one codec covering every domain's vocabulary has
    # far less margin in feature space than a domain-specialized codec, which
    # is what surfaces as mismatch once transmission impairments are applied.
    return CodecConfig(
        architecture=config.codec_architecture,
        embedding_dim=16,
        feature_dim=3,
        hidden_dim=24,
        max_length=16,
        seed=config.seed,
    )


def _channel_evaluate(
    codec: SemanticCodec,
    sentences: list[str],
    snr_db: float,
    quantization_bits: int,
    seed: int,
) -> Dict[str, float]:
    """End-to-end fidelity of ``codec`` through quantization and an AWGN channel."""
    pipeline = SemanticTransmissionPipeline(
        quantization=QuantizationSpec(bits_per_value=quantization_bits),
        channel=PhysicalChannel(modulation="qpsk", snr_db=snr_db, seed=seed),
    )
    accuracies = []
    bleus = []
    for sentence in sentences:
        encoded = codec.encode_message(sentence)
        result = pipeline.transmit_features(encoded.features)
        restored = codec.decode_features(result.received_features)
        reference = simple_tokenize(sentence)
        hypothesis = simple_tokenize(restored)
        accuracies.append(token_accuracy(reference, hypothesis))
        bleus.append(bleu_score(reference, hypothesis))
    return {"token_accuracy": float(np.mean(accuracies)), "bleu": float(np.mean(bleus))}


def _cross_domain_accuracy(
    encoder_codec: SemanticCodec, decoder_codec: SemanticCodec, sentences: list[str]
) -> float:
    """Accuracy when encoding with one domain's codec and decoding with another's.

    Feature spaces are not shared across independently trained codecs, which is
    exactly the sender/receiver KB mismatch the paper warns about.
    """
    accuracies = []
    for sentence in sentences:
        encoded = encoder_codec.encode_message(sentence)
        restored = decoder_codec.decode_features(encoded.features)
        accuracies.append(token_accuracy(simple_tokenize(sentence), simple_tokenize(restored)))
    return float(np.mean(accuracies))


@register_experiment("e2")
def run(
    config: Optional[ExperimentConfig] = None,
    num_test_sentences: int = 30,
    snr_db: float = 6.0,
    quantization_bits: int = 4,
) -> Dict[str, ResultTable]:
    """Run E2; returns the specialization table and the cross-domain mismatch matrix."""
    config = config or ExperimentConfig()
    corpora = generate_all_corpora(config.scaled(config.sentences_per_domain), seed=config.seed)
    test_count = config.scaled(num_test_sentences, minimum=6)
    codec_config = _codec_config(config)

    # Domain-specialized codecs (the paper's proposal).
    specialized: Dict[str, SemanticCodec] = {}
    for domain, corpus in corpora.items():
        specialized[domain] = SemanticCodec.from_corpus(
            list(corpus.sentences),
            config=codec_config,
            domain=domain,
            train_epochs=config.train_epochs,
            seed=config.seed,
        )

    # Single general codec with the same capacity (the baseline).
    general = GeneralOnlyBaseline(config=codec_config).fit(
        corpora, train_epochs=config.train_epochs, seed=config.seed
    )

    main = ResultTable(
        name="e2_domain_specialization",
        description=(
            "End-to-end token accuracy per domain through 4-bit quantization and a 6 dB AWGN "
            "channel: one shared general codec vs domain-specialized codecs of equal capacity."
        ),
    )
    for domain, corpus in corpora.items():
        test_sentences = list(corpus.sentences)[:test_count]
        specialized_metrics = _channel_evaluate(
            specialized[domain], test_sentences, snr_db, quantization_bits, config.seed
        )
        general_metrics = _channel_evaluate(
            general.codec, test_sentences, snr_db, quantization_bits, config.seed
        )
        main.add_row(
            domain=domain,
            specialized_token_accuracy=specialized_metrics["token_accuracy"],
            general_token_accuracy=general_metrics["token_accuracy"],
            specialized_bleu=specialized_metrics["bleu"],
            general_bleu=general_metrics["bleu"],
            specialization_gain=specialized_metrics["token_accuracy"]
            - general_metrics["token_accuracy"],
        )

    cross = ResultTable(
        name="e2_cross_domain_mismatch",
        description=(
            "Token accuracy when the sender encodes with the row domain's codec and the "
            "receiver decodes with the column domain's codec (diagonal = matched KBs)."
        ),
    )
    domains = list(corpora)
    for encoder_domain in domains:
        sentences = list(corpora[encoder_domain].sentences)[: max(6, test_count // 2)]
        row: Dict[str, float] = {"encoder_domain": encoder_domain}
        for decoder_domain in domains:
            row[f"decode_{decoder_domain}"] = _cross_domain_accuracy(
                specialized[encoder_domain], specialized[decoder_domain], sentences
            )
        cross.add_row(**row)

    return {"specialization": main, "cross_domain": cross}
