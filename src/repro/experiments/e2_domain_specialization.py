"""E2 — Domain-specialized general models vs a single shared general model.

Paper claim (Section II-A): "Using only general models for all users can lead
to severe mismatches between senders and receivers" — the word "bus" means
different things in IT and in the news; one model for all domains blurs those
senses.  With an equal parameter budget, four domain-specialized codecs should
reconstruct their own domains better than one codec trained on everything, and
applying the *wrong* domain's codec should be much worse still.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.general_only import GeneralOnlyBaseline
from repro.channel import PhysicalChannel, QuantizationSpec
from repro.core.pipeline import SemanticTransmissionPipeline
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, SemanticCodec
from repro.text import bleu_score, token_accuracy
from repro.text.tokenizer import simple_tokenize
from repro.workloads import generate_all_corpora


def _codec_config(config: ExperimentConfig) -> CodecConfig:
    # The feature bottleneck is deliberately tight (3 values per token): with an
    # equal parameter budget, one codec covering every domain's vocabulary has
    # far less margin in feature space than a domain-specialized codec, which
    # is what surfaces as mismatch once transmission impairments are applied.
    return CodecConfig(
        architecture=config.codec_architecture,
        embedding_dim=16,
        feature_dim=3,
        hidden_dim=24,
        max_length=16,
        seed=config.seed,
    )


def _channel_evaluate(
    codec: SemanticCodec,
    sentences: list[str],
    snr_db: float,
    quantization_bits: int,
    seed: int,
) -> Dict[str, float]:
    """End-to-end fidelity of ``codec`` through quantization and an AWGN channel."""
    pipeline = SemanticTransmissionPipeline(
        quantization=QuantizationSpec(bits_per_value=quantization_bits),
        channel=PhysicalChannel(modulation="qpsk", snr_db=snr_db, seed=seed),
    )
    accuracies = []
    bleus = []
    for sentence in sentences:
        encoded = codec.encode_message(sentence)
        result = pipeline.transmit_features(encoded.features)
        restored = codec.decode_features(result.received_features)
        reference = simple_tokenize(sentence)
        hypothesis = simple_tokenize(restored)
        accuracies.append(token_accuracy(reference, hypothesis))
        bleus.append(bleu_score(reference, hypothesis))
    return {"token_accuracy": float(np.mean(accuracies)), "bleu": float(np.mean(bleus))}


def _cross_domain_accuracy(
    encoder_codec: SemanticCodec, decoder_codec: SemanticCodec, sentences: list[str]
) -> float:
    """Accuracy when encoding with one domain's codec and decoding with another's.

    Feature spaces are not shared across independently trained codecs, which is
    exactly the sender/receiver KB mismatch the paper warns about.
    """
    accuracies = []
    for sentence in sentences:
        encoded = encoder_codec.encode_message(sentence)
        restored = decoder_codec.decode_features(encoded.features)
        accuracies.append(token_accuracy(simple_tokenize(sentence), simple_tokenize(restored)))
    return float(np.mean(accuracies))


# --------------------------------------------------------------------- #
# Parallel work units (module-level so a process pool can dispatch them)
# --------------------------------------------------------------------- #
def _train_specialized(payload) -> SemanticCodec:
    """Train one domain-specialized codec — one unit of the training fan-out."""
    domain, sentences, codec_config, train_epochs, seed = payload
    return SemanticCodec.from_corpus(
        sentences, config=codec_config, domain=domain, train_epochs=train_epochs, seed=seed
    )


def _train_general(payload) -> SemanticCodec:
    """Train the pooled general baseline codec (same capacity, all domains)."""
    sentences_by_domain, codec_config, train_epochs, seed = payload
    baseline = GeneralOnlyBaseline(config=codec_config).fit(
        sentences_by_domain, train_epochs=train_epochs, seed=seed
    )
    return baseline.codec


def _train_unit(payload) -> SemanticCodec:
    """Dispatch one training unit (general baseline or one specialized codec)."""
    kind, inner = payload
    return _train_general(inner) if kind == "general" else _train_specialized(inner)


def _evaluate_domain_row(payload) -> dict:
    """Channel-evaluate one domain's specialized and general codecs."""
    domain, specialized_codec, general_codec, sentences, snr_db, quantization_bits, seed = payload
    specialized_metrics = _channel_evaluate(specialized_codec, sentences, snr_db, quantization_bits, seed)
    general_metrics = _channel_evaluate(general_codec, sentences, snr_db, quantization_bits, seed)
    return dict(
        domain=domain,
        specialized_token_accuracy=specialized_metrics["token_accuracy"],
        general_token_accuracy=general_metrics["token_accuracy"],
        specialized_bleu=specialized_metrics["bleu"],
        general_bleu=general_metrics["bleu"],
        specialization_gain=specialized_metrics["token_accuracy"] - general_metrics["token_accuracy"],
    )


def _cross_domain_row(payload) -> dict:
    """One row of the cross-domain mismatch matrix (fixed encoder domain)."""
    encoder_domain, encoder_codec, decoder_codecs, sentences = payload
    row = {"encoder_domain": encoder_domain}
    for decoder_domain, decoder_codec in decoder_codecs.items():
        row[f"decode_{decoder_domain}"] = _cross_domain_accuracy(encoder_codec, decoder_codec, sentences)
    return row


@register_experiment("e2")
def run(
    config: Optional[ExperimentConfig] = None,
    num_test_sentences: int = 30,
    snr_db: float = 6.0,
    quantization_bits: int = 4,
) -> Dict[str, ResultTable]:
    """Run E2; returns the specialization table and the cross-domain mismatch matrix."""
    config = config or ExperimentConfig()
    runner = config.runner()
    corpora = generate_all_corpora(config.scaled(config.sentences_per_domain), seed=config.seed)
    test_count = config.scaled(num_test_sentences, minimum=6)
    codec_config = _codec_config(config)
    domains = list(corpora)
    sentences_by_domain = {domain: list(corpus.sentences) for domain, corpus in corpora.items()}

    # Training fan-out: every domain-specialized codec plus the pooled general
    # baseline is an independent, seed-determined unit — the dominant cost of
    # the experiment runs ``jobs``-wide with bit-identical weights.  The
    # general codec (the largest unit) is submitted first for pool packing.
    training_payloads = [
        ("general", (sentences_by_domain, codec_config, config.train_epochs, config.seed))
    ] + [
        ("domain", (domain, sentences_by_domain[domain], codec_config, config.train_epochs, config.seed))
        for domain in domains
    ]
    trained = runner.map(_train_unit, training_payloads)
    general_codec = trained[0]
    specialized: Dict[str, SemanticCodec] = dict(zip(domains, trained[1:]))

    main = ResultTable(
        name="e2_domain_specialization",
        description=(
            "End-to-end token accuracy per domain through 4-bit quantization and a 6 dB AWGN "
            "channel: one shared general codec vs domain-specialized codecs of equal capacity."
        ),
    )
    evaluation_payloads = [
        (
            domain,
            specialized[domain],
            general_codec,
            sentences_by_domain[domain][:test_count],
            snr_db,
            quantization_bits,
            config.seed,
        )
        for domain in domains
    ]
    for row in runner.map(_evaluate_domain_row, evaluation_payloads):
        main.add_row(**row)

    cross = ResultTable(
        name="e2_cross_domain_mismatch",
        description=(
            "Token accuracy when the sender encodes with the row domain's codec and the "
            "receiver decodes with the column domain's codec (diagonal = matched KBs)."
        ),
    )
    cross_payloads = [
        (
            encoder_domain,
            specialized[encoder_domain],
            specialized,
            sentences_by_domain[encoder_domain][: max(6, test_count // 2)],
        )
        for encoder_domain in domains
    ]
    for row in runner.map(_cross_domain_row, cross_payloads):
        cross.add_row(**row)

    return {"specialization": main, "cross_domain": cross}
