"""E3 — User-specific individual models vs the frozen general model.

Paper claim (Section II-B): a general model "may not accurately capture the
nuances and context-specific language usage of individual users"; training a
user-specific model from the general one improves accuracy.  We give each
synthetic user a personal style (word substitutions and pet phrases the
general corpus never contains), stream their messages through the system so
the domain buffer fills, fine-tune the individual model at increasing amounts
of buffered data, and track the accuracy gap to the general model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, IndividualModel, SemanticCodec
from repro.utils.rng import new_rng
from repro.workloads import UserStyle, default_domains
from repro.workloads.generator import _CANDIDATE_SUBSTITUTIONS, _PET_PHRASES


def _user_vocabulary_universe() -> List[str]:
    """Every word a user style could introduce beyond the domain corpora."""
    words: List[str] = []
    for options in _CANDIDATE_SUBSTITUTIONS.values():
        words.extend(options)
    for phrase in _PET_PHRASES:
        words.extend(phrase.split())
    return sorted(set(words))


def _strong_styled_users(num_users: int, domains, rng: np.random.Generator) -> List[UserStyle]:
    """Users with pronounced personal styles.

    Every candidate substitution is adopted (with a per-user random variant)
    and pet phrases are frequent, so the style gap between the general corpus
    and a user's own messages is substantial — the regime Section II-B argues
    individual models are needed for.
    """
    users: List[UserStyle] = []
    domain_names = list(domains)
    for index in range(num_users):
        substitutions = {
            word: options[int(rng.integers(len(options)))]
            for word, options in _CANDIDATE_SUBSTITUTIONS.items()
        }
        phrases = [
            _PET_PHRASES[int(i)] for i in rng.choice(len(_PET_PHRASES), size=2, replace=False)
        ]
        users.append(
            UserStyle(
                user_id=f"user_{index}",
                substitutions=substitutions,
                pet_phrases=phrases,
                pet_phrase_probability=0.5,
                favourite_domain=domain_names[index % len(domain_names)],
                domain_affinity=0.9,
            )
        )
    return users


def _user_rows(payload) -> List[dict]:
    """One user's full learning curve — one unit of the E3 fan-out.

    Trains the user's general codec, then fine-tunes an individual model at
    each transaction budget; all draws come from the explicit seed, so the
    rows are identical wherever the unit runs.
    """
    (
        user_id,
        domain,
        corpus,
        train_pool,
        test_pool,
        codec_config,
        train_epochs,
        transactions_per_step,
        fine_tune_epochs,
        fine_tune_learning_rate,
        extra_tokens,
        seed,
    ) = payload
    general = SemanticCodec.from_corpus(
        corpus,
        config=codec_config,
        domain=domain,
        train_epochs=train_epochs,
        seed=seed,
        extra_tokens=extra_tokens,
    )
    general_metrics = general.evaluate(test_pool)
    rows = [
        dict(
            user_id=user_id,
            domain=domain,
            buffered_transactions=0,
            model="general",
            token_accuracy=general_metrics["token_accuracy"],
            bleu=general_metrics["bleu"],
        )
    ]
    for budget in transactions_per_step:
        individual = IndividualModel(user_id, domain, general)
        individual.fine_tune(
            train_pool[:budget],
            epochs=fine_tune_epochs,
            learning_rate=fine_tune_learning_rate,
            seed=seed,
            collect_decoder_gradient=False,
        )
        metrics = individual.codec.evaluate(test_pool)
        rows.append(
            dict(
                user_id=user_id,
                domain=domain,
                buffered_transactions=budget,
                model="individual",
                token_accuracy=metrics["token_accuracy"],
                bleu=metrics["bleu"],
            )
        )
    return rows


@register_experiment("e3")
def run(
    config: Optional[ExperimentConfig] = None,
    num_users: int = 3,
    transactions_per_step: Sequence[int] = (8, 16, 32, 64),
    num_test_messages: int = 30,
    fine_tune_epochs: int = 6,
    fine_tune_learning_rate: float = 5e-3,
) -> ResultTable:
    """Run E3 and return the individual-vs-general learning-curve table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    domains = default_domains()
    codec_config = CodecConfig(
        architecture=config.codec_architecture,
        embedding_dim=24,
        feature_dim=6,
        hidden_dim=48,
        max_length=16,
        seed=config.seed,
    )

    # One general codec per user's favourite domain, trained on style-free
    # corpus text but with the user-vocabulary universe in its vocabulary.
    users = _strong_styled_users(num_users, domains, rng)
    extra_tokens = _user_vocabulary_universe()

    table = ResultTable(
        name="e3_individual_models",
        description=(
            "Token accuracy on each user's personal test messages: frozen general codec vs the "
            "user's individual model fine-tuned on growing amounts of buffered transactions."
        ),
    )

    max_transactions = max(transactions_per_step)
    # Sampling stays serial on the shared experiment RNG (the draw order is
    # part of the results); the expensive per-user training/fine-tuning below
    # is seed-determined and fans out across the pool.
    payloads = []
    for user in users:
        domain = user.favourite_domain or list(domains)[0]
        spec = domains[domain]
        corpus = [spec.sample_sentence(rng) for _ in range(config.scaled(config.sentences_per_domain))]
        # The user's personal message stream (style applied on top of the domain grammar).
        personal_messages = [
            user.apply(spec.sample_sentence(rng), rng) for _ in range(max_transactions + num_test_messages)
        ]
        payloads.append(
            (
                user.user_id,
                domain,
                corpus,
                personal_messages[:max_transactions],
                personal_messages[max_transactions:],
                codec_config,
                config.train_epochs,
                tuple(transactions_per_step),
                fine_tune_epochs,
                fine_tune_learning_rate,
                extra_tokens,
                config.seed,
            )
        )
    for rows in config.runner().map(_user_rows, payloads):
        for row in rows:
            table.add_row(**row)
    return table
