"""Fig. 1 — End-to-end validation of the four-step caching/update workflow.

The paper's only figure annotates four steps:

①  The sender edge server caches both domain-specialized general encoders and
    decoders.
②  One encoder and its corresponding decoder are selected and cached for each
    user to create their individual model.
③  Communication transactions are stored in a buffer to calculate the update
    gradient.
④  The gradient is sent to the receiver to update the individual decoder at
    the receiver edge.

This experiment drives one user's conversation through a small system and
records a measurable artefact for every step, so the workflow table doubles as
an integration check of the whole reproduction.
"""

from __future__ import annotations

from typing import Optional

from repro.core import SemanticEdgeSystem, SystemConfig
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.federated.sync import parameter_drift
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig
from repro.workloads import MessageGenerator, build_user_population


@register_experiment("fig1")
def run(config: Optional[ExperimentConfig] = None, num_messages: int = 24) -> ResultTable:
    """Run the Fig. 1 workflow and return the per-step evidence table."""
    config = config or ExperimentConfig()
    system_config = SystemConfig(
        codec=CodecConfig(
            architecture=config.codec_architecture,
            embedding_dim=24,
            feature_dim=6,
            hidden_dim=48,
            max_length=16,
            seed=config.seed,
        ),
        channel_snr_db=12.0,
        individual_threshold=6,
        fine_tune_epochs=1,
        account_compute=True,
    )
    system = SemanticEdgeSystem.pretrained(
        sentences_per_domain=config.scaled(config.sentences_per_domain),
        train_epochs=config.train_epochs,
        config=system_config,
        seed=config.seed,
    )
    session = system.open_session("user_0", "user_1", channel_seed=config.seed)

    users = build_user_population(1, seed=config.seed)
    generator = MessageGenerator(users, domain_persistence=0.9, seed=config.seed + 1)
    messages = generator.generate("user_0", config.scaled(num_messages, minimum=10))

    # Step ① evidence: general models resident in the sender cache before traffic.
    general_keys_before = [key for key in system.sender.cache.keys() if key.startswith("general/")]

    sync_events = 0
    for item in messages:
        report = session.send_text("user_0", "user_1", item.text, domain_hint=item.domain)
        sync_events += int(report.sync_triggered)

    # Step ② evidence: individual models created and cached for the user.
    individual_keys = [key for key in system.sender.cache.keys() if key.startswith("individual/")]
    # Step ③ evidence: transactions accumulated in the per-domain buffers.
    buffered = sum(buffer.total_added for _, buffer in system.sender.buffers.items())
    # Step ④ evidence: receiver-side individual decoders received gradient syncs
    # and track the sender's decoder closely.
    drifts = []
    for (user_id, domain), individual in system.sender.individual_models.items():
        if system.receiver.has_individual_decoder(user_id, domain):
            drifts.append(
                parameter_drift(
                    individual.codec.decoder, system.receiver.individual_decoders[(user_id, domain)]
                )
            )
    mean_drift = sum(drifts) / len(drifts) if drifts else float("nan")
    summary = system.summary()

    table = ResultTable(
        name="fig1_workflow",
        description="Measured evidence for each numbered step of the paper's Fig. 1 workflow.",
    )
    table.add_row(
        step="1-general-models-cached",
        quantity=float(len(general_keys_before)),
        detail=f"general KBs resident at sender edge: {sorted(general_keys_before)}",
    )
    table.add_row(
        step="2-individual-models-created",
        quantity=float(len(individual_keys)),
        detail=f"individual models cached: {sorted(individual_keys)}",
    )
    table.add_row(
        step="3-transactions-buffered",
        quantity=float(buffered),
        detail="communication transactions stored in domain buffers b_m",
    )
    table.add_row(
        step="4-gradient-syncs-to-receiver",
        quantity=float(sync_events),
        detail=f"decoder gradient updates shipped; mean sender/receiver decoder drift = {mean_drift:.2e}",
    )
    table.add_row(
        step="end-to-end-quality",
        quantity=1.0 - summary["mean_mismatch"],
        detail=f"mean semantic fidelity over {int(summary['deliveries'])} deliveries",
    )
    table.add_row(
        step="end-to-end-payload-bytes",
        quantity=summary["total_payload_bytes"] / max(summary["deliveries"], 1.0),
        detail="mean semantic payload per message (bytes)",
    )
    return table
