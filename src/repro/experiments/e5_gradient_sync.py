"""E5 — Decoder-gradient synchronization vs shipping full decoder weights.

Paper claim (Section II-D): after the individual model is trained on the
sender edge, only "the gradient of decoder ∇d will be transmitted to the
receiver to synchronize", like federated learning.  The experiment measures
the synchronization payload per round for (i) full decoder weights, (ii) the
dense decoder gradient, and (iii) top-k compressed gradients at several
sparsity levels, and verifies that the receiver's replica stays usable (its
restoration accuracy on the user's messages) under each scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.edge.network import build_linear_topology
from repro.experiments.harness import ExperimentConfig, register_experiment
from repro.federated import (
    DecoderSynchronizer,
    GradientUpdate,
    SyncConfig,
    compress_topk,
    compression_error,
    parameter_drift,
)
from repro.metrics.reporting import ResultTable
from repro.semantic import CodecConfig, IndividualModel, SemanticCodec
from repro.semantic.decoder import SemanticDecoder
from repro.text import token_accuracy
from repro.text.tokenizer import simple_tokenize
from repro.utils.rng import new_rng
from repro.workloads import build_user_population, default_domains


def _replica_accuracy(codec: SemanticCodec, decoder: SemanticDecoder, sentences: Sequence[str]) -> float:
    """Accuracy when encoding with the sender codec and decoding with ``decoder``."""
    accuracies = []
    for sentence in sentences:
        encoded = codec.encode_message(sentence)
        ids = decoder.decode_greedy(encoded.features[None, ...])[0]
        restored = codec.tokenizer.detokenize(codec.vocabulary.decode(ids))
        accuracies.append(token_accuracy(simple_tokenize(sentence), simple_tokenize(restored)))
    return float(np.mean(accuracies))


@register_experiment("e5")
def run(
    config: Optional[ExperimentConfig] = None,
    num_user_messages: int = 32,
    topk_fractions: Sequence[float] = (0.25, 0.1, 0.05),
    num_rounds: int = 3,
) -> ResultTable:
    """Run E5 and return the synchronization-cost table."""
    config = config or ExperimentConfig()
    rng = new_rng(config.seed)
    domains = default_domains()
    user = build_user_population(1, seed=config.seed)[0]
    domain = user.favourite_domain or "it"
    spec = domains[domain]

    codec_config = CodecConfig(
        architecture=config.codec_architecture,
        embedding_dim=24,
        feature_dim=6,
        hidden_dim=48,
        max_length=16,
        seed=config.seed,
    )
    corpus = [spec.sample_sentence(rng) for _ in range(config.scaled(config.sentences_per_domain))]
    from repro.experiments.e3_individual_models import _user_vocabulary_universe

    general = SemanticCodec.from_corpus(
        corpus,
        config=codec_config,
        domain=domain,
        train_epochs=config.train_epochs,
        seed=config.seed,
        extra_tokens=_user_vocabulary_universe(),
    )
    user_messages = [user.apply(spec.sample_sentence(rng), rng) for _ in range(num_user_messages)]

    topology = build_linear_topology(num_edge_servers=2, devices_per_server=0)
    decoder_bytes = general.decoder.num_parameters() * 4.0

    table = ResultTable(
        name="e5_gradient_sync",
        description=(
            "Per-round synchronization payload and post-sync replica accuracy for full-model shipping, "
            "dense decoder gradients, and top-k compressed gradients."
        ),
    )

    schemes: List[Dict] = [{"name": "full-model", "compress": None}]
    schemes.append({"name": "dense-gradient", "compress": None, "gradient": True})
    for fraction in topk_fractions:
        schemes.append({"name": f"topk-{fraction}", "compress": fraction, "gradient": True})

    for scheme in schemes:
        individual = IndividualModel(user.user_id, domain, general)
        replica = SemanticDecoder(len(general.vocabulary), general.config)
        replica.load_state_dict(general.decoder.state_dict())
        synchronizer = DecoderSynchronizer(
            topology,
            sender_node="edge_0",
            receiver_node="edge_1",
            config=SyncConfig(
                compress=scheme.get("compress") is not None,
                topk_fraction=scheme.get("compress") or 0.1,
            ),
        )
        relative_error = 0.0
        for round_index in range(num_rounds):
            result = individual.fine_tune(
                user_messages, epochs=1, seed=config.seed + round_index, collect_decoder_gradient=True
            )
            if scheme["name"] == "full-model":
                synchronizer.ship_full_model(individual.codec.decoder.state_dict())
                replica.load_state_dict(individual.codec.decoder.state_dict())
            else:
                update = GradientUpdate(
                    user_id=user.user_id,
                    domain=domain,
                    round_index=round_index,
                    gradients=result.decoder_gradients,
                    learning_rate=2e-3,
                )
                if scheme.get("compress") is not None:
                    compressed = compress_topk(update, fraction=scheme["compress"])
                    relative_error = compression_error(update, compressed)
                synchronizer.synchronize(update, replica)
        accuracy = _replica_accuracy(individual.codec, replica, user_messages[: min(16, len(user_messages))])
        drift = parameter_drift(individual.codec.decoder, replica)
        table.add_row(
            scheme=scheme["name"],
            rounds=num_rounds,
            bytes_per_round=synchronizer.total_bytes() / num_rounds,
            total_bytes=synchronizer.total_bytes(),
            bytes_vs_full_model=synchronizer.total_bytes() / (decoder_bytes * num_rounds),
            replica_token_accuracy=accuracy,
            parameter_drift=drift,
            compression_error=relative_error,
        )
    return table
