"""Experiment implementations (E1-E8 plus the Fig. 1 workflow validation).

Importing this package registers every experiment with
:mod:`repro.experiments.harness`, so ``run_experiment("e1")`` works after a
plain ``import repro.experiments``.
"""

from repro.experiments import (  # noqa: F401  (imported for registration side effects)
    ablation_quantization,
    e1_semantic_vs_traditional,
    e2_domain_specialization,
    e3_individual_models,
    e4_decoder_copy,
    e5_gradient_sync,
    e6_model_selection,
    e7_cache_policies,
    e8_edge_offloading,
    e9_multicell_scale,
    e10_scenario_stress,
    e11_resilience,
    e12_placement,
    fig1_workflow,
)
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentSuite,
    available_experiments,
    run_experiment,
    tables_of,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentSuite",
    "run_experiment",
    "available_experiments",
    "tables_of",
]
