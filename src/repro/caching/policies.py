"""Cache eviction policies.

Besides the classic LRU/LFU/FIFO baselines, :class:`SemanticPopularityPolicy`
implements the caching behaviour the paper argues for: keep the models whose
*domains* are popular and whose *rebuild cost* is high (individual models that
took many transactions to fine-tune are expensive to lose).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.caching.entry import CacheEntry
from repro.utils.registry import Registry

policy_registry: Registry["EvictionPolicy"] = Registry("cache-policy")


class EvictionPolicy:
    """Chooses which cache entry to evict when space is needed."""

    name = "base"

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        """Hook called when ``entry`` is inserted (default: nothing)."""

    def on_access(self, entry: CacheEntry, now: float) -> None:
        """Hook called when ``entry`` is accessed (default: nothing)."""

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        """Return the entry that should be evicted."""
        raise NotImplementedError


@policy_registry.register("fifo")
class FifoPolicy(EvictionPolicy):
    """Evict the entry inserted earliest."""

    name = "fifo"

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: entry.insert_time)


@policy_registry.register("lru")
class LruPolicy(EvictionPolicy):
    """Evict the least-recently-used entry."""

    name = "lru"

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: entry.last_access_time)


@policy_registry.register("lfu")
class LfuPolicy(EvictionPolicy):
    """Evict the least-frequently-used entry (ties broken by recency)."""

    name = "lfu"

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: (entry.access_count, entry.last_access_time))


@policy_registry.register("size-aware")
class SizeAwarePolicy(EvictionPolicy):
    """Evict the entry with the lowest access density (accesses per byte).

    Large, rarely-used models go first, which suits caches mixing small
    individual models with large general models.
    """

    name = "size-aware"

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        def density(entry: CacheEntry) -> float:
            return entry.access_count / max(entry.size_bytes, 1)

        return min(entries, key=lambda entry: (density(entry), entry.last_access_time))


@policy_registry.register("semantic-popularity")
class SemanticPopularityPolicy(EvictionPolicy):
    """Domain-popularity- and rebuild-cost-aware eviction.

    Each entry's retention score is::

        score = domain_popularity * recency_decay + rebuild_cost_weight * build_cost

    where domain popularity is an exponentially-weighted count of accesses to
    *any* model of that domain.  Individual models inherit their domain's
    popularity, capturing the paper's point that caching the general model of
    a popular domain also benefits every user deriving an individual model
    from it.
    """

    name = "semantic-popularity"

    def __init__(self, decay: float = 0.9, rebuild_cost_weight: float = 0.1) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.rebuild_cost_weight = rebuild_cost_weight
        self._domain_popularity: Dict[str, float] = {}

    def on_access(self, entry: CacheEntry, now: float) -> None:
        for domain in self._domain_popularity:
            self._domain_popularity[domain] *= self.decay
        self._domain_popularity[entry.domain] = self._domain_popularity.get(entry.domain, 0.0) + 1.0

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._domain_popularity.setdefault(entry.domain, 0.0)

    def domain_popularity(self, domain: str) -> float:
        """Current popularity score of ``domain``."""
        return self._domain_popularity.get(domain, 0.0)

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        def retention_score(entry: CacheEntry) -> float:
            recency = 1.0 / (1.0 + max(now - entry.last_access_time, 0.0))
            popularity = self._domain_popularity.get(entry.domain, 0.0)
            return popularity * recency + self.rebuild_cost_weight * entry.build_cost_s

        return min(entries, key=lambda entry: (retention_score(entry), entry.last_access_time))


def make_policy(name: str, **kwargs: float) -> EvictionPolicy:
    """Instantiate an eviction policy by registry name."""
    return policy_registry.create(name, **kwargs)


def available_policies() -> List[str]:
    """Names of all registered eviction policies."""
    return policy_registry.names()
