"""Cache eviction policies.

Besides the classic LRU/LFU/FIFO baselines, :class:`SemanticPopularityPolicy`
implements the caching behaviour the paper argues for: keep the models whose
*domains* are popular and whose *rebuild cost* is high (individual models that
took many transactions to fine-tune are expensive to lose).

Victim selection is structured in two layers:

* :meth:`EvictionPolicy.select_victim` is the *reference* implementation — a
  linear scan over the given candidates.  It defines each policy's semantics
  and stays the fallback for policies whose priorities change globally over
  time (``semantic-popularity``'s scores decay on every access, so no static
  ordering can hold them).
* :meth:`EvictionPolicy.pop_victim` is the *fast* path the cache calls on its
  resident-entry map.  LRU/FIFO maintain an access-ordered ``OrderedDict``
  (victim = first unpinned entry, O(1) amortized); LFU and size-aware keep a
  lazy-deletion heap of ``(priority, entry)`` snapshots where stale snapshots
  are discarded on pop (O(log n) amortized).  Both agree with the reference
  scan whenever timestamps are distinct; exact ties may be broken differently
  (by access order instead of map insertion order), which no simulation with
  continuous timestamps can observe.

A policy instance carries per-cache state (orderings, heaps, popularity
counters), so each :class:`~repro.caching.cache.SemanticModelCache` needs its
own instance — never share one across caches.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.caching.entry import CacheEntry
from repro.utils.registry import Registry

policy_registry: Registry["EvictionPolicy"] = Registry("cache-policy")


class EvictionPolicy:
    """Chooses which cache entry to evict when space is needed."""

    name = "base"

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        """Hook called when ``entry`` is inserted (default: nothing)."""

    def on_access(self, entry: CacheEntry, now: float) -> None:
        """Hook called when ``entry`` is accessed (default: nothing)."""

    def on_remove(self, entry: CacheEntry) -> None:
        """Hook called when ``entry`` leaves the cache (default: nothing)."""

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        """Return the entry that should be evicted (reference linear scan)."""
        raise NotImplementedError

    def pop_victim(self, entries: Dict[str, CacheEntry], now: float) -> Optional[CacheEntry]:
        """Victim among the resident ``entries``, skipping pinned ones.

        The base implementation delegates to :meth:`select_victim` over the
        unpinned candidates, preserving the O(n) behaviour for third-party
        policies; the built-in baselines override it with O(1)/O(log n)
        structures.  Returns ``None`` when every entry is pinned.
        """
        candidates = [entry for entry in entries.values() if not entry.pinned]
        if not candidates:
            return None
        return self.select_victim(candidates, now)


class _OrderedPolicy(EvictionPolicy):
    """Shared machinery for policies whose victim is the head of an ordering."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._order[entry.key] = entry
        self._order.move_to_end(entry.key)

    def on_remove(self, entry: CacheEntry) -> None:
        self._order.pop(entry.key, None)

    def pop_victim(self, entries: Dict[str, CacheEntry], now: float) -> Optional[CacheEntry]:
        for entry in self._order.values():
            # The residency check guards against a policy instance wrongly
            # shared across caches: a foreign entry must never be returned as
            # a victim to a cache that does not hold it (sharing is still
            # unsupported — per-cache orderings diverge — but it must not
            # corrupt the calling cache).
            if not entry.pinned and entries.get(entry.key) is entry:
                return entry
        return None


@policy_registry.register("fifo")
class FifoPolicy(_OrderedPolicy):
    """Evict the entry inserted earliest."""

    name = "fifo"

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: entry.insert_time)


@policy_registry.register("lru")
class LruPolicy(_OrderedPolicy):
    """Evict the least-recently-used entry."""

    name = "lru"

    def on_access(self, entry: CacheEntry, now: float) -> None:
        if entry.key in self._order:
            self._order.move_to_end(entry.key)

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: entry.last_access_time)


class _HeapPolicy(EvictionPolicy):
    """Lazy-deletion heap of ``(priority..., key)`` snapshots.

    Every insert/access pushes a fresh snapshot of the entry's priority; pops
    discard snapshots that no longer match the entry's current state (or an
    entry that is gone).  The policy mirrors the resident-entry map (updated
    through the insert/remove hooks) so the heap can be compacted whenever
    stale snapshots dominate — on push as well as on pop, since a cache whose
    working set fits capacity may never need a victim yet still accumulates
    one snapshot per hit.  Memory therefore stays O(resident entries).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._resident: Dict[str, CacheEntry] = {}

    def _priority(self, entry: CacheEntry) -> Tuple:
        """Current priority tuple of ``entry`` (lowest evicts first)."""
        raise NotImplementedError

    def _push(self, entry: CacheEntry) -> None:
        heapq.heappush(self._heap, self._priority(entry) + (entry.key,))
        if len(self._heap) > 4 * len(self._resident) + 64:
            self._compact()

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._resident[entry.key] = entry
        self._push(entry)

    def on_access(self, entry: CacheEntry, now: float) -> None:
        self._push(entry)

    def on_remove(self, entry: CacheEntry) -> None:
        self._resident.pop(entry.key, None)

    def pop_victim(self, entries: Dict[str, CacheEntry], now: float) -> Optional[CacheEntry]:
        heap = self._heap
        skipped_pinned: List[Tuple] = []
        victim: Optional[CacheEntry] = None
        while heap:
            snapshot = heap[0]
            entry = entries.get(snapshot[-1])
            if entry is None or self._priority(entry) + (entry.key,) != snapshot:
                heapq.heappop(heap)  # stale: entry gone or re-prioritized since
                continue
            if entry.pinned:
                skipped_pinned.append(heapq.heappop(heap))
                continue
            victim = entry
            break
        for snapshot in skipped_pinned:
            heapq.heappush(heap, snapshot)
        return victim

    def _compact(self) -> None:
        self._heap = [self._priority(entry) + (entry.key,) for entry in self._resident.values()]
        heapq.heapify(self._heap)


@policy_registry.register("lfu")
class LfuPolicy(_HeapPolicy):
    """Evict the least-frequently-used entry (ties broken by recency)."""

    name = "lfu"

    def _priority(self, entry: CacheEntry) -> Tuple:
        return (entry.access_count, entry.last_access_time)

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        return min(entries, key=lambda entry: (entry.access_count, entry.last_access_time))


@policy_registry.register("size-aware")
class SizeAwarePolicy(_HeapPolicy):
    """Evict the entry with the lowest access density (accesses per byte).

    Large, rarely-used models go first, which suits caches mixing small
    individual models with large general models.
    """

    name = "size-aware"

    def _priority(self, entry: CacheEntry) -> Tuple:
        return (entry.access_count / max(entry.size_bytes, 1), entry.last_access_time)

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        def density(entry: CacheEntry) -> float:
            return entry.access_count / max(entry.size_bytes, 1)

        return min(entries, key=lambda entry: (density(entry), entry.last_access_time))


@policy_registry.register("semantic-popularity")
class SemanticPopularityPolicy(EvictionPolicy):
    """Domain-popularity- and rebuild-cost-aware eviction.

    Each entry's retention score is::

        score = domain_popularity * recency_decay + rebuild_cost_weight * build_cost

    where domain popularity is an exponentially-weighted count of accesses to
    *any* model of that domain.  Individual models inherit their domain's
    popularity, capturing the paper's point that caching the general model of
    a popular domain also benefits every user deriving an individual model
    from it.

    Because every access decays the popularity of *all* domains (and the
    recency term depends on ``now``), entry priorities change without the
    entries being touched — so this policy keeps the reference linear scan
    instead of a heap; no static ordering could stay valid.
    """

    name = "semantic-popularity"

    def __init__(self, decay: float = 0.9, rebuild_cost_weight: float = 0.1) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.rebuild_cost_weight = rebuild_cost_weight
        self._domain_popularity: Dict[str, float] = {}

    def on_access(self, entry: CacheEntry, now: float) -> None:
        for domain in self._domain_popularity:
            self._domain_popularity[domain] *= self.decay
        self._domain_popularity[entry.domain] = self._domain_popularity.get(entry.domain, 0.0) + 1.0

    def on_insert(self, entry: CacheEntry, now: float) -> None:
        self._domain_popularity.setdefault(entry.domain, 0.0)

    def domain_popularity(self, domain: str) -> float:
        """Current popularity score of ``domain``."""
        return self._domain_popularity.get(domain, 0.0)

    def select_victim(self, entries: Iterable[CacheEntry], now: float) -> CacheEntry:
        def retention_score(entry: CacheEntry) -> float:
            recency = 1.0 / (1.0 + max(now - entry.last_access_time, 0.0))
            popularity = self._domain_popularity.get(entry.domain, 0.0)
            return popularity * recency + self.rebuild_cost_weight * entry.build_cost_s

        return min(entries, key=lambda entry: (retention_score(entry), entry.last_access_time))


def make_policy(name: str, **kwargs: float) -> EvictionPolicy:
    """Instantiate an eviction policy by registry name."""
    return policy_registry.create(name, **kwargs)


def available_policies() -> List[str]:
    """Names of all registered eviction policies."""
    return policy_registry.names()
