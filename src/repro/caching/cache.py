"""The semantic model cache hosted on an edge server.

This is the centrepiece of the paper's proposal: a byte-budgeted cache of
domain-specialized general models and user-specific individual models, with
pluggable eviction policies and hit/miss/latency accounting so experiments can
quantify how much caching reduces the time to establish knowledge bases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.caching.entry import (
    GENERAL_MODEL,
    INDIVIDUAL_MODEL,
    CacheEntry,
    general_model_key,
    individual_model_key,
)
from repro.caching.policies import EvictionPolicy, make_policy
from repro.exceptions import CacheError


@dataclass
class CacheStatistics:
    """Hit/miss and byte-movement counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejections: int = 0
    bytes_admitted: int = 0
    bytes_evicted: int = 0
    miss_cost_s: float = 0.0
    #: Entries dropped by an explicit :meth:`SemanticModelCache.wipe` (a cold
    #: restart), counted separately from capacity evictions.
    wipes: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class SemanticModelCache:
    """Byte-budgeted cache of semantic models with pluggable eviction.

    Parameters
    ----------
    capacity_bytes:
        Storage budget of the hosting edge server.  A budget of ``0`` is a
        valid degenerate configuration (the "caching disabled" baseline):
        every lookup misses, every insertion is rejected, and the hit ratio
        and byte counters stay well defined at zero.
    policy:
        An :class:`EvictionPolicy` instance or registry name.
    """

    def __init__(self, capacity_bytes: int, policy: EvictionPolicy | str = "lru") -> None:
        if capacity_bytes < 0:
            raise CacheError(f"capacity_bytes must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self._entries: Dict[str, CacheEntry] = {}
        # Byte accounting is incremental: maintained on insert/remove/pin
        # instead of re-summed per access (a 200k-request replay calls
        # used_bytes on every put).  assert_consistent() cross-checks it.
        self._used_bytes: int = 0
        self._pinned_bytes: int = 0
        self.statistics = CacheStatistics()
        self.clock: float = 0.0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied (tracked incrementally, O(1))."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._used_bytes

    @property
    def pinned_bytes(self) -> int:
        """Bytes held by entries currently protected from eviction."""
        return self._pinned_bytes

    def assert_consistent(self) -> None:
        """Verify the incremental byte counters against a full re-sum.

        Intended for tests and debugging; raises :class:`CacheError` on drift.
        """
        expected_used = sum(entry.size_bytes for entry in self._entries.values())
        expected_pinned = sum(entry.size_bytes for entry in self._entries.values() if entry.pinned)
        if self._used_bytes != expected_used or self._pinned_bytes != expected_pinned:
            raise CacheError(
                f"byte accounting drifted: used={self._used_bytes} (expected {expected_used}), "
                f"pinned={self._pinned_bytes} (expected {expected_pinned})"
            )

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        """Keys of all resident entries."""
        return list(self._entries)

    def entries(self) -> List[CacheEntry]:
        """All resident entries."""
        return list(self._entries.values())

    def advance_clock(self, now: float) -> None:
        """Move the cache's logical clock forward (never backwards)."""
        self.clock = max(self.clock, now)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: str, now: Optional[float] = None) -> Optional[CacheEntry]:
        """Look up ``key``; records a hit or miss and returns the entry or ``None``."""
        if now is not None and now > self.clock:  # advance_clock, inlined (hot path)
            self.clock = now
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            return None
        # entry.touch(self.clock), inlined: get() runs once per simulated
        # request and the extra method dispatch is measurable at 200k requests.
        entry.last_access_time = self.clock
        entry.access_count += 1
        self.policy.on_access(entry, self.clock)
        self.statistics.hits += 1
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Look up ``key`` without affecting statistics or recency."""
        return self._entries.get(key)

    def put(self, entry: CacheEntry, now: Optional[float] = None) -> List[CacheEntry]:
        """Insert ``entry``, evicting as needed; returns the evicted entries.

        Insertions that cannot succeed without disturbing *other* pinned
        entries — and every insertion into a zero-capacity cache — are
        *rejected* rather than raised: nothing is evicted,
        ``statistics.rejections`` is incremented, and an empty list is
        returned.  Two cases still raise, as caller errors rather than
        transient conditions: an entry larger than a non-zero capacity, and
        replacing a key that is itself pinned (its payload is in active use).
        """
        if now is not None and now > self.clock:  # advance_clock, inlined
            self.clock = now
        if self.capacity_bytes == 0:
            self.statistics.rejections += 1
            return []
        if entry.size_bytes > self.capacity_bytes:
            raise CacheError(
                f"entry {entry.key!r} ({entry.size_bytes} B) exceeds cache capacity "
                f"({self.capacity_bytes} B)"
            )
        existing = self._entries.get(entry.key)
        if existing is not None and existing.pinned:
            raise CacheError(f"cannot replace pinned entry {entry.key!r}")
        # Check feasibility before touching anything so a doomed insertion
        # does not leave the cache half-evicted.  Everything unpinned is
        # reclaimable, so only the pinned bytes are immovable.
        if self._pinned_bytes + entry.size_bytes > self.capacity_bytes:
            self.statistics.rejections += 1
            return []
        if existing is not None:
            self._remove(entry.key)
        evicted = self._evict_down_to(self.capacity_bytes - entry.size_bytes)
        if self._used_bytes + entry.size_bytes > self.capacity_bytes:
            raise CacheError("eviction required but every entry is pinned")  # unreachable
        entry.insert_time = self.clock
        entry.last_access_time = self.clock
        self._entries[entry.key] = entry
        self._used_bytes += entry.size_bytes
        if entry.pinned:
            self._pinned_bytes += entry.size_bytes
        self.policy.on_insert(entry, self.clock)
        self.statistics.insertions += 1
        self.statistics.bytes_admitted += entry.size_bytes
        return evicted

    def _evict_down_to(self, budget: int) -> List[CacheEntry]:
        """Policy-evict unpinned entries until ``used_bytes <= budget``.

        The one eviction-accounting sequence shared by :meth:`put` (making
        room for an insertion) and :meth:`resize` (shrinking the budget).
        Stops early — leaving the cache over ``budget`` — when everything
        left is pinned.
        """
        evicted: List[CacheEntry] = []
        while self._used_bytes > budget:
            victim = self.policy.pop_victim(self._entries, self.clock)
            if victim is None:  # everything left is pinned
                break
            evicted.append(self._remove(victim.key))
            self.statistics.evictions += 1
            self.statistics.bytes_evicted += victim.size_bytes
        return evicted

    def _remove(self, key: str) -> CacheEntry:
        entry = self._entries.pop(key, None)
        if entry is None:
            raise CacheError(f"key {key!r} is not cached")
        self._used_bytes -= entry.size_bytes
        if entry.pinned:
            self._pinned_bytes -= entry.size_bytes
        self.policy.on_remove(entry)
        return entry

    def remove(self, key: str) -> CacheEntry:
        """Explicitly remove ``key`` (raises if absent or pinned)."""
        entry = self._entries.get(key)
        if entry is not None and entry.pinned:
            raise CacheError(f"cannot remove pinned entry {key!r}")
        return self._remove(key)

    def wipe(self, now: Optional[float] = None) -> List[CacheEntry]:
        """Drop every unpinned entry (a cache cold-restart); returns them.

        Pinned entries survive: their payload is being copied to a neighbour
        cell right now, and dropping the transfer source mid-flight would
        corrupt the pin accounting.  Wiped entries are counted in
        ``statistics.wipes`` (not as capacity evictions).
        """
        if now is not None:
            self.advance_clock(now)
        wiped = [entry for entry in self._entries.values() if not entry.pinned]
        for entry in wiped:
            self._remove(entry.key)
        self.statistics.wipes += len(wiped)
        return wiped

    def resize(self, capacity_bytes: int, now: Optional[float] = None) -> List[CacheEntry]:
        """Change the byte budget mid-run, evicting down to it if shrunk.

        Evictions follow the configured policy and count as normal capacity
        evictions.  If pinned entries alone exceed the new budget the cache is
        left over-full (pins are never broken); subsequent insertions are
        rejected until pins release and usage drains below the budget.
        """
        if capacity_bytes < 0:
            raise CacheError(f"capacity_bytes must be non-negative, got {capacity_bytes}")
        if now is not None:
            self.advance_clock(now)
        self.capacity_bytes = capacity_bytes
        return self._evict_down_to(capacity_bytes)

    # ------------------------------------------------------------------ #
    # Pinning (protection of entries with in-flight readers)
    # ------------------------------------------------------------------ #
    def pin(self, key: str) -> CacheEntry:
        """Protect ``key`` from eviction until a matching :meth:`unpin`.

        The multi-cell simulator pins an entry while a neighbour cell is
        copying it over the backhaul, so the transfer source cannot be
        evicted mid-flight.  Pins nest: each ``pin`` needs one ``unpin``.
        """
        entry = self._entries.get(key)
        if entry is None:
            raise CacheError(f"cannot pin {key!r}: not cached")
        if entry.pin_count == 0:
            self._pinned_bytes += entry.size_bytes
        entry.pin_count += 1
        return entry

    def unpin(self, key: str) -> CacheEntry:
        """Release one pin on ``key`` (raises if absent or not pinned)."""
        entry = self._entries.get(key)
        if entry is None:
            raise CacheError(f"cannot unpin {key!r}: not cached")
        if entry.pin_count <= 0:
            raise CacheError(f"cannot unpin {key!r}: not pinned")
        entry.pin_count -= 1
        if entry.pin_count == 0:
            self._pinned_bytes -= entry.size_bytes
        return entry

    # ------------------------------------------------------------------ #
    # Model-oriented helpers
    # ------------------------------------------------------------------ #
    def get_or_build(
        self,
        key: str,
        builder: Callable[[], CacheEntry],
        now: Optional[float] = None,
    ) -> tuple[CacheEntry, bool]:
        """Return the cached entry for ``key`` or build and insert it.

        Returns ``(entry, was_hit)``.  On a miss the builder's
        ``build_cost_s`` is added to the cache's accumulated miss cost, which
        is how experiments measure the KB-establishment time the paper wants
        to save.
        """
        cached = self.get(key, now=now)
        if cached is not None:
            return cached, True
        entry = builder()
        if entry.key != key:
            raise CacheError(f"builder produced key {entry.key!r}, expected {key!r}")
        self.statistics.miss_cost_s += entry.build_cost_s
        self.put(entry, now=now)
        return entry, False

    def put_general_model(
        self,
        domain: str,
        payload: object,
        size_bytes: int,
        build_cost_s: float = 1.0,
        now: Optional[float] = None,
    ) -> CacheEntry:
        """Insert a domain-specialized general model."""
        entry = CacheEntry(
            key=general_model_key(domain),
            kind=GENERAL_MODEL,
            domain=domain,
            size_bytes=size_bytes,
            payload=payload,
            build_cost_s=build_cost_s,
        )
        self.put(entry, now=now)
        return entry

    def put_individual_model(
        self,
        user_id: str,
        domain: str,
        payload: object,
        size_bytes: int,
        build_cost_s: float = 1.0,
        now: Optional[float] = None,
    ) -> CacheEntry:
        """Insert a user-specific individual model."""
        entry = CacheEntry(
            key=individual_model_key(user_id, domain),
            kind=INDIVIDUAL_MODEL,
            domain=domain,
            user_id=user_id,
            size_bytes=size_bytes,
            payload=payload,
            build_cost_s=build_cost_s,
        )
        self.put(entry, now=now)
        return entry

    def general_model(self, domain: str, now: Optional[float] = None) -> Optional[CacheEntry]:
        """Lookup of the general model for ``domain``."""
        return self.get(general_model_key(domain), now=now)

    def individual_model(self, user_id: str, domain: str, now: Optional[float] = None) -> Optional[CacheEntry]:
        """Lookup of ``user_id``'s individual model for ``domain``."""
        return self.get(individual_model_key(user_id, domain), now=now)

    def resident_domains(self) -> List[str]:
        """Domains whose general model is currently cached."""
        return sorted(
            entry.domain for entry in self._entries.values() if entry.kind == GENERAL_MODEL
        )
