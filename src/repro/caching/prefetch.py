"""Popularity-based prefetching of general models.

When an edge server sees the distribution of incoming domains shift (for
example because a Metaverse venue fills up), it can prefetch the general
models of the domains it expects next instead of paying the miss cost at
request time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.caching.cache import SemanticModelCache
from repro.caching.entry import CacheEntry, general_model_key


@dataclass
class PrefetchDecision:
    """Outcome of one prefetch evaluation."""

    prefetched_domains: List[str]
    predicted_popularity: Dict[str, float]


class PopularityPrefetcher:
    """Sliding-window domain-popularity estimator with top-k prefetching.

    Parameters
    ----------
    window:
        Number of recent requests used to estimate popularity.
    top_k:
        How many domains to keep prefetched.
    """

    def __init__(self, window: int = 50, top_k: int = 2) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self.window = window
        self.top_k = top_k
        self._recent: Deque[str] = deque(maxlen=window)

    def observe(self, domain: str) -> None:
        """Record one observed request domain."""
        self._recent.append(domain)

    def popularity(self) -> Dict[str, float]:
        """Current empirical domain probabilities over the window."""
        if not self._recent:
            return {}
        counts: Dict[str, int] = {}
        for domain in self._recent:
            counts[domain] = counts.get(domain, 0) + 1
        total = len(self._recent)
        return {domain: count / total for domain, count in counts.items()}

    def top_domains(self) -> List[str]:
        """The ``top_k`` most popular domains (most popular first)."""
        popularity = self.popularity()
        return sorted(popularity, key=popularity.get, reverse=True)[: self.top_k]

    def prefetch(
        self,
        cache: SemanticModelCache,
        entry_builder: Callable[[str], CacheEntry],
        now: Optional[float] = None,
    ) -> PrefetchDecision:
        """Ensure the top-k domains' general models are cached.

        ``entry_builder(domain)`` must return a ready :class:`CacheEntry` for
        the general model of ``domain``; it is only called for domains that
        are not already resident.
        """
        prefetched: List[str] = []
        for domain in self.top_domains():
            key = general_model_key(domain)
            if cache.peek(key) is None:
                cache.put(entry_builder(domain), now=now)
                prefetched.append(domain)
        return PrefetchDecision(prefetched_domains=prefetched, predicted_popularity=self.popularity())
