"""Semantic caching: model cache entries, eviction policies, prefetching."""

from repro.caching.cache import CacheStatistics, SemanticModelCache
from repro.caching.entry import (
    GENERAL_MODEL,
    INDIVIDUAL_MODEL,
    MODEL_KINDS,
    CacheEntry,
    general_model_key,
    individual_model_key,
)
from repro.caching.policies import (
    EvictionPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    SemanticPopularityPolicy,
    SizeAwarePolicy,
    available_policies,
    make_policy,
    policy_registry,
)
from repro.caching.prefetch import PopularityPrefetcher, PrefetchDecision

__all__ = [
    "CacheEntry",
    "GENERAL_MODEL",
    "INDIVIDUAL_MODEL",
    "MODEL_KINDS",
    "general_model_key",
    "individual_model_key",
    "EvictionPolicy",
    "FifoPolicy",
    "LruPolicy",
    "LfuPolicy",
    "SizeAwarePolicy",
    "SemanticPopularityPolicy",
    "make_policy",
    "available_policies",
    "policy_registry",
    "SemanticModelCache",
    "CacheStatistics",
    "PopularityPrefetcher",
    "PrefetchDecision",
]
