"""Cache entries describing the models an edge server can hold.

The semantic cache stores two kinds of objects (Fig. 1 of the paper):
domain-specialized *general* models (encoder + decoder copy) and *individual*
models derived from them for specific users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: Kinds of cached objects.
GENERAL_MODEL = "general"
INDIVIDUAL_MODEL = "individual"
MODEL_KINDS = (GENERAL_MODEL, INDIVIDUAL_MODEL)


@dataclass
class CacheEntry:
    """One cached model with the metadata eviction policies need.

    Attributes
    ----------
    key:
        Unique identifier, e.g. ``"general/it"`` or ``"individual/user_3/it"``.
    kind:
        ``"general"`` or ``"individual"``.
    domain:
        Domain the model specializes.
    user_id:
        Owner for individual models; ``None`` for general models.
    size_bytes:
        Storage footprint used for capacity accounting.
    payload:
        The model object itself (a codec, an ``IndividualModel``, or a stub in
        simulation-only experiments).
    build_cost_s:
        Time it would take to rebuild/fetch this model on a miss; used by the
        cost-aware policy and to quantify the paper's "time to establish KBs"
        saving.
    pin_count:
        Number of in-flight operations (e.g. a neighbour cell copying this
        model over the backhaul) holding the entry in place.  Pinned entries
        are never selected for eviction.
    """

    key: str
    kind: str
    domain: str
    size_bytes: int
    user_id: Optional[str] = None
    payload: Any = None
    build_cost_s: float = 1.0
    insert_time: float = 0.0
    last_access_time: float = 0.0
    access_count: int = 0
    popularity: float = 0.0
    pin_count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MODEL_KINDS:
            raise ValueError(f"kind must be one of {MODEL_KINDS}, got {self.kind!r}")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {self.size_bytes}")

    def touch(self, now: float) -> None:
        """Record an access at time ``now``."""
        self.last_access_time = now
        self.access_count += 1

    @property
    def pinned(self) -> bool:
        """Whether the entry is currently protected from eviction."""
        return self.pin_count > 0


def general_model_key(domain: str) -> str:
    """Canonical cache key of the general model for ``domain``."""
    return f"{GENERAL_MODEL}/{domain}"


def individual_model_key(user_id: str, domain: str) -> str:
    """Canonical cache key of ``user_id``'s individual model for ``domain``."""
    return f"{INDIVIDUAL_MODEL}/{user_id}/{domain}"
