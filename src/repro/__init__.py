"""Reproduction of "Semantic communications, semantic edge computing, and semantic caching".

The package implements the full system proposed in the paper (Yu & Zhao,
2023): semantic encoder/decoder knowledge bases specialized per domain,
user-specific individual models, decoder copies cached at the sender edge for
local mismatch computation, federated-style decoder-gradient synchronization,
semantic model caching on edge servers, and the model-selection policies the
paper lists as research directions — together with every substrate those
pieces need (a numpy autograd neural-network library, a physical-channel
simulator, and a discrete-event edge-computing simulator).

Quickstart
----------
>>> from repro import SemanticEdgeSystem
>>> system = SemanticEdgeSystem.pretrained(sentences_per_domain=80, train_epochs=10)
>>> session = system.open_session("user_a", "user_b")
>>> report = session.send_text("user_a", "user_b", "the cpu loads the bus", domain_hint="it")
>>> report.restored_text  # doctest: +SKIP
'the cpu loads the bus'
"""

from repro.core import (
    CommunicationSession,
    DeliveryReport,
    Message,
    ReceiverEdgeServer,
    SemanticEdgeSystem,
    SenderEdgeServer,
    SessionConfig,
    SystemConfig,
)
from repro.semantic import CodecConfig, IndividualModel, KnowledgeBaseLibrary, SemanticCodec

__version__ = "1.0.0"

__all__ = [
    "SemanticEdgeSystem",
    "SystemConfig",
    "CommunicationSession",
    "SessionConfig",
    "SenderEdgeServer",
    "ReceiverEdgeServer",
    "Message",
    "DeliveryReport",
    "SemanticCodec",
    "CodecConfig",
    "KnowledgeBaseLibrary",
    "IndividualModel",
    "__version__",
]
