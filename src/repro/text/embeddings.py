"""Count-based word and sentence embeddings for semantic similarity.

The paper evaluates whether the *meaning* of a restored message matches the
original.  Without pretrained language models available offline, we derive
embeddings from the synthetic corpus itself: a positive-PMI co-occurrence
matrix reduced by truncated SVD.  Within the synthetic world this captures
exactly the domain-dependent usage (e.g. "bus" near "cpu" vs near "passenger")
that the paper's motivating example relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.nn.functional import cosine_similarity
from repro.text.vocabulary import Vocabulary


class CooccurrenceEmbeddings:
    """Positive-PMI + SVD word embeddings trained from tokenized sentences."""

    def __init__(self, vocabulary: Vocabulary, dim: int = 32, window: int = 3) -> None:
        if dim <= 0:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.vocabulary = vocabulary
        self.dim = dim
        self.window = window
        self._vectors: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, tokenized_sentences: Iterable[Sequence[str]]) -> "CooccurrenceEmbeddings":
        """Estimate embeddings from co-occurrence statistics of the corpus."""
        size = len(self.vocabulary)
        counts = np.zeros((size, size), dtype=np.float64)
        for sentence in tokenized_sentences:
            ids = [self.vocabulary.token_to_id(token) for token in sentence]
            for center_position, center_id in enumerate(ids):
                start = max(0, center_position - self.window)
                stop = min(len(ids), center_position + self.window + 1)
                for context_position in range(start, stop):
                    if context_position == center_position:
                        continue
                    counts[center_id, ids[context_position]] += 1.0

        total = counts.sum()
        if total == 0:
            # Degenerate corpus; fall back to random small vectors.
            self._vectors = np.zeros((size, self.dim))
            return self

        row_sums = counts.sum(axis=1, keepdims=True)
        column_sums = counts.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log((counts * total) / (row_sums @ column_sums))
        pmi[~np.isfinite(pmi)] = 0.0
        positive_pmi = np.maximum(pmi, 0.0)

        left, singular_values, _ = np.linalg.svd(positive_pmi, full_matrices=False)
        dim = min(self.dim, left.shape[1])
        vectors = left[:, :dim] * np.sqrt(singular_values[:dim])
        if dim < self.dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.dim - dim)))
        self._vectors = vectors
        return self

    @property
    def vectors(self) -> np.ndarray:
        """The ``(vocab_size, dim)`` embedding matrix (fit must be called first)."""
        if self._vectors is None:
            raise RuntimeError("embeddings have not been fit; call fit() first")
        return self._vectors

    # ------------------------------------------------------------------ #
    # Lookup and similarity
    # ------------------------------------------------------------------ #
    def word_vector(self, token: str) -> np.ndarray:
        """Embedding of ``token`` (the ``<unk>`` vector when unknown)."""
        return self.vectors[self.vocabulary.token_to_id(token)]

    def sentence_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean-pooled sentence embedding."""
        if not tokens:
            return np.zeros(self.dim)
        ids = [self.vocabulary.token_to_id(token) for token in tokens]
        return self.vectors[ids].mean(axis=0)

    def sentence_similarity(self, reference: Sequence[str], hypothesis: Sequence[str]) -> float:
        """Cosine similarity of mean-pooled sentence embeddings in ``[-1, 1]``."""
        reference_vector = self.sentence_vector(reference)
        hypothesis_vector = self.sentence_vector(hypothesis)
        if not np.any(reference_vector) or not np.any(hypothesis_vector):
            return 1.0 if list(reference) == list(hypothesis) else 0.0
        return cosine_similarity(reference_vector, hypothesis_vector)

    def nearest_neighbors(self, token: str, top_k: int = 5) -> List[str]:
        """Tokens whose embeddings are closest to ``token`` (excluding itself)."""
        query = self.word_vector(token)
        norms = np.linalg.norm(self.vectors, axis=1) + 1e-12
        similarity = (self.vectors @ query) / (norms * (np.linalg.norm(query) + 1e-12))
        order = np.argsort(-similarity)
        neighbors: List[str] = []
        for index in order:
            candidate = self.vocabulary.id_to_token(int(index))
            if candidate == token or candidate.startswith("<"):
                continue
            neighbors.append(candidate)
            if len(neighbors) >= top_k:
                break
        return neighbors


def build_embeddings(
    tokenized_sentences: Sequence[Sequence[str]],
    dim: int = 32,
    window: int = 3,
    vocabulary: Vocabulary | None = None,
) -> CooccurrenceEmbeddings:
    """Convenience constructor: build a vocabulary (if needed) and fit embeddings."""
    if vocabulary is None:
        vocabulary = Vocabulary.from_corpus(tokenized_sentences)
    embeddings = CooccurrenceEmbeddings(vocabulary, dim=dim, window=window)
    return embeddings.fit(tokenized_sentences)


def domain_embedding_table(embeddings_by_domain: Dict[str, CooccurrenceEmbeddings], token: str) -> Dict[str, List[str]]:
    """Nearest neighbours of ``token`` under each domain's embedding space.

    Reproduces the paper's "bus" example: the same word has different
    neighbourhoods in different domains.
    """
    return {
        domain: embeddings.nearest_neighbors(token)
        for domain, embeddings in embeddings_by_domain.items()
        if token in embeddings.vocabulary
    }
