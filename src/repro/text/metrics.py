"""Text-similarity metrics used to score semantic reconstruction quality."""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence

import numpy as np


def token_accuracy(reference: Sequence[str], hypothesis: Sequence[str]) -> float:
    """Fraction of positions where the hypothesis token equals the reference.

    Positions beyond the shorter sequence count as errors, so dropping words
    is penalized.
    """
    if not reference:
        return 1.0 if not hypothesis else 0.0
    matches = sum(1 for ref, hyp in zip(reference, hypothesis) if ref == hyp)
    return matches / max(len(reference), len(hypothesis))


def word_error_rate(reference: Sequence[str], hypothesis: Sequence[str]) -> float:
    """Levenshtein word error rate (substitutions + insertions + deletions)."""
    if not reference:
        return 0.0 if not hypothesis else 1.0
    rows = len(reference) + 1
    cols = len(hypothesis) + 1
    distance = np.zeros((rows, cols), dtype=np.int64)
    distance[:, 0] = np.arange(rows)
    distance[0, :] = np.arange(cols)
    for i in range(1, rows):
        for j in range(1, cols):
            substitution_cost = 0 if reference[i - 1] == hypothesis[j - 1] else 1
            distance[i, j] = min(
                distance[i - 1, j] + 1,
                distance[i, j - 1] + 1,
                distance[i - 1, j - 1] + substitution_cost,
            )
    return float(distance[-1, -1]) / len(reference)


def _ngram_counts(tokens: Sequence[str], order: int) -> Counter:
    return Counter(tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1))


def bleu_score(
    reference: Sequence[str],
    hypothesis: Sequence[str],
    max_order: int = 4,
    smoothing: float = 1e-9,
) -> float:
    """Sentence-level BLEU with brevity penalty and add-epsilon smoothing.

    BLEU is the standard surface-level fidelity metric in semantic
    communication papers (e.g. DeepSC); we report it alongside embedding
    cosine similarity.
    """
    reference = list(reference)
    hypothesis = list(hypothesis)
    if not hypothesis or not reference:
        return 0.0
    log_precision_sum = 0.0
    effective_order = min(max_order, len(hypothesis), len(reference))
    if effective_order == 0:
        return 0.0
    for order in range(1, effective_order + 1):
        reference_counts = _ngram_counts(reference, order)
        hypothesis_counts = _ngram_counts(hypothesis, order)
        overlap = sum(min(count, reference_counts[ngram]) for ngram, count in hypothesis_counts.items())
        total = max(sum(hypothesis_counts.values()), 1)
        precision = (overlap + smoothing) / (total + smoothing)
        log_precision_sum += math.log(precision)
    geometric_mean = math.exp(log_precision_sum / effective_order)
    brevity_penalty = 1.0
    if len(hypothesis) < len(reference):
        brevity_penalty = math.exp(1.0 - len(reference) / len(hypothesis))
    return float(brevity_penalty * geometric_mean)


def corpus_bleu(references: Sequence[Sequence[str]], hypotheses: Sequence[Sequence[str]]) -> float:
    """Average sentence BLEU over a corpus of (reference, hypothesis) pairs."""
    if len(references) != len(hypotheses):
        raise ValueError("references and hypotheses must have the same length")
    if not references:
        return 0.0
    return float(np.mean([bleu_score(ref, hyp) for ref, hyp in zip(references, hypotheses)]))


def bag_of_words_cosine(reference: Sequence[str], hypothesis: Sequence[str]) -> float:
    """Cosine similarity of bag-of-words count vectors.

    A crude but embedding-free semantic similarity proxy useful for tests
    that should not depend on learned embeddings.
    """
    reference_counts: Dict[str, int] = Counter(reference)
    hypothesis_counts: Dict[str, int] = Counter(hypothesis)
    if not reference_counts or not hypothesis_counts:
        return 1.0 if reference_counts == hypothesis_counts else 0.0
    shared = set(reference_counts) & set(hypothesis_counts)
    dot = sum(reference_counts[token] * hypothesis_counts[token] for token in shared)
    norm_ref = math.sqrt(sum(count**2 for count in reference_counts.values()))
    norm_hyp = math.sqrt(sum(count**2 for count in hypothesis_counts.values()))
    return dot / (norm_ref * norm_hyp)
