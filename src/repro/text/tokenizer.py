"""Tokenization for the text messages exchanged by the semantic system.

The paper's example messages are natural-language sentences ("bus" meaning a
vehicle or a hardware interconnect depending on the domain).  A simple,
reversible whitespace/punctuation tokenizer is sufficient for the synthetic
corpora while keeping every step of the pipeline inspectable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+(?:'[a-z]+)?|[.,!?;:]")


def simple_tokenize(text: str) -> List[str]:
    """Lower-case and split ``text`` into word and punctuation tokens."""
    return _TOKEN_PATTERN.findall(text.lower())


def detokenize(tokens: Sequence[str]) -> str:
    """Inverse of :func:`simple_tokenize` up to capitalization and spacing."""
    pieces: List[str] = []
    for token in tokens:
        if token in {".", ",", "!", "?", ";", ":"} and pieces:
            pieces[-1] = pieces[-1] + token
        else:
            pieces.append(token)
    return " ".join(pieces)


@dataclass
class Tokenizer:
    """Configurable tokenizer with optional length truncation.

    Attributes
    ----------
    max_length:
        Messages longer than this number of tokens are truncated; ``None``
        disables truncation.
    lowercase:
        Whether to lower-case the input before tokenizing.
    """

    max_length: int | None = None
    lowercase: bool = True
    _pattern: re.Pattern = field(default=_TOKEN_PATTERN, repr=False)

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into tokens, applying the configured limits."""
        if self.lowercase:
            text = text.lower()
        tokens = self._pattern.findall(text)
        if self.max_length is not None:
            tokens = tokens[: self.max_length]
        return tokens

    def tokenize_batch(self, texts: Iterable[str]) -> List[List[str]]:
        """Tokenize every string in ``texts``."""
        return [self.tokenize(text) for text in texts]

    def detokenize(self, tokens: Sequence[str]) -> str:
        """Rejoin tokens into a readable sentence."""
        return detokenize(tokens)
