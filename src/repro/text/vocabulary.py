"""Vocabulary mapping between tokens and integer ids."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.exceptions import VocabularyError

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, BOS_TOKEN, EOS_TOKEN)


class Vocabulary:
    """Bidirectional token/id mapping with the four standard special tokens.

    Ids 0-3 are reserved for ``<pad>``, ``<unk>``, ``<bos>`` and ``<eos>`` in
    that order; regular tokens follow in insertion order.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self.add(token)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _add(self, token: str) -> int:
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add ``token`` if new and return its id."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        return self._add(token)

    @classmethod
    def from_corpus(
        cls,
        tokenized_sentences: Iterable[Sequence[str]],
        min_frequency: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenized sentences.

        Tokens are added in descending frequency order (ties broken
        alphabetically) so truncation by ``max_size`` keeps the most common
        words.
        """
        counts: Counter[str] = Counter()
        for sentence in tokenized_sentences:
            counts.update(sentence)
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        vocabulary = cls()
        for token, frequency in ordered:
            if frequency < min_frequency:
                continue
            if max_size is not None and len(vocabulary) >= max_size + len(SPECIAL_TOKENS):
                break
            vocabulary.add(token)
        return vocabulary

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    def token_to_id(self, token: str) -> int:
        """Id of ``token``, or the ``<unk>`` id when unknown."""
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        """Token for ``index``; raises :class:`VocabularyError` if out of range."""
        if not 0 <= index < len(self._id_to_token):
            raise VocabularyError(f"token id {index} outside vocabulary of size {len(self)}")
        return self._id_to_token[index]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def tokens(self) -> List[str]:
        """All tokens including the specials, in id order."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def encode(
        self,
        tokens: Sequence[str],
        max_length: int | None = None,
        add_special: bool = True,
        pad: bool = True,
    ) -> np.ndarray:
        """Convert tokens to a fixed-length id array.

        With ``add_special`` the sequence is wrapped in ``<bos>``/``<eos>``.
        With ``pad`` and a ``max_length`` the array is padded (or truncated)
        to exactly ``max_length`` entries.
        """
        ids = [self.token_to_id(token) for token in tokens]
        if add_special:
            ids = [self.bos_id, *ids, self.eos_id]
        if max_length is not None:
            ids = ids[:max_length]
            if add_special and len(ids) == max_length and ids[-1] != self.eos_id:
                ids[-1] = self.eos_id
            if pad:
                ids = ids + [self.pad_id] * (max_length - len(ids))
        return np.asarray(ids, dtype=np.int64)

    def encode_batch(
        self,
        sentences: Sequence[Sequence[str]],
        max_length: int,
        add_special: bool = True,
    ) -> np.ndarray:
        """Encode a batch of token sequences into a ``(batch, max_length)`` array."""
        return np.stack(
            [self.encode(tokens, max_length=max_length, add_special=add_special) for tokens in sentences]
        )

    def decode(self, ids: Sequence[int], strip_special: bool = True) -> List[str]:
        """Convert an id sequence back to tokens.

        With ``strip_special`` the pad/bos tokens are removed and decoding
        stops at the first ``<eos>``.
        """
        tokens: List[str] = []
        for index in np.asarray(ids, dtype=np.int64).tolist():
            token = self.id_to_token(index)
            if strip_special:
                if token == EOS_TOKEN:
                    break
                if token in (PAD_TOKEN, BOS_TOKEN):
                    continue
            tokens.append(token)
        return tokens
