"""Text substrate: tokenization, vocabularies, embeddings and fidelity metrics."""

from repro.text.embeddings import CooccurrenceEmbeddings, build_embeddings, domain_embedding_table
from repro.text.metrics import (
    bag_of_words_cosine,
    bleu_score,
    corpus_bleu,
    token_accuracy,
    word_error_rate,
)
from repro.text.tokenizer import Tokenizer, detokenize, simple_tokenize
from repro.text.vocabulary import (
    BOS_TOKEN,
    EOS_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
)

__all__ = [
    "Tokenizer",
    "simple_tokenize",
    "detokenize",
    "Vocabulary",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "BOS_TOKEN",
    "EOS_TOKEN",
    "SPECIAL_TOKENS",
    "CooccurrenceEmbeddings",
    "build_embeddings",
    "domain_embedding_table",
    "token_accuracy",
    "word_error_rate",
    "bleu_score",
    "corpus_bleu",
    "bag_of_words_cosine",
]
