"""Phase-structured workload synthesis for scenario specs.

Turns a :class:`~repro.scenarios.spec.ScenarioSpec`'s phase schedule into one
columnar :class:`~repro.workloads.traces.RequestTrace`:

* per phase, arrival timestamps are uniform order statistics on the phase
  window (:func:`~repro.workloads.generator.segment_arrival_times` — the
  conditional law of a Poisson process given its count), so a piecewise
  schedule is just concatenated segments and the global timestamp array is
  non-decreasing by construction;
* domains are Zipf-sampled per phase with the phase's skew and popularity
  rotation, so a ``domain_shift`` between phases moves the hot set;
* user indices are drawn from a live pool that churn waves mutate at phase
  starts (replaced slots get never-seen user ids).

Every random draw comes from a :class:`~repro.runtime.SeedTree` path that
names the scenario and the phase, so the trace is a pure function of
``(spec, seed, scale)`` — independent of process count, submission order, or
which worker synthesizes it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime import SeedTree
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.generator import segment_arrival_times
from repro.workloads.traces import RequestTrace, zipf_probabilities


def phase_request_count(spec: ScenarioSpec, phase_index: int, scale: float) -> int:
    """Deterministic request count of one phase at ``scale`` (always >= 1).

    Delegates to :meth:`ScenarioSpec.phase_request_count` — the one place the
    sizing formula lives, so ``expected_requests`` always predicts exactly
    what the synthesizer draws.
    """
    return spec.phase_request_count(phase_index, scale)


def synthesize_trace(spec: ScenarioSpec, seed: int, scale: float = 1.0) -> RequestTrace:
    """Sample the scenario's full request trace (columnar, time-sorted)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    tree = SeedTree(seed).child("scenario", spec.name)
    pool = np.arange(spec.num_users, dtype=np.int64)
    next_user_id = spec.num_users
    time_chunks: List[np.ndarray] = []
    domain_chunks: List[np.ndarray] = []
    user_chunks: List[np.ndarray] = []
    start = 0.0
    for index, phase in enumerate(spec.phases):
        rng = tree.rng("phase", index)
        count = phase_request_count(spec, index, scale)
        times = segment_arrival_times(start, phase.duration_s, count, rng)
        exponent = spec.zipf_exponent if phase.zipf_exponent is None else phase.zipf_exponent
        probabilities = zipf_probabilities(spec.num_domains, exponent)
        if phase.domain_shift:
            # Domain i inherits the popularity rank domain (i - shift) had.
            probabilities = np.roll(probabilities, phase.domain_shift)
        domains = rng.choice(spec.num_domains, size=count, p=probabilities)
        if phase.user_churn > 0.0 and index > 0:
            churned = round(phase.user_churn * spec.num_users)
            if churned > 0:
                slots = rng.choice(spec.num_users, size=churned, replace=False)
                pool[slots] = next_user_id + np.arange(churned)
                next_user_id += churned
        users = pool[rng.integers(0, spec.num_users, size=count)]
        time_chunks.append(times)
        domain_chunks.append(domains)
        user_chunks.append(users)
        start += phase.duration_s
    domain_names = [f"domain_{index}" for index in range(spec.num_domains)]
    return RequestTrace.from_columns(
        np.concatenate(time_chunks),
        np.concatenate(user_chunks),
        np.concatenate(domain_chunks),
        domain_names,
    )
