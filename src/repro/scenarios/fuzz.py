"""Property-tested search over adversarial workloads.

The curated catalog pins correctness where a human thought to look; this
module generates the scenarios nobody wrote.  A hypothesis strategy samples
random-but-valid :class:`~repro.scenarios.spec.ScenarioSpec`s — phase stacks
× fault timelines × topologies × cache policies/sizes × resilience policies
(deadlines, retries, hedging, breakers, shedding; ``None`` half the time so
the legacy path stays covered) — and :func:`check_case` drives each through
three invariant layers:

* **engine invariants** — an :class:`~repro.sim.invariants.InvariantChecker`
  chained through ``on_request_end`` (terminal-event sanity, exact request
  conservation) plus the post-replay structural audit and the folded
  fault-timeline end-state check (pin safety, cache accounting, dead cells
  hold nothing, downlink degradation never compounds);
* **determinism invariants** — the same spec + seed replayed twice must be
  byte-identical (compared on the serialized summary + per-phase rows), and
  ``--scale`` moves the request count exactly as specified without moving
  the fault timeline;
* **differential backend invariants** — serial vs sharded at several shard
  counts: conservation stays exact, headline metrics stay within the
  divergence taxonomy of ``docs/architecture.md`` (loosened for the small
  traces fuzz cases use); plus serial vs vectorized, where the contract is
  strict **byte-identity** — the numpy cohort kernel (or its silent serial
  fallback for ineligible shapes) must serialize to exactly the serial
  engine's summary and per-phase rows.

Every run is replayable from two integers: the harness seed (workload
synthesis + deployment, through the usual named SeedTree paths) and the
hypothesis generation seed derived from it (``SeedTree(seed).child("fuzz")
.seed("hypothesis")``).  Failing specs are shrunk by hypothesis and
serialized to the regression corpus (``tests/scenarios/regressions/*.json``),
where ``tests/scenarios/test_regressions.py`` replays them as ordinary
tier-1 tests forever after.

This module imports :mod:`hypothesis` (a test dependency) at import time;
the CLI imports it lazily and reports a friendly error when it is missing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import hypothesis.strategies as st
from hypothesis import HealthCheck
from hypothesis import seed as hypothesis_seed
from hypothesis import given, settings

from repro.caching.policies import available_policies
from repro.runtime import SeedTree
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import (
    CACHE_RESIZE,
    CACHE_WIPE,
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_RESTORE,
    MOBILITY_SET,
    FaultEvent,
    ScenarioSpec,
    WorkloadPhase,
)
from repro.sim.invariants import (
    InvariantChecker,
    InvariantViolation,
    audit_fault_state,
    audit_simulator,
    expected_fault_state,
)
from repro.sim.resilience import ResiliencePolicy
from repro.utils.serialization import to_json

#: Corpus file format tag (bump on incompatible layout changes).
REGRESSION_FORMAT = "repro-scenario-regression-v1"

#: Shard counts the differential layer exercises (clamped to the cell count).
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (2, 3)

#: Divergence bounds for serial-vs-sharded headline metrics are
#: **variance-calibrated**: per docs/architecture.md, the two backends draw
#: the deployment layout (user home cells, handover streams) independently,
#: so their headline metrics differ by the metric's own cross-seed variance —
#: which for adversarially tiny specs (12 users, a 2-model FIFO cache, one
#: hot Zipf domain) legitimately spans half the [0, 1] range.  Any flat
#: tolerance is therefore either vacuous or flaky under adversarial search.
#: Instead :func:`check_case` replays the spec serially at
#: ``DIFFERENTIAL_CALIBRATION_SEEDS`` extra layout seeds and requires each
#: sharded metric to land inside the observed serial envelope widened by a
#: margin: a fraction of the observed spread (``SPREAD_MARGIN``), plus an
#: absolute floor, plus — for the hit ratio — the per-user quantum
#: (one user's stream landing elsewhere moves the ratio by ``~1/num_users``).
#: Conservation is never a tolerance — it is checked exactly.
DIFFERENTIAL_CALIBRATION_SEEDS = 2
SPREAD_MARGIN = 0.75
HIT_RATIO_FLOOR = 0.1
HIT_RATIO_USER_QUANTA = 3.0
MEAN_ABS_FLOOR_MS = 30.0
MEAN_REL_MARGIN = 0.3
P95_ABS_FLOOR_MS = 60.0
P95_REL_MARGIN = 0.3
#: Latency margin for fetch-wait-bound specs.  Cross-shard neighbor fetches
#: do not exist — a shard whose only model replica lives across the partition
#: re-fetches from the cloud instead — so when the serial run leans on
#: neighbor fetches while a large share of requests coalesce onto in-flight
#: fetch waits, the sharded latency legitimately rises toward the cloud-wait
#: ceiling no matter the layout (triaged from the seed-1 nightly blowout,
#: promoted as ``corpus_crossshard_fetch_wait``: serial never exceeded 224ms
#: over 16 layout seeds while every sharded layout sat near 650ms, with the
#: serial run's 87 neighbor fetches collapsing to 2).  The envelope widens by
#: the observed coalesced share of the serial tail scale, and only in that
#: regime — specs that do not coalesce, or never neighbor-fetch, get nothing.
FETCH_WAIT_MARGIN = 1.0
#: Incomplete-mass margin for breaker-active policies whose breakers tripped.
#: Per-shard breaker views do not merely *reclassify* failures between kinds —
#: trip timing depends on which outcomes a view has seen, and an open breaker
#: gates admission itself, so the two backends gate different request
#: *volumes*, not just different labels.  The shift is bounded by the mass the
#: breakers actually gated, for which the serial incomplete scale is the
#: observable proxy (when breakers trip under a tight deadline, incompletes
#: are breaker-driven).  Triaged from the second seed-1 find: serial's single
#: global view gated 386–444 of 600 requests across layout seeds (transitions
#: swinging 3–12 — trip timing dominates), while 2-shard local views admitted
#: ~100 more through to completion (283 incomplete); promoted as
#: ``corpus_shardlocal_breaker_gate_g``, where the same spec diverges in the
#: *other* direction (sharded gates 526 vs serial 337–401) — the sign is
#: view-dependent, which is exactly the point.  Specs whose breakers never
#: trip on either backend get nothing.
BREAKER_GATE_MARGIN = 0.25


# --------------------------------------------------------------------- #
# Strategy space
# --------------------------------------------------------------------- #
@st.composite
def resilience_policies(draw) -> Optional[ResiliencePolicy]:
    """Random resilience policies over small menus; ``None`` half the time.

    The menus deliberately include the degenerate corners: a deadline shorter
    than most latencies (mass ``DEADLINE_EXCEEDED``), a hedge delay of 0.1s
    (twins in flight for nearly every slow request), a shed depth of 64
    (admission rejection under any burst), zero-jitter backoff (retry storms
    landing on the same tick).  ``None`` keeps half the corpus exercising the
    legacy byte-identity path under the same adversarial workloads.
    """
    if draw(st.booleans()):
        return None
    policy = ResiliencePolicy(
        deadline_s=draw(st.sampled_from((None, 0.5, 2.0))),
        max_retries=draw(st.sampled_from((0, 1, 3))),
        backoff_base_s=draw(st.sampled_from((0.05, 0.2))),
        backoff_jitter=draw(st.sampled_from((0.0, 0.5))),
        hedge_delay_s=draw(st.sampled_from((None, 0.1, 0.5))),
        breaker_window=draw(st.sampled_from((0, 20))),
        breaker_min_volume=5,
        breaker_open_s=0.5,
        shed_queue_depth=draw(st.sampled_from((None, 64))),
    )
    return policy if policy.active else None


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """Random-but-valid scenario specs, sized for sub-second replays.

    Durations, rates and pool sizes are drawn from small menus so a case
    stays a few hundred to a few thousand requests (the harness replays each
    spec four times), while the *structure* — phase stacks, stacked fault
    timelines including same-time batches, degenerate capacities, every
    registered eviction policy — ranges over the space the curated catalog
    never covers.  Fault times are drawn on a half-second grid on purpose:
    colliding timestamps (fault-vs-fault and fault-vs-arrival ties) are
    exactly the edge the event engine's ordering contract must survive.
    """
    num_cells = draw(st.integers(min_value=2, max_value=5))
    num_phases = draw(st.integers(min_value=1, max_value=3))
    phases = []
    for index in range(num_phases):
        phases.append(
            WorkloadPhase(
                name=f"phase_{index}",
                duration_s=float(draw(st.integers(min_value=1, max_value=2))),
                rate_multiplier=draw(st.sampled_from((0.5, 1.0, 2.0))),
                zipf_exponent=draw(st.sampled_from((None, 0.0, 0.7, 1.2))),
                domain_shift=draw(st.integers(min_value=0, max_value=3)),
                user_churn=draw(st.sampled_from((0.0, 0.25, 0.6))),
            )
        )
    total = sum(phase.duration_s for phase in phases)
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(FAULT_KINDS))
        time_s = draw(st.integers(min_value=0, max_value=int(total * 2))) * 0.5
        cell: Optional[str] = f"cell_{draw(st.integers(0, num_cells - 1))}"
        factor = 1.0
        value = None
        if kind == LINK_DEGRADE:
            factor = draw(st.sampled_from((0.5, 2.0, 8.0, 16.0)))
        elif kind == CACHE_RESIZE:
            # 1e-9 folds to a zero-byte budget: resize-to-zero mid-run.
            factor = draw(st.sampled_from((1e-9, 0.1, 0.5, 2.0)))
        elif kind == MOBILITY_SET:
            value = draw(st.sampled_from((0.0, 0.1, 0.5)))
        if kind == MOBILITY_SET:
            cell = None
        elif kind in (CACHE_WIPE, LINK_DEGRADE, LINK_RESTORE, CACHE_RESIZE):
            if draw(st.booleans()):
                cell = None  # all-cell fault
        events.append(FaultEvent(time_s=time_s, kind=kind, cell=cell, factor=factor, value=value))
    spec_fields = dict(
        description="fuzzed scenario",
        phases=tuple(phases),
        events=tuple(events),
        num_cells=num_cells,
        num_domains=draw(st.integers(min_value=3, max_value=10)),
        num_users=draw(st.integers(min_value=10, max_value=80)),
        base_rate=float(draw(st.sampled_from((120, 300, 600)))),
        zipf_exponent=draw(st.sampled_from((0.0, 0.6, 0.9, 1.3))),
        cache_policy=draw(st.sampled_from(tuple(available_policies()))),
        cache_capacity_mb=float(draw(st.sampled_from((2.0, 8.0, 24.0, 48.0)))),
        handover_probability=draw(st.sampled_from((0.0, 0.05, 0.2))),
        resilience=draw(resilience_policies()),
    )
    # The name embeds a content hash: the workload synthesizer draws its
    # streams through SeedTree paths that include the spec name, so distinct
    # fuzzed specs get independent streams while the same spec is always
    # exactly replayable.  The resilience policy is part of the hash even
    # though it is outside every seed path: two cases differing only in
    # policy are distinct corpus entries.
    digest_source = dict(
        spec_fields,
        phases=[asdict(p) for p in phases],
        events=[asdict(e) for e in events],
        resilience=None if spec_fields["resilience"] is None else spec_fields["resilience"].to_dict(),
    )
    digest = hashlib.sha1(
        json.dumps(digest_source, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:10]
    return ScenarioSpec(name=f"fuzz_{digest}", **spec_fields)


# --------------------------------------------------------------------- #
# The invariant harness
# --------------------------------------------------------------------- #
def _envelope(values: Sequence[float], margin: float) -> Tuple[float, float]:
    return min(values) - margin, max(values) + margin


def _run_checked(
    spec: ScenarioSpec,
    seed: int,
    scale: float,
    backend: str,
    shards: Optional[int] = None,
    backend_options: Optional[Dict[str, object]] = None,
) -> Tuple[ScenarioResult, InvariantChecker]:
    """One replay with the invariant checker chained in front of measurement."""
    box: Dict[str, InvariantChecker] = {}

    def wrap(collector):
        box["checker"] = InvariantChecker(inner=collector)
        return box["checker"]

    result = run_scenario(
        spec,
        seed=seed,
        scale=scale,
        backend=backend,
        shards=shards,
        wrap_hook=wrap,
        backend_options=backend_options,
    )
    checker = box["checker"]
    checker.verify_report(result.report, issued=int(result.summary["requests"]))
    return result, checker


def _signature(result: ScenarioResult) -> str:
    """Byte-comparable serialization of everything a run reports."""
    return to_json({"summary": result.summary, "phases": result.phases})


def _check_phase_consistency(result: ScenarioResult) -> None:
    """The per-phase windows must partition the run's terminal requests.

    The resilience terminals (``shed``, ``deadline_exceeded``) are included
    via ``row.get``/``getattr`` defaults: policy-free rows omit the columns
    and policy-free reports hold zeros, so the check degrades to the
    original two-way partition.
    """
    for kind in ("completed", "dropped", "shed", "deadline_exceeded"):
        phase_total = sum(int(row.get(kind, 0)) for row in result.phases)
        report_total = int(getattr(result.report, kind, 0))
        if phase_total != report_total:
            raise InvariantViolation(
                f"phase windows hold {phase_total} {kind} requests, the report "
                f"says {report_total}"
            )


def _incomplete(summary: Dict[str, object]) -> float:
    return (
        float(summary.get("dropped", 0))
        + float(summary.get("shed", 0))
        + float(summary.get("deadline_exceeded", 0))
    )


def _check_divergence(
    serial_summaries: Sequence[Dict[str, object]],
    sharded: Dict[str, object],
    issued: int,
    shards: int,
    num_users: int,
    policy=None,
) -> None:
    """Variance-calibrated serial-vs-sharded divergence on headline metrics.

    ``serial_summaries`` holds the reference run plus the calibration runs
    at alternate layout seeds; each sharded metric must fall inside that
    observed envelope widened by the documented margins.
    """
    label = f"shards={shards}"

    def check(key: str, margin: float, unit: str = "", value=None) -> None:
        extract = (lambda s: float(s[key])) if value is None else value
        values = [extract(summary) for summary in serial_summaries]
        spread = max(values) - min(values)
        lo, hi = _envelope(values, margin + SPREAD_MARGIN * spread)
        observed = extract(sharded)
        if not lo <= observed <= hi:
            raise InvariantViolation(
                f"{label}: {key} diverged beyond the calibrated serial envelope "
                f"({observed:.4f}{unit} sharded vs serial range "
                f"[{min(values):.4f}, {max(values):.4f}]{unit} "
                f"over {len(values)} layout seeds, margin {margin:.4f})"
            )

    # Hedging is shard-local (a twin only targets cells its shard owns), so
    # the sharded backend structurally hedges less, and every suppressed twin
    # is one admission serial made and sharded didn't — moving failure counts
    # by up to the hedge volume (docs/resilience.md, divergence notes).
    hedge_spread = max(
        (float(summary.get("hedges", 0)) for summary in serial_summaries), default=0.0
    )
    failure_margin = max(20.0, 0.05 * issued) + hedge_spread
    if policy is not None and policy.breaker_window > 0:
        # Per-shard breaker views legitimately *reclassify* failures between
        # kinds: a shard can forward a request toward a remote cell its local
        # breaker view still believes closed, ping-ponging into a hop-capped
        # drop that the serial engine (one consistent view) sheds or serves
        # instead.  The combined incomplete mass is the comparable quantity;
        # per-kind counts are not — and neither is any metric *conditioned on
        # the served population* (hit ratio, latency percentiles): breakers
        # gate which requests reach a cache lookup at all, and the two
        # backends gate structurally different subsets.  Conservation (exact)
        # plus the incomplete envelope is what cross-backend equivalence
        # means under a breaker policy.  And when the breakers actually
        # tripped, the gated *volume* itself is view-dependent (see
        # BREAKER_GATE_MARGIN), so the envelope widens by a fraction of the
        # serial incomplete scale.
        tripped = any(
            float(summary.get("breaker_transitions", 0)) > 0
            for summary in [*serial_summaries, sharded]
        )
        breaker_gate = (
            BREAKER_GATE_MARGIN * max(_incomplete(s) for s in serial_summaries)
            if tripped
            else 0.0
        )
        check("incomplete", margin=failure_margin + breaker_gate, value=_incomplete)
        return
    check("dropped", margin=failure_margin)
    for key in ("shed", "deadline_exceeded"):
        if key in sharded and all(key in summary for summary in serial_summaries):
            check(key, margin=failure_margin)
    check("hit_ratio", margin=max(HIT_RATIO_FLOOR, HIT_RATIO_USER_QUANTA / max(1, num_users)))
    # Fetch-wait widening (see FETCH_WAIT_MARGIN): only when the serial runs
    # both rely on neighbor fetches and coalesce a real share of requests
    # onto fetch waits does the cross-shard fetch gap move the latency needle.
    p95_scale = max(float(summary["p95_ms"]) for summary in serial_summaries)
    fetch_wait_ms = 0.0
    if any(float(summary.get("neighbor_fetches", 0)) > 0 for summary in serial_summaries):
        coalesced_share = max(
            float(summary.get("coalesced", 0)) for summary in serial_summaries
        ) / max(1, issued)
        fetch_wait_ms = FETCH_WAIT_MARGIN * coalesced_share * p95_scale
    mean_scale = max(float(summary["mean_ms"]) for summary in serial_summaries)
    check(
        "mean_ms",
        margin=max(MEAN_ABS_FLOOR_MS, MEAN_REL_MARGIN * mean_scale) + fetch_wait_ms,
        unit="ms",
    )
    check(
        "p95_ms",
        margin=max(P95_ABS_FLOOR_MS, P95_REL_MARGIN * p95_scale) + fetch_wait_ms,
        unit="ms",
    )


def check_case(
    spec: ScenarioSpec,
    seed: int = 0,
    scale: float = 1.0,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    differential: bool = True,
) -> None:
    """Drive one spec through every invariant layer; raise on any violation.

    Runs the spec serially twice (engine audit + byte-identity), then — with
    ``differential`` — through the sharded backend at each shard count
    (clamped to the cell count), checking exact conservation and
    variance-calibrated divergence against a serial envelope measured across
    ``DIFFERENTIAL_CALIBRATION_SEEDS + 1`` layout seeds.
    """
    serial, _ = _run_checked(spec, seed, scale, backend="serial")
    issued = int(serial.summary["requests"])
    if issued != spec.expected_requests(scale):
        raise InvariantViolation(
            f"synthesizer issued {issued} requests, the spec implies "
            f"{spec.expected_requests(scale)} at scale {scale}"
        )
    _check_phase_consistency(serial)
    state = expected_fault_state(spec)
    audit_simulator(serial.simulator, allow_over_budget=state.shrank_cache)
    audit_fault_state(serial.simulator, spec)
    # Determinism: the identical spec + seed must reproduce byte-identically.
    serial_again, _ = _run_checked(spec, seed, scale, backend="serial")
    if _signature(serial) != _signature(serial_again):
        raise InvariantViolation(
            f"serial replay of {spec.name} is not deterministic (same spec, same "
            f"seed, different serialized report)"
        )
    if not differential:
        return
    # Vectorized leg: unlike sharded, the vectorized backend promises strict
    # byte-identity — eligible shapes run the numpy cohort kernel, ineligible
    # ones silently take the serial path — so the check is exact signature
    # equality, not a calibrated envelope.  ``cross_check=False`` disables the
    # backend's own serial validation so the compared result genuinely comes
    # from the kernel.
    vectorized, _ = _run_checked(
        spec, seed, scale, backend="vectorized", backend_options={"cross_check": False}
    )
    _check_phase_consistency(vectorized)
    if _signature(vectorized) != _signature(serial):
        raise InvariantViolation(
            f"vectorized replay of {spec.name} is not byte-identical to the "
            f"serial engine (same spec, same seed, different serialized report)"
        )
    audit_simulator(vectorized.simulator, allow_over_budget=state.shrank_cache)
    audit_fault_state(vectorized.simulator, spec)
    # Calibration runs: the same spec under alternate layout seeds measures
    # the metric's own natural variance, which sizes the divergence envelope.
    serial_summaries = [serial.summary]
    for offset in range(1, DIFFERENTIAL_CALIBRATION_SEEDS + 1):
        calibration = run_scenario(spec, seed=seed + offset, scale=scale, backend="serial")
        serial_summaries.append(calibration.summary)
    seen = set()
    for requested in shard_counts:
        shards = min(int(requested), spec.num_cells)
        if shards < 2 or shards in seen:
            continue
        seen.add(shards)
        sharded, _ = _run_checked(spec, seed, scale, backend="sharded", shards=shards)
        _check_phase_consistency(sharded)
        completed = int(sharded.summary["completed"])
        dropped = int(sharded.summary["dropped"])
        shed = int(sharded.summary.get("shed", 0))
        deadline_exceeded = int(sharded.summary.get("deadline_exceeded", 0))
        if completed + dropped + shed + deadline_exceeded != issued:
            raise InvariantViolation(
                f"shards={shards}: conservation broken ({completed} completed + "
                f"{dropped} dropped + {shed} shed + {deadline_exceeded} "
                f"deadline_exceeded != {issued} issued)"
            )
        _check_divergence(
            serial_summaries,
            sharded.summary,
            issued,
            shards,
            spec.num_users,
            policy=spec.resilience,
        )


# --------------------------------------------------------------------- #
# Regression corpus
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RegressionCase:
    """One shrunk failing spec, with everything needed to replay it."""

    spec: ScenarioSpec
    seed: int
    scale: float
    shard_counts: Tuple[int, ...]
    differential: bool
    error: str
    found_by: str

    def replay(self) -> None:
        """Re-run this case through the full harness (raises if still broken)."""
        check_case(
            self.spec,
            seed=self.seed,
            scale=self.scale,
            shard_counts=self.shard_counts,
            differential=self.differential,
        )


def save_regression(
    directory, spec: ScenarioSpec, *, seed: int, scale: float,
    shard_counts: Sequence[int], differential: bool, error: str, found_by: str = "",
) -> Path:
    """Serialize a shrunk failing spec into the corpus directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{spec.name}.json"
    payload = {
        "format": REGRESSION_FORMAT,
        "spec": spec.to_dict(),
        "seed": seed,
        "scale": scale,
        "shard_counts": list(shard_counts),
        "differential": differential,
        "error": error,
        "found_by": found_by,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_regression(path) -> RegressionCase:
    """Parse one corpus file back into a replayable case."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != REGRESSION_FORMAT:
        raise ValueError(
            f"{path}: unknown regression format {payload.get('format')!r} "
            f"(expected {REGRESSION_FORMAT})"
        )
    return RegressionCase(
        spec=ScenarioSpec.from_dict(payload["spec"]),
        seed=int(payload["seed"]),
        scale=float(payload["scale"]),
        shard_counts=tuple(int(s) for s in payload.get("shard_counts", DEFAULT_SHARD_COUNTS)),
        differential=bool(payload.get("differential", True)),
        error=str(payload.get("error", "")),
        found_by=str(payload.get("found_by", "")),
    )


def iter_regressions(directory) -> List[Path]:
    """Corpus files under ``directory``, sorted for stable test ordering."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


# --------------------------------------------------------------------- #
# The fuzz driver
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FuzzOutcome:
    """What one fuzz run did and found."""

    cases: int
    executed: int
    seed: int
    hypothesis_seed: int
    failure_spec: Optional[ScenarioSpec]
    error: Optional[str]
    regression_path: Optional[Path]

    @property
    def ok(self) -> bool:
        return self.error is None


def fuzz(
    cases: int,
    seed: int = 0,
    scale: float = 1.0,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    differential: bool = True,
    regressions_dir=None,
    found_by: str = "",
) -> FuzzOutcome:
    """Sample ``cases`` specs and drive each through :func:`check_case`.

    Generation is seeded from ``SeedTree(seed).child("fuzz").seed("hypothesis")``
    so the whole run replays from the one ``--seed`` value.  On a failure,
    hypothesis shrinks the spec to a minimal failing example, which is
    serialized into ``regressions_dir`` (when given) in the corpus format.
    The shrunk spec — not the original — is what gets reported and saved:
    the minimal example re-executes last during shrinking.
    """
    generation_seed = SeedTree(seed).child("fuzz").seed("hypothesis")
    executed = 0
    last_failure: Dict[str, object] = {}

    @settings(
        max_examples=cases,
        database=None,
        deadline=None,
        suppress_health_check=list(HealthCheck),
        print_blob=False,
    )
    @hypothesis_seed(generation_seed)
    @given(spec=scenario_specs())
    def property_(spec: ScenarioSpec) -> None:
        nonlocal executed
        executed += 1
        try:
            check_case(
                spec,
                seed=seed,
                scale=scale,
                shard_counts=shard_counts,
                differential=differential,
            )
        except Exception as error:
            last_failure["spec"] = spec
            last_failure["error"] = f"{type(error).__name__}: {error}"
            raise

    try:
        property_()
    except Exception:
        spec = last_failure["spec"]
        error = str(last_failure["error"])
        path = None
        if regressions_dir is not None:
            path = save_regression(
                regressions_dir,
                spec,
                seed=seed,
                scale=scale,
                shard_counts=shard_counts,
                differential=differential,
                error=error,
                found_by=found_by,
            )
        return FuzzOutcome(
            cases=cases,
            executed=executed,
            seed=seed,
            hypothesis_seed=generation_seed,
            failure_spec=spec,
            error=error,
            regression_path=path,
        )
    return FuzzOutcome(
        cases=cases,
        executed=executed,
        seed=seed,
        hypothesis_seed=generation_seed,
        failure_spec=None,
        error=None,
        regression_path=None,
    )


__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "REGRESSION_FORMAT",
    "FuzzOutcome",
    "RegressionCase",
    "check_case",
    "fuzz",
    "iter_regressions",
    "load_regression",
    "resilience_policies",
    "save_regression",
    "scenario_specs",
]
