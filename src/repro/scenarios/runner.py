"""Scenario execution: build, inject, replay, measure.

:func:`run_scenario` is the single-scenario path: synthesize the spec's trace
(:mod:`repro.scenarios.workload`), build a fresh multi-cell deployment,
schedule the fault timeline on the event engine, attach the per-phase
collector, replay, and return both the per-phase rows and a one-line summary.

:func:`run_catalog` fans ``(scenario x policy)`` rows across the
:class:`~repro.runtime.ParallelRunner` process pool exactly like the
e-experiments do: each row is a module-level worker fully determined by its
payload (the spec travels as a plain dict), results merge in submission
order, so every table is **byte-identical at any ``--jobs``**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.reporting import ResultTable
from repro.runtime import ParallelRunner, SeedTree
from repro.scenarios.measure import PhaseCollector
from repro.scenarios.spec import (
    CACHE_RESIZE,
    CACHE_WIPE,
    CELL_FAIL,
    CELL_RECOVER,
    LINK_DEGRADE,
    LINK_RESTORE,
    MOBILITY_SET,
    FaultEvent,
    ScenarioSpec,
)
from repro.scenarios.workload import synthesize_trace
from repro.sim.backend import SimBackend, create_backend, resolve_backend_name
from repro.sim.metrics import SimulationReport
from repro.sim.multicell import CellConfig, MobilityConfig, default_catalogue
from repro.sim.simulator import SimulatorConfig


def build_simulator(
    spec: ScenarioSpec,
    seed: int,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    backend_options: Optional[Dict[str, object]] = None,
) -> SimBackend:
    """A fresh deployment shaped by ``spec`` (same seed ⇒ same deployment).

    The model catalogue and mobility streams derive from seed-tree paths that
    do **not** include the cache policy, so two specs differing only in policy
    replay the identical trace through the identical deployment — policy
    comparisons are paired, not merely seeded alike.  The resilience policy
    likewise stays out of every seed path (its jitter seed is a *separate*
    tree leaf), so runs differing only in resilience are paired too.

    ``backend`` selects the execution engine through the
    :mod:`repro.sim.backend` registry (``None`` honours ``REPRO_BACKEND``
    and defaults to serial); ``shards`` and ``worker_timeout`` are forwarded
    to backends that partition work, and ``backend_options`` carries any
    further backend-specific knobs (e.g. ``cross_check`` for vectorized).
    """
    tree = SeedTree(seed).child("scenario", spec.name)
    capacity_bytes = int(spec.cache_capacity_mb * 1024 * 1024)
    cells = [
        CellConfig(
            name=f"cell_{index}",
            cache_capacity_bytes=capacity_bytes,
            cache_policy=spec.cache_policy,
        )
        for index in range(spec.num_cells)
    ]
    domain_names = [f"domain_{index}" for index in range(spec.num_domains)]
    catalogue = default_catalogue(domain_names, seed=tree.seed("catalogue"))
    config = SimulatorConfig(
        mobility=MobilityConfig(handover_probability=spec.handover_probability),
        retain_requests=False,
    )
    simulator = create_backend(
        backend,
        cells,
        catalogue,
        config=config,
        seed=tree.seed("mobility"),
        shards=shards,
        worker_timeout=worker_timeout,
        **(backend_options or {}),
    )
    if spec.resilience is not None:
        simulator.configure_resilience(spec.resilience, seed=tree.seed("resilience"))
    if spec.placement is not None:
        # Placement is RNG-free by contract, so no seed-tree leaf: runs
        # differing only in placement replay the identical trace through the
        # identical deployment and mobility streams.
        simulator.configure_placement(spec.placement)
    return simulator


def fault_calls(spec: ScenarioSpec, event: FaultEvent) -> List[Tuple[str, tuple]]:
    """Lower one fault event to ordered backend method calls (pure data).

    This is the backend-agnostic form of the timeline: every backend executes
    the same ``(method, args)`` sequence through
    :meth:`~repro.sim.backend.SimBackend.schedule_calls`, however it runs.
    """
    targets = (
        [event.cell]
        if event.cell is not None
        else [f"cell_{index}" for index in range(spec.num_cells)]
    )
    if event.kind == CELL_FAIL:
        return [("fail_cell", (event.cell,))]
    if event.kind == CELL_RECOVER:
        return [("recover_cell", (event.cell,))]
    if event.kind == CACHE_WIPE:
        return [("wipe_cell_cache", (name,)) for name in targets]
    if event.kind == LINK_DEGRADE:
        return [("degrade_downlink", (name, event.factor)) for name in targets]
    if event.kind == LINK_RESTORE:
        return [("restore_downlink", (name,)) for name in targets]
    if event.kind == CACHE_RESIZE:
        capacity = int(spec.cache_capacity_mb * 1024 * 1024 * event.factor)
        return [("resize_cell_cache", (name, capacity)) for name in targets]
    if event.kind == MOBILITY_SET:
        return [("set_handover_probability", (event.value,))]
    raise ValueError(f"unknown fault kind {event.kind!r}")  # pragma: no cover


def apply_fault(simulator: SimBackend, spec: ScenarioSpec, event: FaultEvent) -> None:
    """Execute one fault event against the live simulator (now = event time)."""
    for method, args in fault_calls(spec, event):
        getattr(simulator, method)(*args)


def schedule_faults(simulator: SimBackend, spec: ScenarioSpec) -> None:
    """Put the spec's fault timeline on the backend ahead of the replay.

    One :meth:`~repro.sim.backend.SimBackend.schedule_calls` batch per fault
    event.  On the serial engine that is one pre-run heap event per fault:
    pre-run events hold earlier sequence numbers than streamed arrivals, so a
    fault at time ``t`` fires before any arrival stamped exactly ``t`` — a
    phase boundary cleanly separates the regimes (and the committed tables
    stay byte-identical to the historical closure scheduling).
    """
    for event in spec.events:
        simulator.schedule_calls(
            event.time_s, fault_calls(spec, event), label=f"fault:{event.kind}"
        )


@dataclass
class ScenarioResult:
    """Everything one scenario run measured."""

    spec: ScenarioSpec
    report: SimulationReport
    summary: Dict[str, object]
    phases: List[Dict[str, object]]
    #: The backend the run executed on (post-replay state for audits); not
    #: carried across process boundaries — the pool worker returns rows only.
    simulator: Optional[SimBackend] = None


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    scale: float = 1.0,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    wrap_hook=None,
    worker_timeout: Optional[float] = None,
    backend_options: Optional[Dict[str, object]] = None,
) -> ScenarioResult:
    """Run one scenario end to end and return its summary + per-phase rows.

    Counter semantics differ between the two row kinds, deliberately: the
    summary's outcome counters (``hit_ratio``, ``neighbor_fetches``, ...)
    aggregate per-cell **lookup events**, so a request re-homed by a cell
    failure counts at both the cell it left and the cell that served it —
    that is the real load each cell saw.  The per-phase rows count each
    **request** once, by its final outcome.  Under fault injection the two
    views legitimately disagree by exactly the failed-over work.

    ``wrap_hook`` optionally wraps the phase collector before it is attached
    (``wrap_hook(collector)`` returns the hook actually installed) — the
    invariant harness chains its :class:`~repro.sim.invariants.InvariantChecker`
    through this without disturbing the measurement path.  For non-serial
    backends the wrapped hook must stay mergeable.
    """
    trace = synthesize_trace(spec, seed=seed, scale=scale)
    simulator = build_simulator(
        spec,
        seed=seed,
        backend=backend,
        shards=shards,
        worker_timeout=worker_timeout,
        backend_options=backend_options,
    )
    collector = PhaseCollector(spec)
    simulator.on_request_end = collector if wrap_hook is None else wrap_hook(collector)
    schedule_faults(simulator, spec)
    report = simulator.replay(trace)
    summary: Dict[str, object] = dict(
        scenario=spec.name,
        policy=spec.cache_policy,
        requests=len(trace),
        completed=report.completed,
        dropped=report.dropped,
        mean_ms=report.latency["mean_s"] * 1000.0,
        p50_ms=report.latency["p50_s"] * 1000.0,
        p95_ms=report.latency["p95_s"] * 1000.0,
        p99_ms=report.latency["p99_s"] * 1000.0,
        hit_ratio=report.hit_ratio,
        neighbor_fetches=sum(stats.neighbor_fetches for stats in report.cells.values()),
        cloud_fetches=sum(stats.cloud_fetches for stats in report.cells.values()),
        coalesced=sum(stats.coalesced for stats in report.cells.values()),
        handovers=sum(stats.handovers_in for stats in report.cells.values()),
        failovers=sum(stats.failovers for stats in report.cells.values()),
        mean_batch_size=report.mean_batch_size,
        compute_busy_s=report.total_compute_busy_s,
        backhaul_mb=report.backhaul_bytes / 1024**2,
        cloud_mb=report.cloud_bytes / 1024**2,
    )
    if spec.resilience is not None:
        # Resilience columns appear only on policy-bearing rows, so every
        # pre-resilience committed table regenerates byte-identically.
        stats = report.cells.values()
        summary["shed"] = report.shed
        summary["deadline_exceeded"] = report.deadline_exceeded
        summary["retries"] = sum(cell.retries for cell in stats)
        summary["hedges"] = sum(cell.hedges for cell in stats)
        summary["hedge_wins"] = sum(cell.hedge_wins for cell in stats)
        summary["breaker_transitions"] = sum(cell.breaker_transitions for cell in stats)
        terminal = report.completed + report.dropped + report.shed + report.deadline_exceeded
        summary["incomplete_ratio"] = (
            (report.dropped + report.shed + report.deadline_exceeded) / terminal
            if terminal
            else 0.0
        )
    if spec.placement is not None:
        # Placement columns appear only on placed rows, so every pre-placement
        # committed table regenerates byte-identically.
        info = simulator.placement_summary() or {}
        summary["placement"] = spec.placement.policy
        summary["placed_remote"] = int(info.get("forwards", 0))
        summary["placement_solves"] = int(info.get("solves", 0))
        summary["prewarmed_models"] = int(info.get("prewarmed_models", 0))
    phase_rows = [
        dict(scenario=spec.name, policy=spec.cache_policy, **row) for row in collector.rows()
    ]
    return ScenarioResult(
        spec=spec, report=report, summary=summary, phases=phase_rows, simulator=simulator
    )


def _run_row(payload: Dict[str, object]) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """One independent (scenario x policy) work unit for the process pool."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    policy = payload.get("policy")
    if policy:
        spec = spec.with_policy(str(policy))
    placement = payload.get("placement")
    if placement is not None:
        spec = spec.with_placement(placement)
    shards = payload.get("shards")
    worker_timeout = payload.get("worker_timeout")
    result = run_scenario(
        spec,
        seed=int(payload["seed"]),
        scale=float(payload["scale"]),
        backend=payload.get("backend"),
        shards=None if shards is None else int(shards),
        worker_timeout=None if worker_timeout is None else float(worker_timeout),
        backend_options=payload.get("backend_options"),
    )
    return result.summary, result.phases


def run_catalog(
    specs: Sequence[ScenarioSpec],
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
    policies: Optional[Sequence[str]] = None,
    table_prefix: str = "scenario",
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    backend_options: Optional[Dict[str, object]] = None,
    placement: Optional[Dict[str, object]] = None,
) -> Dict[str, ResultTable]:
    """Run every ``(scenario, policy)`` pair and collect two result tables.

    ``policies=None`` runs each spec under its own configured policy; a list
    runs every spec under every named policy (the E10 comparison shape).
    ``placement`` (a :class:`~repro.sim.placement.PlacementSpec` payload)
    overrides every row's placement policy, the CLI ``--placement`` path.
    Rows fan across the process pool and merge in submission order, so the
    returned tables are byte-identical for every ``jobs`` value.

    ``backend``/``shards`` select the simulator backend per row.  Backends
    that parallelize internally (sharded) run the rows sequentially — their
    own workers are the parallelism, and worker pools must not nest.  The
    single-process backends (serial, vectorized) fan rows across the pool.
    """
    resolved = resolve_backend_name(backend)
    if resolved not in ("serial", "vectorized"):
        jobs = 1
    payloads: List[Dict[str, object]] = [
        {
            "spec": spec.to_dict(),
            "seed": seed,
            "scale": scale,
            "policy": policy,
            "backend": resolved,
            "shards": shards,
            "worker_timeout": worker_timeout,
            "backend_options": backend_options,
            "placement": placement,
        }
        for spec in specs
        for policy in (policies if policies is not None else [None])
    ]
    summary_table = ResultTable(
        name=f"{table_prefix}_summary",
        description=(
            f"End-to-end outcome of each stress scenario at scale={scale}, seed={seed}: "
            "latency percentiles, drop/failover counts and cache behaviour per "
            "(scenario, policy) row."
        ),
    )
    phase_table = ResultTable(
        name=f"{table_prefix}_phases",
        description=(
            "Per-phase measurement windows of every scenario row: each workload phase "
            "(calm/spike, healthy/outage/recovered, ...) is reported separately."
        ),
    )
    for summary, phase_rows in ParallelRunner(jobs=jobs).map(_run_row, payloads):
        summary_table.add_row(**summary)
        for row in phase_rows:
            phase_table.add_row(**row)
    return {"summary": summary_table, "phases": phase_table}
