"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the unit the scenario engine runs: plain, frozen,
JSON-serializable dataclasses composing

* **workload phases** (:class:`WorkloadPhase`) — a piecewise arrival-rate
  schedule with per-phase popularity skew, popularity rotation and user-churn
  waves, synthesized into one columnar request trace
  (:mod:`repro.scenarios.workload`);
* a **fault timeline** (:class:`FaultEvent`) — timed mutations injected into
  the discrete-event simulator (cell failure/recovery, cache wipes, link
  degradation, capacity resizing, mobility surges);
* **measurement windows** — every phase is reported separately
  (:mod:`repro.scenarios.measure`), so degraded and recovered regimes never
  blur into one average.

Specs round-trip through ``to_dict``/``from_dict`` (and JSON), which is also
how they cross process boundaries when the runner fans scenarios across the
parallel runtime.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.sim.placement import PlacementSpec
from repro.sim.resilience import ResiliencePolicy

#: Fault-event kinds understood by :func:`repro.scenarios.runner.apply_fault`.
CELL_FAIL = "cell_fail"
CELL_RECOVER = "cell_recover"
CACHE_WIPE = "cache_wipe"
LINK_DEGRADE = "link_degrade"
LINK_RESTORE = "link_restore"
CACHE_RESIZE = "cache_resize"
MOBILITY_SET = "mobility_set"

FAULT_KINDS = (
    CELL_FAIL,
    CELL_RECOVER,
    CACHE_WIPE,
    LINK_DEGRADE,
    LINK_RESTORE,
    CACHE_RESIZE,
    MOBILITY_SET,
)


@dataclass(frozen=True)
class WorkloadPhase:
    """One piecewise-constant segment of the workload schedule.

    Attributes
    ----------
    name:
        Phase label; also names the measurement window in every result table.
    duration_s:
        Simulated length of the phase.
    rate_multiplier:
        Arrival rate of the phase as a multiple of the spec's ``base_rate``
        (a flash crowd is simply a phase with a large multiplier).
    zipf_exponent:
        Per-phase popularity skew override (``None`` = the spec's default).
    domain_shift:
        Rotate the popularity ranking by this many positions: domain ``i``
        inherits the popularity rank that domain ``i - shift`` had.  A shift
        of half the domain count is a popularity flip — the cache's working
        set is suddenly the wrong one.
    user_churn:
        Fraction of the user pool replaced by never-seen users at the start
        of the phase (a churn wave).  Fresh users carry no serving-cell
        affinity, so they re-randomize mobility placement.
    """

    name: str
    duration_s: float
    rate_multiplier: float = 1.0
    zipf_exponent: Optional[float] = None
    domain_shift: int = 0
    user_churn: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must not be empty")
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration_s must be positive, got {self.duration_s}")
        if self.rate_multiplier <= 0:
            raise ConfigurationError(f"rate_multiplier must be positive, got {self.rate_multiplier}")
        if self.zipf_exponent is not None and self.zipf_exponent < 0:
            raise ConfigurationError(f"zipf_exponent must be non-negative, got {self.zipf_exponent}")
        if not 0.0 <= self.user_churn <= 1.0:
            raise ConfigurationError(f"user_churn must be in [0, 1], got {self.user_churn}")


@dataclass(frozen=True)
class FaultEvent:
    """One timed mutation of the running deployment.

    Attributes
    ----------
    time_s:
        Absolute simulation time at which the event fires.
    kind:
        One of :data:`FAULT_KINDS`.
    cell:
        Target cell name (``cell_<i>``); ``None`` targets every cell for the
        kinds where that makes sense (wipe, link, resize).  ``cell_fail`` and
        ``cell_recover`` require an explicit cell.
    factor:
        Meaning depends on ``kind``: downlink slow-down multiple for
        ``link_degrade`` (8 = eight times slower), capacity multiple of the
        configured budget for ``cache_resize`` (0.25 = shrink to a quarter).
    value:
        The new handover probability for ``mobility_set``.
    """

    time_s: float
    kind: str
    cell: Optional[str] = None
    factor: float = 1.0
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError(f"time_s must be non-negative, got {self.time_s}")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.kind in (CELL_FAIL, CELL_RECOVER) and self.cell is None:
            raise ConfigurationError(f"{self.kind} requires an explicit cell")
        if self.factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {self.factor}")
        if self.kind == MOBILITY_SET:
            if self.value is None or not 0.0 <= self.value <= 1.0:
                raise ConfigurationError(f"mobility_set requires value in [0, 1], got {self.value}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible stress scenario.

    The workload (phases), the fault timeline (events) and the deployment
    shape live in one flat object: the same spec plus the same seed always
    produces byte-identical result tables, at any ``--jobs``.
    """

    name: str
    description: str
    phases: Tuple[WorkloadPhase, ...]
    events: Tuple[FaultEvent, ...] = ()
    num_cells: int = 4
    num_domains: int = 12
    num_users: int = 400
    #: Nominal arrivals per simulated second at ``rate_multiplier=1``.
    base_rate: float = 4000.0
    zipf_exponent: float = 0.9
    cache_policy: str = "lru"
    cache_capacity_mb: float = 48.0
    handover_probability: float = 0.02
    #: Optional request-level resilience policy (deadlines, retries, hedging,
    #: breakers, shedding — :mod:`repro.sim.resilience`).  ``None`` (the
    #: default) keeps the pre-resilience behaviour byte-for-byte; it is also
    #: omitted from ``to_dict`` so existing serialized specs round-trip
    #: unchanged.
    resilience: Optional[ResiliencePolicy] = None
    #: Optional global request-placement policy (naive/shortest-queue/
    #: max-flow routing plus the offline cache-placement prewarm —
    #: :mod:`repro.sim.placement`).  ``None`` (the default) keeps the
    #: unplaced behaviour byte-for-byte and is omitted from ``to_dict``.
    #: Mutually exclusive with ``resilience``.
    placement: Optional[PlacementSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must not be empty")
        if not self.phases:
            raise ConfigurationError("a scenario needs at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(self, "events", tuple(self.events))
        if self.resilience is not None and not isinstance(self.resilience, ResiliencePolicy):
            object.__setattr__(
                self, "resilience", ResiliencePolicy.from_dict(self.resilience)
            )
        if self.placement is not None and not isinstance(self.placement, PlacementSpec):
            object.__setattr__(
                self, "placement", PlacementSpec.from_dict(self.placement)
            )
        if self.placement is not None and self.resilience is not None:
            raise ConfigurationError(
                "resilience and placement policies are mutually exclusive on one spec"
            )
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"phase names must be unique, got {names}")
        if self.num_cells < 1:
            raise ConfigurationError(f"num_cells must be >= 1, got {self.num_cells}")
        if self.num_domains < 1:
            raise ConfigurationError(f"num_domains must be >= 1, got {self.num_domains}")
        if self.num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {self.num_users}")
        if self.base_rate <= 0:
            raise ConfigurationError(f"base_rate must be positive, got {self.base_rate}")
        if self.zipf_exponent < 0:
            raise ConfigurationError(f"zipf_exponent must be non-negative, got {self.zipf_exponent}")
        if self.cache_capacity_mb <= 0:
            raise ConfigurationError(f"cache_capacity_mb must be positive, got {self.cache_capacity_mb}")
        if not 0.0 <= self.handover_probability <= 1.0:
            raise ConfigurationError(
                f"handover_probability must be in [0, 1], got {self.handover_probability}"
            )
        duration = self.total_duration_s
        # The exact names the runner generates — 'cell_01' is not 'cell_1'.
        cell_names = {f"cell_{index}" for index in range(self.num_cells)}
        for event in self.events:
            if event.time_s > duration:
                raise ConfigurationError(
                    f"event {event.kind!r} at t={event.time_s}s is past the scenario end "
                    f"({duration}s)"
                )
            if event.cell is not None and event.cell not in cell_names:
                raise ConfigurationError(
                    f"event targets unknown cell {event.cell!r} (deployment has "
                    f"{self.num_cells} cells named cell_0..cell_{self.num_cells - 1})"
                )

    @property
    def total_duration_s(self) -> float:
        """Simulated length of the whole scenario."""
        return sum(phase.duration_s for phase in self.phases)

    def phase_boundaries(self) -> List[float]:
        """Phase start times plus the final end time (``len(phases) + 1`` values)."""
        boundaries = [0.0]
        for phase in self.phases:
            boundaries.append(boundaries[-1] + phase.duration_s)
        return boundaries

    def phase_request_count(self, index: int, scale: float = 1.0) -> int:
        """Requests the synthesizer draws for phase ``index`` at ``scale`` (>= 1).

        ``scale`` multiplies the *rate*, not the duration, so fault-event
        times and phase boundaries never move with it.
        """
        phase = self.phases[index]
        return max(1, round(self.base_rate * phase.rate_multiplier * scale * phase.duration_s))

    def expected_requests(self, scale: float = 1.0) -> int:
        """Total request count the workload synthesizer will draw at ``scale``."""
        return sum(self.phase_request_count(index, scale) for index in range(len(self.phases)))

    def with_policy(self, policy: str) -> "ScenarioSpec":
        """A copy of this spec running a different cache eviction policy."""
        return replace(self, cache_policy=policy)

    def with_resilience(self, policy: Optional[ResiliencePolicy]) -> "ScenarioSpec":
        """A copy of this spec running a different resilience policy."""
        return replace(self, resilience=policy)

    def with_placement(self, placement: Optional[PlacementSpec | dict]) -> "ScenarioSpec":
        """A copy of this spec running a different placement policy."""
        return replace(self, placement=placement)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (tuples become lists).

        The ``resilience`` key is present only when a policy is set, so
        specs predating the resilience layer serialize byte-identically.
        """
        payload = asdict(self)
        if payload.get("resilience") is None:
            payload.pop("resilience", None)
        if payload.get("placement") is None:
            payload.pop("placement", None)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(data)
        payload["phases"] = tuple(
            phase if isinstance(phase, WorkloadPhase) else WorkloadPhase(**phase)
            for phase in payload.get("phases", ())
        )
        payload["events"] = tuple(
            event if isinstance(event, FaultEvent) else FaultEvent(**event)
            for event in payload.get("events", ())
        )
        resilience = payload.get("resilience")
        if resilience is not None and not isinstance(resilience, ResiliencePolicy):
            payload["resilience"] = ResiliencePolicy.from_dict(resilience)
        placement = payload.get("placement")
        if placement is not None and not isinstance(placement, PlacementSpec):
            payload["placement"] = PlacementSpec.from_dict(placement)
        return cls(**payload)

    def to_json(self) -> str:
        """Serialize the spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


__all__ = [
    "WorkloadPhase",
    "FaultEvent",
    "ScenarioSpec",
    "FAULT_KINDS",
    "CELL_FAIL",
    "CELL_RECOVER",
    "CACHE_WIPE",
    "LINK_DEGRADE",
    "LINK_RESTORE",
    "CACHE_RESIZE",
    "MOBILITY_SET",
]
