"""Declarative stress scenarios for the multi-cell simulator.

The scenario engine turns the event-driven simulator into an instrument for
adversarial conditions: a :class:`ScenarioSpec` composes piecewise workload
phases (flash crowds, popularity flips, churn waves), a fault timeline (cell
outages, cache wipes, link brownouts, capacity crunches, mobility storms) and
per-phase measurement windows into one reproducible run.  The curated catalog
(:func:`catalog`) ships nine named scenarios; the ``repro-scenario`` CLI and
experiment E10 run them, bit-identically at any ``--jobs``.
"""

from repro.scenarios.catalog import catalog, get_scenario, scenario_names
from repro.scenarios.measure import PhaseCollector
from repro.scenarios.runner import (
    ScenarioResult,
    apply_fault,
    build_simulator,
    run_catalog,
    run_scenario,
    schedule_faults,
)
from repro.scenarios.spec import (
    CACHE_RESIZE,
    CACHE_WIPE,
    CELL_FAIL,
    CELL_RECOVER,
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_RESTORE,
    MOBILITY_SET,
    FaultEvent,
    ScenarioSpec,
    WorkloadPhase,
)
from repro.scenarios.workload import phase_request_count, synthesize_trace

__all__ = [
    "ScenarioSpec",
    "WorkloadPhase",
    "FaultEvent",
    "FAULT_KINDS",
    "CELL_FAIL",
    "CELL_RECOVER",
    "CACHE_WIPE",
    "LINK_DEGRADE",
    "LINK_RESTORE",
    "CACHE_RESIZE",
    "MOBILITY_SET",
    "catalog",
    "scenario_names",
    "get_scenario",
    "PhaseCollector",
    "ScenarioResult",
    "run_scenario",
    "run_catalog",
    "build_simulator",
    "schedule_faults",
    "apply_fault",
    "synthesize_trace",
    "phase_request_count",
]
