"""The curated scenario catalog.

Nine named, reproducible stress scenarios covering the adversarial regimes the
happy-path experiments never reach: demand spikes, cell outages, cache cold
restarts, popularity flips, mobility storms, churn waves, link brownouts and
capacity crunches — plus a steady-state control every other scenario is read
against.  Each is a plain :class:`~repro.scenarios.spec.ScenarioSpec`; adding
a scenario is adding one entry here (the CLI, the runner, E10 and CI pick it
up by name).

Sizing: at ``scale=1`` each scenario replays roughly 40–70k requests, so the
full catalog is of the same order as one E9 run; CI's smoke job runs it at
``--scale 0.05``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    CACHE_RESIZE,
    CACHE_WIPE,
    CELL_FAIL,
    CELL_RECOVER,
    LINK_DEGRADE,
    LINK_RESTORE,
    MOBILITY_SET,
    FaultEvent,
    ScenarioSpec,
    WorkloadPhase,
)


def _specs() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="steady_state",
            description=(
                "Control: one stationary phase, no faults — the baseline every "
                "stressed regime is compared against."
            ),
            phases=(WorkloadPhase("steady", duration_s=12.0),),
        ),
        ScenarioSpec(
            name="flash_crowd",
            description=(
                "A 6x demand spike between two calm phases (a viral event): the "
                "batchers and caches absorb a burst far above provisioned load."
            ),
            base_rate=2500.0,
            phases=(
                WorkloadPhase("calm", duration_s=4.0),
                WorkloadPhase("spike", duration_s=4.0, rate_multiplier=6.0),
                WorkloadPhase("cooldown", duration_s=4.0),
            ),
        ),
        ScenarioSpec(
            name="cell_outage",
            description=(
                "One of four cells fails mid-run and recovers cold two phases "
                "later; its users fail over to backhaul neighbours."
            ),
            phases=(
                WorkloadPhase("healthy", duration_s=4.0),
                WorkloadPhase("outage", duration_s=4.0),
                WorkloadPhase("recovered", duration_s=4.0),
            ),
            events=(
                FaultEvent(time_s=4.0, kind=CELL_FAIL, cell="cell_1"),
                FaultEvent(time_s=8.0, kind=CELL_RECOVER, cell="cell_1"),
            ),
        ),
        ScenarioSpec(
            name="cache_cold_restart",
            description=(
                "Every cell's cache is wiped mid-run (a fleet-wide restart): "
                "the hit ratio collapses and the refill storm hits cloud+backhaul."
            ),
            phases=(
                WorkloadPhase("warm", duration_s=5.0),
                WorkloadPhase("cold", duration_s=5.0),
            ),
            events=(FaultEvent(time_s=5.0, kind=CACHE_WIPE),),
        ),
        ScenarioSpec(
            name="popularity_flip",
            description=(
                "The domain popularity ranking rotates by half the catalogue at "
                "a phase boundary: the cached working set is suddenly the wrong one."
            ),
            phases=(
                WorkloadPhase("before", duration_s=5.0),
                WorkloadPhase("after", duration_s=5.0, domain_shift=6),
            ),
        ),
        ScenarioSpec(
            name="rush_hour_mobility",
            description=(
                "A commute: demand doubles while the handover probability jumps "
                "10x (users in motion), then both relax."
            ),
            phases=(
                WorkloadPhase("off_peak", duration_s=4.0),
                WorkloadPhase("rush", duration_s=4.0, rate_multiplier=2.0),
                WorkloadPhase("evening", duration_s=4.0),
            ),
            events=(
                FaultEvent(time_s=4.0, kind=MOBILITY_SET, value=0.2),
                FaultEvent(time_s=8.0, kind=MOBILITY_SET, value=0.02),
            ),
        ),
        ScenarioSpec(
            name="user_churn_wave",
            description=(
                "Half the user population is replaced at each phase boundary: "
                "fresh users carry no cell affinity, re-randomizing placement."
            ),
            phases=(
                WorkloadPhase("cohort_a", duration_s=4.0),
                WorkloadPhase("cohort_b", duration_s=4.0, user_churn=0.5),
                WorkloadPhase("cohort_c", duration_s=4.0, user_churn=0.5),
            ),
        ),
        ScenarioSpec(
            name="link_brownout",
            description=(
                "Every downlink slows 8x for a window (weather, interference), "
                "then restores: per-request radio time dominates latency."
            ),
            phases=(
                WorkloadPhase("clear", duration_s=4.0),
                WorkloadPhase("brownout", duration_s=4.0),
                WorkloadPhase("restored", duration_s=4.0),
            ),
            events=(
                FaultEvent(time_s=4.0, kind=LINK_DEGRADE, factor=8.0),
                FaultEvent(time_s=8.0, kind=LINK_RESTORE),
            ),
        ),
        ScenarioSpec(
            name="capacity_crunch",
            description=(
                "Every cache shrinks to a quarter of its budget mid-run "
                "(co-tenant pressure) and is restored later: eviction storms, "
                "then a refill."
            ),
            phases=(
                WorkloadPhase("full_budget", duration_s=4.0),
                WorkloadPhase("crunch", duration_s=4.0),
                WorkloadPhase("restored", duration_s=4.0),
            ),
            events=(
                FaultEvent(time_s=4.0, kind=CACHE_RESIZE, factor=0.25),
                FaultEvent(time_s=8.0, kind=CACHE_RESIZE, factor=1.0),
            ),
        ),
    ]


def catalog() -> Dict[str, ScenarioSpec]:
    """The named scenario catalog, in curated order."""
    return {spec.name: spec for spec in _specs()}


def scenario_names() -> List[str]:
    """Catalog names in curated order."""
    return [spec.name for spec in _specs()]


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one catalog scenario by name."""
    specs = catalog()
    if name not in specs:
        known = ", ".join(specs)
        raise KeyError(f"unknown scenario {name!r}; catalog has: {known}")
    return specs[name]
