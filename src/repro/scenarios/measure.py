"""Per-phase measurement windows over a scenario run.

The simulator reports one aggregate over the whole run; a stress scenario is
interesting precisely because its regimes differ (before / during / after the
fault, quiet vs. flash crowd).  :class:`PhaseCollector` hangs off the
simulator's ``on_request_end`` hook and bins every terminal request — by its
**arrival time** — into the spec's phase windows, keeping an exact-or-reservoir
latency distribution plus outcome counters per window.

Binning by arrival time (not completion time) attributes a request to the
regime that *generated* it: a request arriving during an outage but completing
after recovery still counts against the outage window, which is what a
"latency during the failure" column must mean.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List

from repro.scenarios.spec import ScenarioSpec
from repro.sim.metrics import LatencyRecorder
from repro.sim.request import (
    CLOUD_FETCH,
    COALESCED,
    COMPLETED,
    DEADLINE_EXCEEDED,
    DROPPED,
    LOCAL_HIT,
    NEIGHBOR_FETCH,
    SHED,
    Request,
)


class _PhaseWindow:
    """Counters and latency distribution of one measurement window."""

    __slots__ = (
        "name",
        "start_s",
        "end_s",
        "completed",
        "dropped",
        "shed",
        "deadline_exceeded",
        "handovers",
        "outcomes",
        "latency",
    )

    def __init__(self, name: str, start_s: float, end_s: float, reservoir: int) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.completed = 0
        self.dropped = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.handovers = 0
        self.outcomes: Dict[str, int] = {
            LOCAL_HIT: 0,
            NEIGHBOR_FETCH: 0,
            CLOUD_FETCH: 0,
            COALESCED: 0,
        }
        self.latency = LatencyRecorder(reservoir_size=reservoir)


class PhaseCollector:
    """Bins terminal requests into the spec's phase windows.

    Attach with ``simulator.on_request_end = collector`` before the replay.
    The collector is deterministic: its reservoir recorders are seeded, and it
    observes requests in event order, which the engine fixes.
    """

    def __init__(self, spec: ScenarioSpec, latency_reservoir: int = 100_000) -> None:
        self._spec = spec
        self._reservoir = latency_reservoir
        boundaries = spec.phase_boundaries()
        self._starts = boundaries[:-1]
        self.windows: List[_PhaseWindow] = [
            _PhaseWindow(phase.name, boundaries[i], boundaries[i + 1], latency_reservoir)
            for i, phase in enumerate(spec.phases)
        ]

    def clone_empty(self) -> "PhaseCollector":
        """A fresh collector over the same windows (sharded per-shard hook)."""
        return PhaseCollector(self._spec, latency_reservoir=self._reservoir)

    def merge(self, other: "PhaseCollector") -> None:
        """Fold another collector's windows into this one, deterministically.

        The sharded backend observes each shard's terminal requests in its
        own collector and merges them in shard-index order; counters add
        exactly, latency distributions merge via
        :meth:`~repro.sim.metrics.LatencyRecorder.absorb`.
        """
        for window, theirs in zip(self.windows, other.windows):
            window.completed += theirs.completed
            window.dropped += theirs.dropped
            window.shed += theirs.shed
            window.deadline_exceeded += theirs.deadline_exceeded
            window.handovers += theirs.handovers
            for key, count in theirs.outcomes.items():
                window.outcomes[key] += count
            window.latency.absorb(theirs.latency)

    def __call__(self, request: Request) -> None:
        # A request arriving exactly on a boundary belongs to the later phase;
        # arrivals never precede phase 0 or outlive the last window by
        # construction of the synthesized trace.
        index = bisect_right(self._starts, request.arrival_time) - 1
        window = self.windows[index]
        status = request.status
        if status != COMPLETED:
            # Non-completed terminals carry no completion time — they must
            # never reach the latency recorder (a DROPPED/SHED request would
            # otherwise record a negative "latency" from the UNSET sentinel).
            if status == DROPPED:
                window.dropped += 1
            elif status == SHED:
                window.shed += 1
            elif status == DEADLINE_EXCEEDED:
                window.deadline_exceeded += 1
            return
        window.completed += 1
        if request.handover and request.cell:
            # Both mobility handovers and failure-driven re-homing; the
            # failure-specific count lives in the per-cell stats.
            window.handovers += 1
        outcome = window.outcomes
        if request.cache_outcome in outcome:
            outcome[request.cache_outcome] += 1
        window.latency.record(request.completion_time - request.arrival_time)

    def rows(self) -> List[Dict[str, object]]:
        """One result-table row per phase window (deterministic fields only)."""
        rows: List[Dict[str, object]] = []
        for window in self.windows:
            outcomes = window.outcomes
            lookups = sum(outcomes.values())
            summary = window.latency.summary()
            row = dict(
                phase=window.name,
                start_s=window.start_s,
                end_s=window.end_s,
                completed=window.completed,
                dropped=window.dropped,
                hit_ratio=(outcomes[LOCAL_HIT] / lookups) if lookups else 0.0,
                neighbor_fetches=outcomes[NEIGHBOR_FETCH],
                cloud_fetches=outcomes[CLOUD_FETCH],
                coalesced=outcomes[COALESCED],
                handovers=window.handovers,
                mean_ms=summary["mean_s"] * 1000.0,
                p50_ms=summary["p50_s"] * 1000.0,
                p95_ms=summary["p95_s"] * 1000.0,
                p99_ms=summary["p99_s"] * 1000.0,
            )
            if self._spec.resilience is not None:
                # Only policy-bearing rows grow the new columns — committed
                # pre-resilience phase tables regenerate byte-identically.
                row["shed"] = window.shed
                row["deadline_exceeded"] = window.deadline_exceeded
            rows.append(row)
        return rows
