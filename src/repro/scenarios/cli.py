"""Command-line front end for the scenario engine.

Installed as the ``repro-scenario`` console script::

    repro-scenario list
    repro-scenario show flash_crowd
    repro-scenario run --all --scale 0.05
    repro-scenario run --all --scale 0.05 --backend sharded --shards 2
    repro-scenario run cell_outage flash_crowd --jobs 4 --output-dir results/
    repro-scenario compare cell_outage --policies lru,lfu,semantic-popularity

``run`` replays named scenarios (or the whole catalog) and prints the summary
and per-phase tables; ``compare`` runs one scenario under several cache
policies and pivots the headline metrics per policy.  Rows fan across the
parallel runtime with ``--jobs``; every table is byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.cli import (
    add_shared_arguments,
    placement_from_args,
    validate_shared_arguments,
)
from repro.experiments.harness import save_output
from repro.metrics.reporting import ResultTable
from repro.scenarios.catalog import catalog, get_scenario, scenario_names
from repro.scenarios.runner import run_catalog


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-scenario`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Run declarative stress scenarios through the multi-cell simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the scenario catalog and exit")

    show = sub.add_parser("show", help="print one scenario's full JSON spec")
    show.add_argument("name", help="scenario name (see `repro-scenario list`)")

    def common(p: argparse.ArgumentParser) -> None:
        # --seed/--scale/--jobs/--backend/--shards are the shared repro flag
        # set (same semantics as repro-experiment); only the help strings are
        # specialized here.
        add_shared_arguments(
            p,
            scale_help="arrival-rate scale factor; the timeline (phases, fault "
            "times) never moves, only the request count (default 1.0)",
            jobs_help="worker processes for the (scenario x policy) rows; 0 = all "
            "cores; results are bit-identical to --jobs 1 (default 1)",
        )
        p.add_argument("--output-dir", default=None, help="directory to persist tables as JSON")
        p.add_argument(
            "--no-phases", action="store_true", help="print only the summary table"
        )

    run = sub.add_parser("run", help="run scenarios and print their result tables")
    run.add_argument("names", nargs="*", help="scenario names (default: requires --all)")
    run.add_argument("--all", action="store_true", help="run the whole catalog")
    run.add_argument(
        "--policy", default=None, help="override the cache policy of every scenario"
    )
    common(run)

    compare = sub.add_parser(
        "compare", help="run one scenario under several cache policies and pivot"
    )
    compare.add_argument("name", help="scenario to compare policies on")
    compare.add_argument(
        "--policies",
        default="lru,lfu,semantic-popularity",
        help="comma-separated cache policies (default lru,lfu,semantic-popularity)",
    )
    common(compare)

    fuzz = sub.add_parser(
        "fuzz",
        help="property-test random scenarios through the invariant harness",
        description=(
            "Sample random-but-valid scenario specs and drive each through the "
            "invariant harness (engine audits, determinism, three-way backend "
            "differential). A failing spec is shrunk to a minimal example and "
            "saved to the regression corpus. Requires the `hypothesis` test "
            "dependency."
        ),
    )
    fuzz.add_argument("--cases", type=int, default=50, help="specs to sample (default 50)")
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="harness seed; generation, workloads and deployments all derive "
        "from it, so one integer replays the whole run (default 0)",
    )
    fuzz.add_argument(
        "--scale", type=float, default=1.0, help="arrival-rate scale factor (default 1.0)"
    )
    fuzz.add_argument(
        "--backend",
        choices=("serial", "sharded", "vectorized"),
        default="sharded",
        help="'serial' runs the engine + determinism layers only; 'sharded' "
        "(default) or 'vectorized' adds the three-way differential layer "
        "(serial-vs-sharded divergence envelope + serial-vs-vectorized "
        "byte-identity)",
    )
    fuzz.add_argument(
        "--shards",
        default="2,3",
        help="comma-separated shard counts for the differential layer "
        "(clamped per spec to its cell count; default 2,3)",
    )
    fuzz.add_argument(
        "--regressions-dir",
        default="tests/scenarios/regressions",
        help="where shrunk failing specs are serialized "
        "(default tests/scenarios/regressions)",
    )
    return parser


def _print_tables(tables: List[ResultTable]) -> None:
    for table in tables:
        print(table.to_text())
        print()


def _run_fuzz(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """The ``fuzz`` subcommand body (lazy-imports the hypothesis harness)."""
    try:
        from repro.scenarios import fuzz as fuzz_module
    except ImportError as error:
        parser.error(
            f"the fuzz harness needs the `hypothesis` test dependency ({error}); "
            "install the [dev] extra to use `repro-scenario fuzz`"
        )
    if args.cases < 1:
        parser.error(f"--cases must be >= 1, got {args.cases}")
    try:
        shard_counts = tuple(int(s) for s in args.shards.split(",") if s.strip())
    except ValueError:
        parser.error(f"--shards must be comma-separated integers, got {args.shards!r}")
    if not shard_counts or any(s < 2 for s in shard_counts):
        parser.error(f"--shards values must be >= 2, got {args.shards!r}")
    differential = args.backend in ("sharded", "vectorized")
    layers = (
        "engine + determinism + differential" if differential else "engine + determinism"
    )
    print(
        f"fuzzing {args.cases} scenario specs (seed {args.seed}, scale {args.scale}, "
        f"layers: {layers})"
    )
    outcome = fuzz_module.fuzz(
        cases=args.cases,
        seed=args.seed,
        scale=args.scale,
        shard_counts=shard_counts,
        differential=differential,
        regressions_dir=args.regressions_dir,
        found_by=f"repro-scenario fuzz --cases {args.cases} --seed {args.seed} "
        f"--backend {args.backend}",
    )
    print(f"hypothesis generation seed: {outcome.hypothesis_seed}")
    if outcome.ok:
        print(f"OK: {outcome.cases} cases, {outcome.executed} executions, no violations")
        return 0
    print(f"FAILED: {outcome.error}")
    print(f"shrunk failing spec: {outcome.failure_spec.name}")
    if outcome.regression_path is not None:
        print(f"regression saved to {outcome.regression_path}")
        print(
            "replay it with: PYTHONPATH=src python -m pytest "
            "tests/scenarios/test_regressions.py, or re-run this exact command "
            f"(--seed {outcome.seed} regenerates the same cases)"
        )
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        specs = catalog()
        width = max(len(name) for name in specs)
        for spec in specs.values():
            stamp = f"{len(spec.phases)} phases, {len(spec.events)} events"
            print(f"{spec.name.ljust(width)}  [{stamp}]  {spec.description}")
        return 0

    if args.command == "show":
        try:
            print(get_scenario(args.name).to_json())
        except KeyError as error:
            parser.error(str(error))
        return 0

    if args.command == "fuzz":
        return _run_fuzz(parser, args)

    validate_shared_arguments(parser, args)

    if args.command == "run":
        if args.all:
            names = scenario_names()
        elif args.names:
            names = list(args.names)
        else:
            parser.error("name at least one scenario or pass --all")
        try:
            specs = [get_scenario(name) for name in names]
        except KeyError as error:
            parser.error(str(error))
        policies = [args.policy] if args.policy else None
        tables = run_catalog(
            specs,
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            policies=policies,
            backend=args.backend,
            shards=args.shards,
            worker_timeout=args.worker_timeout,
            placement=placement_from_args(args),
        )
        shown = [tables["summary"]] if args.no_phases else list(tables.values())
        _print_tables(shown)
        if args.output_dir:
            save_output("scenario", tables, args.output_dir)
            print(f"tables saved under {args.output_dir}")
        return 0

    # compare
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        parser.error(str(error))
    policies = [policy.strip() for policy in args.policies.split(",") if policy.strip()]
    if not policies:
        parser.error("--policies must name at least one policy")
    tables = run_catalog(
        [spec],
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        policies=policies,
        table_prefix=f"compare_{spec.name}",
        backend=args.backend,
        shards=args.shards,
        worker_timeout=args.worker_timeout,
        placement=placement_from_args(args),
    )
    pivot = ResultTable(
        name=f"{spec.name}_policy_comparison",
        description=f"Headline metrics of {spec.name!r} per cache policy.",
    )
    for row in tables["summary"].rows:
        # Every terminal kind that is *not* a completion counts as incomplete;
        # resilience-bearing specs report the ratio themselves, plain specs
        # derive it from the drop count so the pivot is always populated.
        incomplete = (
            row["dropped"] + row.get("shed", 0) + row.get("deadline_exceeded", 0)
        )
        terminal = row["completed"] + incomplete
        pivot.add_row(
            policy=row["policy"],
            completed=row["completed"],
            dropped=row["dropped"],
            incomplete_ratio=row.get(
                "incomplete_ratio", incomplete / terminal if terminal else 0.0
            ),
            p50_ms=row["p50_ms"],
            p95_ms=row["p95_ms"],
            hit_ratio=row["hit_ratio"],
            cloud_fetches=row["cloud_fetches"],
            backhaul_mb=row["backhaul_mb"],
        )
    _print_tables([pivot] if args.no_phases else [pivot, tables["phases"]])
    if args.output_dir:
        save_output(f"compare_{spec.name}", tables, args.output_dir)
        print(f"tables saved under {args.output_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
