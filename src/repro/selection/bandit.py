"""Bandit-style online model selection (the RL flavour of Section III-A).

When no labelled training corpus exists, the edge server can learn which
domain model serves a user best from the observed mismatch alone: selecting a
model is pulling an arm, and the reward is the semantic fidelity the receiver
reports back.  Both an epsilon-greedy and a LinUCB-style contextual bandit are
provided.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.selection.features import MessageFeaturizer
from repro.selection.policy import SelectionPolicy
from repro.utils.rng import SeedLike, new_rng


class EpsilonGreedyPolicy(SelectionPolicy):
    """Context-free epsilon-greedy bandit over the candidate domains.

    ``feedback`` treats a correct selection as reward 1 and a wrong one as
    reward 0 (the system version feeds 1 - mismatch instead).
    """

    name = "epsilon-greedy"

    def __init__(
        self,
        domain_names: Sequence[str],
        epsilon: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(domain_names)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = new_rng(seed)
        self._counts: Dict[str, int] = {domain: 0 for domain in self.domain_names}
        self._values: Dict[str, float] = {domain: 0.0 for domain in self.domain_names}
        self._last_selected: Optional[str] = None

    def select(self, message: str) -> str:
        if self._rng.random() < self.epsilon:
            choice = self.domain_names[int(self._rng.integers(len(self.domain_names)))]
        else:
            choice = max(self.domain_names, key=lambda domain: self._values[domain])
        self._last_selected = choice
        return choice

    def reward(self, domain: str, value: float) -> None:
        """Update the running mean reward of ``domain``."""
        self._counts[domain] += 1
        count = self._counts[domain]
        self._values[domain] += (value - self._values[domain]) / count

    def feedback(self, message: str, true_domain: str) -> None:
        if self._last_selected is None:
            return
        self.reward(self._last_selected, 1.0 if self._last_selected == true_domain else 0.0)

    def reset(self) -> None:
        self._counts = {domain: 0 for domain in self.domain_names}
        self._values = {domain: 0.0 for domain in self.domain_names}
        self._last_selected = None


class LinUcbPolicy(SelectionPolicy):
    """LinUCB contextual bandit: linear reward model per domain with UCB exploration."""

    name = "linucb"

    def __init__(
        self,
        featurizer: MessageFeaturizer,
        domain_names: Sequence[str],
        alpha: float = 0.5,
        ridge: float = 1.0,
    ) -> None:
        super().__init__(domain_names)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if ridge <= 0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        self.featurizer = featurizer
        self.alpha = alpha
        self.ridge = ridge
        dim = featurizer.dim
        self._a_inverse: Dict[str, np.ndarray] = {d: np.eye(dim) / ridge for d in self.domain_names}
        self._b: Dict[str, np.ndarray] = {d: np.zeros(dim) for d in self.domain_names}
        self._last_context: Optional[np.ndarray] = None
        self._last_selected: Optional[str] = None

    def _ucb_score(self, domain: str, context: np.ndarray) -> float:
        a_inverse = self._a_inverse[domain]
        theta = a_inverse @ self._b[domain]
        mean = float(theta @ context)
        exploration = self.alpha * float(np.sqrt(context @ a_inverse @ context))
        return mean + exploration

    def select(self, message: str) -> str:
        context = self.featurizer.features(message)
        scores = {domain: self._ucb_score(domain, context) for domain in self.domain_names}
        choice = max(scores, key=scores.get)
        self._last_context = context
        self._last_selected = choice
        return choice

    def reward(self, domain: str, context: np.ndarray, value: float) -> None:
        """Sherman-Morrison update of the selected domain's linear model."""
        a_inverse = self._a_inverse[domain]
        denominator = 1.0 + float(context @ a_inverse @ context)
        outer = np.outer(a_inverse @ context, context @ a_inverse)
        self._a_inverse[domain] = a_inverse - outer / denominator
        self._b[domain] += value * context

    def feedback(self, message: str, true_domain: str) -> None:
        if self._last_selected is None or self._last_context is None:
            return
        value = 1.0 if self._last_selected == true_domain else 0.0
        self.reward(self._last_selected, self._last_context, value)

    def reset(self) -> None:
        dim = self.featurizer.dim
        self._a_inverse = {d: np.eye(dim) / self.ridge for d in self.domain_names}
        self._b = {d: np.zeros(dim) for d in self.domain_names}
        self._last_context = None
        self._last_selected = None
