"""Message featurization shared by the model-selection policies.

All selectors consume a fixed-length numeric representation of a message (and
optionally of its recent context).  The representation is a normalized
bag-of-words over a reference vocabulary — simple, deterministic, and exactly
as informative as the synthetic domains allow.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.text import Vocabulary, simple_tokenize


class MessageFeaturizer:
    """Maps messages to normalized bag-of-words vectors over a vocabulary."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    @property
    def dim(self) -> int:
        """Feature dimensionality (= vocabulary size)."""
        return len(self.vocabulary)

    def features(self, text: str) -> np.ndarray:
        """Normalized bag-of-words vector for one message."""
        vector = np.zeros(self.dim, dtype=np.float64)
        tokens = simple_tokenize(text)
        for token in tokens:
            vector[self.vocabulary.token_to_id(token)] += 1.0
        total = vector.sum()
        if total > 0:
            vector /= total
        return vector

    def batch_features(self, texts: Sequence[str]) -> np.ndarray:
        """Feature matrix of shape ``(len(texts), dim)``."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.features(text) for text in texts])

    def context_features(self, texts: Sequence[str], window: int) -> np.ndarray:
        """Per-turn context tensor of shape ``(len(texts), window, dim)``.

        Turn ``t``'s context is the window of messages ``t-window+1 .. t``
        (zero-padded at the start of the conversation), which is what the
        recurrent selector consumes.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        per_message = self.batch_features(texts)
        padded = np.concatenate([np.zeros((window - 1, self.dim)), per_message], axis=0)
        return np.stack([padded[t : t + window] for t in range(len(texts))])


def build_featurizer(corpus_texts: Sequence[str]) -> MessageFeaturizer:
    """Build a featurizer whose vocabulary covers ``corpus_texts``."""
    tokenized: List[List[str]] = [simple_tokenize(text) for text in corpus_texts]
    vocabulary = Vocabulary.from_corpus(tokenized)
    return MessageFeaturizer(vocabulary)
