"""Context-aware model selection with a recurrent network (Section III-A).

The paper suggests "deep reinforcement learning or LSTM-based classification
networks" to use conversational context when selecting the domain model.  The
:class:`ContextualSelectionPolicy` keeps a sliding window of recent messages,
encodes each as bag-of-words features, runs a GRU over the window and
classifies the current domain from the final hidden state.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

import numpy as np

from repro.nn import (
    Adam,
    RecurrentClassifier,
    Tensor,
    cross_entropy_from_parts,
    cross_entropy_loss,
    cross_entropy_parts,
)
from repro.selection.features import MessageFeaturizer
from repro.selection.policy import SelectionPolicy
from repro.utils.rng import SeedLike, new_rng


class ContextualDomainSelector:
    """GRU classifier over a window of recent message features."""

    def __init__(
        self,
        featurizer: MessageFeaturizer,
        domain_names: Sequence[str],
        context_window: int = 4,
        hidden_dim: int = 32,
        seed: SeedLike = None,
    ) -> None:
        if context_window <= 0:
            raise ValueError(f"context_window must be positive, got {context_window}")
        self.featurizer = featurizer
        self.domain_names = list(domain_names)
        self.context_window = context_window
        self.model = RecurrentClassifier(featurizer.dim, hidden_dim, len(self.domain_names), seed=seed)

    def fit(
        self,
        conversations: Sequence[Sequence[str]],
        domain_labels: Sequence[Sequence[str]],
        epochs: int = 10,
        learning_rate: float = 5e-3,
        batch_size: int = 32,
        seed: SeedLike = None,
    ) -> list[float]:
        """Train on conversations labelled with the true domain of every turn."""
        if len(conversations) != len(domain_labels):
            raise ValueError("conversations and domain_labels must have the same length")
        windows: list[np.ndarray] = []
        labels: list[int] = []
        for texts, domains in zip(conversations, domain_labels):
            if len(texts) != len(domains):
                raise ValueError("each conversation needs one label per turn")
            context = self.featurizer.context_features(list(texts), self.context_window)
            for turn, domain in enumerate(domains):
                windows.append(context[turn])
                labels.append(self.domain_names.index(domain))
        if not windows:
            raise ValueError("no training turns provided")
        features = np.stack(windows)
        targets = np.asarray(labels, dtype=np.int64)
        rng = new_rng(seed)
        optimizer = Adam(self.model.parameters(), learning_rate)
        losses: list[float] = []
        # Graph-captured GRU training step (None when the runtime is
        # disabled).  The recurrent unroll is exactly the workload where
        # trace-and-replay pays off most: eager rebuilds hundreds of small
        # tape nodes per step, the replay runs a flat kernel program.
        step = self._build_train_step()
        for _ in range(epochs):
            order = rng.permutation(len(targets))
            epoch_losses = []
            for start in range(0, len(targets), batch_size):
                batch_index = order[start : start + batch_size]
                optimizer.zero_grad()
                if step is not None:
                    batch_features = np.ascontiguousarray(features[batch_index])
                    rows, safe_targets, weights = cross_entropy_parts(targets[batch_index])
                    loss, _ = step(
                        features=batch_features, rows=rows, targets=safe_targets, weights=weights
                    )
                else:
                    logits = self.model(Tensor(features[batch_index]))
                    loss = cross_entropy_loss(logits, targets[batch_index])
                    loss.backward()
                optimizer.clip_gradients(5.0)
                optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def _build_train_step(self):
        """Compiled classification train step, or ``None`` if capture is off."""
        from repro.nn.graph import CompiledTrainStep, is_enabled

        if not is_enabled():
            return None
        model = self.model

        def fn(features, rows, targets, weights):
            logits = model(Tensor(features))
            loss = cross_entropy_from_parts(logits, rows, targets, weights)
            return loss, logits

        return CompiledTrainStep(fn, model.parameters())

    def predict_from_window(self, window_features: np.ndarray) -> str:
        """Domain prediction from a ``(window, dim)`` feature array."""
        logits = self.model(Tensor(window_features[None, ...]))
        return self.domain_names[int(np.argmax(logits.data[0]))]


class ClassifierProbabilityFeaturizer(MessageFeaturizer):
    """Featurizer whose per-message representation is a classifier's domain posterior.

    Feeding the per-message domain probabilities (instead of raw bag-of-words)
    into the recurrent selector gives it a compact, highly informative input:
    the GRU only has to learn how to smooth noisy per-message evidence over
    the conversation, which is exactly the contextual effect Section III-A is
    after.
    """

    def __init__(self, classifier) -> None:
        self.classifier = classifier
        self.vocabulary = classifier.featurizer.vocabulary

    @property
    def dim(self) -> int:
        """Feature dimensionality (= number of candidate domains)."""
        return len(self.classifier.domain_names)

    def features(self, text: str) -> np.ndarray:
        """Domain-probability vector of one message."""
        return self.classifier.predict_probabilities(text)


class ContextualSelectionPolicy(SelectionPolicy):
    """Stateful policy wrapping a trained :class:`ContextualDomainSelector`."""

    name = "contextual"

    def __init__(self, selector: ContextualDomainSelector) -> None:
        super().__init__(selector.domain_names)
        self.selector = selector
        self._history: Deque[np.ndarray] = deque(maxlen=selector.context_window)

    def select(self, message: str) -> str:
        features = self.selector.featurizer.features(message)
        self._history.append(features)
        window = np.zeros((self.selector.context_window, self.selector.featurizer.dim))
        stacked = np.stack(list(self._history))
        window[-len(self._history) :] = stacked
        return self.selector.predict_from_window(window)

    def reset(self) -> None:
        self._history.clear()
