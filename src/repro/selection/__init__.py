"""Model selection: per-message classifier, contextual GRU selector, bandits."""

from repro.selection.bandit import EpsilonGreedyPolicy, LinUcbPolicy
from repro.selection.classifier import (
    ClassifierSelectionPolicy,
    DomainClassifier,
    KeywordSelectionPolicy,
)
from repro.selection.contextual import (
    ClassifierProbabilityFeaturizer,
    ContextualDomainSelector,
    ContextualSelectionPolicy,
)
from repro.selection.features import MessageFeaturizer, build_featurizer
from repro.selection.policy import (
    OraclePolicy,
    RandomPolicy,
    SelectionOutcome,
    SelectionPolicy,
    evaluate_policy,
)

__all__ = [
    "MessageFeaturizer",
    "build_featurizer",
    "SelectionPolicy",
    "SelectionOutcome",
    "evaluate_policy",
    "OraclePolicy",
    "RandomPolicy",
    "DomainClassifier",
    "ClassifierSelectionPolicy",
    "KeywordSelectionPolicy",
    "ContextualDomainSelector",
    "ContextualSelectionPolicy",
    "ClassifierProbabilityFeaturizer",
    "EpsilonGreedyPolicy",
    "LinUcbPolicy",
]
